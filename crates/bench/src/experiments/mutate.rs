//! **Mutate experiment** — the mutable-session story end to end: edges
//! arrive and expire between queries, and the engine's versioned
//! session path is measured against the only update path the serve
//! stack had before (rewrite the file, let the fingerprint invalidate
//! everything, reload cold).
//!
//! Per round, a delta batch (add-only, remove-heavy, mixed — the three
//! shapes the original acceptance criteria name — plus `small` rounds
//! of ≤ 1% of the edges, the incremental tier's home turf) is applied
//! to a named session graph and each peeling query (`approx`,
//! `atleast-k` on the undirected graph; `directed` on the directed one)
//! is timed four ways over the **same** materialized graph:
//!
//! * **incremental** — `add_edges` + query on a session engine with the
//!   incremental tier at its default threshold: the mutation journal is
//!   replayed through the stored peel trace, only the affected region
//!   is re-peeled, and the result is re-scored against the published
//!   snapshot before answering;
//! * **warm** — the same mutation mirrored to a second session engine
//!   with the incremental tier disabled: the query warm-restarts by
//!   re-peeling the whole new snapshot (the pre-incremental world);
//! * **cold** — a fresh engine over the materialized edge list
//!   (clone + canonicalize + CSR + peel): pure recompute, no session;
//! * **file** — the pre-session world: write the materialized graph to
//!   disk, then a fresh engine loads it (stat scan + parse +
//!   canonicalize + fingerprint + CSR + peel).
//!
//! With `--durable` a fifth arm mirrors every mutation to a session
//! engine whose catalog has a WAL + snapshot data dir open at
//! `--fsync-every 1` (the strictest policy the serve stack offers):
//! the `durable ms` column is the mutate-only cost of append + fsync +
//! publish, and `durable x` is that cost relative to the identical
//! in-memory session mutation (the warm mirror). Content parity with
//! the in-memory session is asserted every round. Both columns are
//! compared warn-only against `bench/baseline.json` — fsync latency is
//! the one number here that genuinely belongs to the host's disk, not
//! the code.
//!
//! **Parity is asserted, not sampled**: every incremental report and
//! every warm report must be byte-identical (minus `elapsed_ms`) to the
//! cold report over the materialized graph, for every round × shape ×
//! algorithm — the run panics on the first divergence, which is what
//! lets CI run this as a correctness gate. The run also hard-fails
//! unless the incremental tier actually answered at least one query
//! (a tier that silently falls back on everything would otherwise look
//! "correct" forever). A final compact round additionally exercises the
//! verified-replay path (version bump, unchanged content) and asserts
//! the warm-hit counters moved.
//!
//! On a single-CPU container the absolute times are modest; the honest
//! headlines are the *work avoided* — `file ms / warm ms` in the
//! `speedup` column, and for small deltas `warm query ms / inc query
//! ms` in the `inc speedup` column (the incremental tier never builds
//! the new CSR and touches only the affected region, so small-delta
//! rounds should sit well above 3×).

use std::path::PathBuf;
use std::time::Instant;

use dsg_datasets::{flickr_standin, twitter_standin, Scale};
use dsg_engine::{Algorithm, Engine, Query, ResourcePolicy, Source};
use dsg_graph::io::write_text;
use dsg_graph::{EdgeList, GraphKind, SplitMix64};

use crate::table::{fmt_f, Table};

/// An edge batch, as the mutation ops take it.
type EdgeBatch = Vec<(u32, u32)>;

/// One (round × algorithm) measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Mutation round (1-based; the last round is the compact/replay).
    pub round: usize,
    /// Delta shape of the round (`add`, `remove`, `mixed`, `small`,
    /// `compact`).
    pub shape: &'static str,
    /// Algorithm queried.
    pub algorithm: &'static str,
    /// Edges in the materialized graph after the delta.
    pub edges: u64,
    /// Edges the round's delta actually applied.
    pub delta_edges: u64,
    /// Incremental session path: mutate + query, milliseconds.
    pub inc_ms: f64,
    /// Query-only portion of the incremental path, milliseconds.
    pub inc_query_ms: f64,
    /// Warm session path (incremental tier disabled): mutate + warm
    /// re-peel query, milliseconds.
    pub warm_ms: f64,
    /// Query-only portion of the warm path, milliseconds.
    pub warm_query_ms: f64,
    /// Cold recompute over the materialized list, milliseconds.
    pub cold_ms: f64,
    /// File world: rewrite + cold load + query, milliseconds.
    pub file_ms: f64,
    /// Durable session mutation (WAL append + fsync-every-1 + publish),
    /// milliseconds; 0 when the `--durable` arm is off.
    pub durable_ms: f64,
    /// `durable mutate / in-memory (warm) mutate` for the same batch —
    /// the append+fsync overhead factor; 0 when the arm is off.
    pub durable_overhead: f64,
    /// Affected-set size of the incremental simulation (0 on fallback).
    pub affected: u64,
    /// Peel passes the incremental answer took (0 on fallback).
    pub passes: u64,
    /// Why the incremental tier fell back (`-` when it answered).
    pub fallback: &'static str,
    /// `warm_query_ms / inc_query_ms` — the incremental tier's win over
    /// a full warm re-peel of the same snapshot.
    pub speedup_vs_warm: f64,
    /// `file_ms / warm_ms` — the session story's win over the
    /// pre-session file world.
    pub speedup_vs_file: f64,
    /// Whether every session report was byte-identical to the cold one
    /// (asserted — a row only exists if it was).
    pub parity: bool,
}

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_mutate_experiment");
    std::fs::create_dir_all(&dir).expect("cannot create mutate data dir");
    dir
}

/// Deterministic delta batch over the current node universe.
fn delta_batch(rng: &mut SplitMix64, nodes: u32, count: usize) -> Vec<(u32, u32)> {
    let span = nodes.max(2);
    (0..count)
        .map(|_| {
            let u = (rng.next_u64() % span as u64) as u32;
            let v = (rng.next_u64() % span as u64) as u32;
            (u, v)
        })
        .collect()
}

/// Picks `count` existing edges to remove, spread across the list.
fn removal_batch(list: &EdgeList, count: usize) -> Vec<(u32, u32)> {
    let m = list.num_edges();
    if m == 0 {
        return Vec::new();
    }
    let step = (m / count.max(1)).max(1);
    list.edges
        .iter()
        .step_by(step)
        .take(count)
        .copied()
        .collect()
}

struct Session {
    name: &'static str,
    queries: Vec<(&'static str, Query)>,
}

/// Runs the experiment at the given scale. `durable` adds the WAL +
/// fsync mirror arm (the `--durable` flag of `repro mutate`).
pub fn run(scale: Scale, durable: bool) -> Vec<Row> {
    let dir = data_dir();
    // The headline engine: incremental tier on (default threshold).
    let engine = Engine::new();
    // The comparison engine: identical sessions, incremental tier off —
    // every small delta takes the full warm re-peel this PR improves on.
    let warm_engine = Engine::new();
    warm_engine.set_incremental_threshold(0.0);
    // The durable mirror: same sessions again, but every mutation is
    // WAL-appended and fsynced before it publishes (fsync-every 1, the
    // serve stack's strictest policy). A fresh data dir per run — a
    // leftover WAL would replay a previous run's graphs into the
    // catalog before ours are even created.
    let durable_engine = durable.then(|| {
        let e = Engine::new();
        let wal_dir = dir.join(format!("wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        e.catalog()
            .open_data_dir(&wal_dir, 1, 256)
            .expect("open durable data dir");
        e
    });
    let policy = ResourcePolicy::default();

    let und = flickr_standin(scale);
    let dir_graph = twitter_standin(scale);
    for e in [Some(&engine), Some(&warm_engine), durable_engine.as_ref()]
        .into_iter()
        .flatten()
    {
        e.create_graph("live_und", GraphKind::Undirected, &und.edges)
            .expect("create undirected session");
        e.create_graph("live_dir", GraphKind::Directed, &dir_graph.edges)
            .expect("create directed session");
    }

    let sessions = [
        Session {
            name: "live_und",
            queries: vec![
                (
                    "approx",
                    Query::new(Algorithm::Approx {
                        epsilon: 0.5,
                        sketch: None,
                    }),
                ),
                (
                    "atleast-k",
                    Query::new(Algorithm::AtLeastK {
                        k: 16,
                        epsilon: 0.5,
                    }),
                ),
            ],
        },
        Session {
            name: "live_dir",
            queries: vec![(
                "directed",
                Query::new(Algorithm::Directed {
                    delta: 2.0,
                    epsilon: 0.5,
                }),
            )],
        },
    ];

    // Seed every (graph, query) warm slot before the measured rounds.
    for session in &sessions {
        for (_, query) in &session.queries {
            for e in [&engine, &warm_engine] {
                e.execute(&Source::named(session.name), query, &policy)
                    .expect("seed query");
            }
        }
    }

    let mut rng = SplitMix64::new(42);
    // The three original delta shapes at ~2% of the edges, then three
    // `small` rounds at ≤ 0.5% — the incremental tier's target regime.
    let shapes: [&'static str; 9] = [
        "add", "remove", "mixed", "add", "remove", "mixed", "small", "small", "small",
    ];
    let mut rows = Vec::new();

    for (round, shape) in shapes.iter().enumerate() {
        for session in &sessions {
            let snapshot = materialized(&engine, session.name);
            let batch = match *shape {
                // Small-delta rounds: ≤ 0.05% of the current edges —
                // the single-edge-arrival regime the incremental tier
                // targets. The delta endpoints sit well inside the
                // default affected-set budget (5% of the nodes) with
                // room for the frontier to grow during simulation.
                "small" => (snapshot.num_edges() / 2000).clamp(2, 8),
                // Delta ≈ 2% of the current edge count, split per shape.
                _ => (snapshot.num_edges() / 50).clamp(4, 2_000),
            };
            let (adds, removes): (EdgeBatch, EdgeBatch) = match *shape {
                "add" | "small" => (delta_batch(&mut rng, snapshot.num_nodes, batch), Vec::new()),
                "remove" => (Vec::new(), removal_batch(&snapshot, batch)),
                _ => (
                    delta_batch(&mut rng, snapshot.num_nodes, batch / 2),
                    removal_batch(&snapshot, batch / 2),
                ),
            };

            // --- incremental arm: session mutation + queries on the
            // engine with the tier enabled.
            let inc_started = Instant::now();
            let mut delta_applied = 0u64;
            if !adds.is_empty() {
                delta_applied += engine
                    .add_edges(session.name, &adds)
                    .expect("add_edges")
                    .applied;
            }
            if !removes.is_empty() {
                delta_applied += engine
                    .remove_edges(session.name, &removes)
                    .expect("remove_edges")
                    .applied;
            }
            let inc_mutate_ms = inc_started.elapsed().as_secs_f64() * 1e3;

            // --- warm arm: the identical mutation mirrored to the
            // re-peel-only engine.
            let warm_started = Instant::now();
            if !adds.is_empty() {
                warm_engine
                    .add_edges(session.name, &adds)
                    .expect("add_edges (warm mirror)");
            }
            if !removes.is_empty() {
                warm_engine
                    .remove_edges(session.name, &removes)
                    .expect("remove_edges (warm mirror)");
            }
            let warm_mutate_ms = warm_started.elapsed().as_secs_f64() * 1e3;

            // --- durable arm: the identical mutation once more, now
            // with a WAL append + fsync inside the publication lock.
            // Mutate-only timing: the query path is byte-identical to
            // the in-memory session (same snapshot type), so re-timing
            // it here would only measure noise.
            let durable_mutate_ms = durable_engine.as_ref().map(|e| {
                let started = Instant::now();
                if !adds.is_empty() {
                    e.add_edges(session.name, &adds)
                        .expect("add_edges (durable mirror)");
                }
                if !removes.is_empty() {
                    e.remove_edges(session.name, &removes)
                        .expect("remove_edges (durable mirror)");
                }
                started.elapsed().as_secs_f64() * 1e3
            });
            let current = materialized(&engine, session.name);
            if let Some(e) = durable_engine.as_ref() {
                let mirrored = materialized(e, session.name);
                assert_eq!(
                    (mirrored.num_nodes, &mirrored.edges),
                    (current.num_nodes, &current.edges),
                    "durable mirror diverged from the in-memory session: \
                     round {round}, {shape}, {}",
                    session.name
                );
            }

            for (alg_name, query) in &session.queries {
                let hits_before = engine.incremental_stats().hits;
                let inc_started = Instant::now();
                let inc = engine
                    .execute(&Source::named(session.name), query, &policy)
                    .expect("incremental query");
                let inc_query_ms = inc_started.elapsed().as_secs_f64() * 1e3;
                let inc_ms = inc_mutate_ms / session.queries.len() as f64 + inc_query_ms;
                // Attribute the tier's debug record to this query: the
                // attempt (hit or fallback) it just made is the latest.
                let hit = engine.incremental_stats().hits > hits_before;
                let debug = engine.last_incremental();
                if std::env::var_os("DSG_MUTATE_DEBUG").is_some() {
                    eprintln!("[mutate debug] round {round} {shape} {alg_name}: hit={hit} debug={debug:?}");
                }
                let (affected, passes, fallback) = match (hit, debug) {
                    (true, Some(d)) => (d.affected as u64, d.passes as u64, "-"),
                    (false, Some(d)) => (0, 0, d.reason.unwrap_or("fallback")),
                    (false, None) => (0, 0, "no attempt"),
                    (true, None) => unreachable!("a hit always records its debug state"),
                };
                // Probe-overhead bound: a threshold fallback must have
                // stopped growing the affected set the moment it crossed
                // the budget — a doomed probe is O(threshold), never
                // O(graph). Asserted on every round so a regression in
                // the early-exit shows up as a hard failure here.
                if let Some(d) = debug {
                    if d.reason == Some(dsg_core::THRESHOLD_REASON) {
                        assert!(
                            d.affected <= d.budget + 1,
                            "threshold fallback overshot its probe bound: \
                             affected {} > budget {} + 1 (round {round}, {shape}, {alg_name})",
                            d.affected,
                            d.budget,
                        );
                    }
                }

                let warm_started = Instant::now();
                let warm = warm_engine
                    .execute(&Source::named(session.name), query, &policy)
                    .expect("warm query");
                let warm_query_ms = warm_started.elapsed().as_secs_f64() * 1e3;
                let warm_ms = warm_mutate_ms / session.queries.len() as f64 + warm_query_ms;

                // --- cold arm: fresh engine, materialized list.
                let cold_engine = Engine::new();
                let cold_started = Instant::now();
                let cold = cold_engine
                    .execute(
                        &Source::Memory {
                            list: current.clone(),
                            label: session.name.to_string(),
                        },
                        query,
                        &policy,
                    )
                    .expect("cold query");
                let cold_ms = cold_started.elapsed().as_secs_f64() * 1e3;

                // Parity: the acceptance criterion. Panic on divergence.
                let cold_json = cold.json_object(false);
                assert_eq!(
                    inc.json_object(false),
                    cold_json,
                    "incremental/cold divergence: round {round}, {shape}, {alg_name}"
                );
                assert_eq!(
                    warm.json_object(false),
                    cold_json,
                    "warm/cold divergence: round {round}, {shape}, {alg_name}"
                );

                // --- file arm: rewrite + cold load (the pre-session world).
                let path = dir.join(format!("{}_{round}.txt", session.name));
                let file_engine = Engine::new();
                let file_started = Instant::now();
                write_text(&path, &current).expect("rewrite edge file");
                let file_report = file_engine
                    .execute(
                        &Source::File {
                            path: path.clone(),
                            binary: false,
                            directed_input: current.kind == GraphKind::Directed,
                        },
                        query,
                        &policy,
                    )
                    .expect("file query");
                let file_ms = file_started.elapsed().as_secs_f64() * 1e3;
                assert_eq!(
                    file_report.density().to_bits(),
                    inc.density().to_bits(),
                    "file-world density must agree: round {round}, {alg_name}"
                );

                rows.push(Row {
                    round: round + 1,
                    shape,
                    algorithm: alg_name,
                    edges: current.num_edges() as u64,
                    delta_edges: delta_applied,
                    inc_ms,
                    inc_query_ms,
                    warm_ms,
                    warm_query_ms,
                    cold_ms,
                    file_ms,
                    durable_ms: durable_mutate_ms.unwrap_or(0.0) / session.queries.len() as f64,
                    durable_overhead: match durable_mutate_ms {
                        Some(d) if warm_mutate_ms > 0.0 => d / warm_mutate_ms,
                        _ => 0.0,
                    },
                    affected,
                    passes,
                    fallback,
                    speedup_vs_warm: if inc_query_ms > 0.0 {
                        warm_query_ms / inc_query_ms
                    } else {
                        0.0
                    },
                    speedup_vs_file: if warm_ms > 0.0 {
                        file_ms / warm_ms
                    } else {
                        0.0
                    },
                    parity: true,
                });
            }
        }
    }

    // Final round: compact bumps the version without changing content —
    // the warm path must serve a verified replay, byte-identically.
    let warm_before = engine.warm_stats();
    for session in &sessions {
        engine.compact_graph(session.name).expect("compact");
        if let Some(e) = durable_engine.as_ref() {
            // Keep the WAL lineage honest: the durable mirror compacts
            // too (a compact record + snapshot-cadence bookkeeping).
            e.compact_graph(session.name)
                .expect("compact (durable mirror)");
        }
        let current = materialized(&engine, session.name);
        for (alg_name, query) in &session.queries {
            let started = Instant::now();
            let warm = engine
                .execute(&Source::named(session.name), query, &policy)
                .expect("replay query");
            let warm_ms = started.elapsed().as_secs_f64() * 1e3;
            let cold_engine = Engine::new();
            let cold_started = Instant::now();
            let cold = cold_engine
                .execute(
                    &Source::Memory {
                        list: current.clone(),
                        label: session.name.to_string(),
                    },
                    query,
                    &policy,
                )
                .expect("cold replay reference");
            let cold_ms = cold_started.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                warm.json_object(false),
                cold.json_object(false),
                "replay divergence: {alg_name}"
            );
            rows.push(Row {
                round: shapes.len() + 1,
                shape: "compact",
                algorithm: alg_name,
                edges: current.num_edges() as u64,
                delta_edges: 0,
                inc_ms: 0.0,
                inc_query_ms: 0.0,
                warm_ms,
                warm_query_ms: warm_ms,
                cold_ms,
                file_ms: 0.0,
                durable_ms: 0.0,
                durable_overhead: 0.0,
                affected: 0,
                passes: 0,
                fallback: "-",
                speedup_vs_warm: 0.0,
                speedup_vs_file: 0.0,
                parity: true,
            });
        }
    }
    let warm_after = engine.warm_stats();
    assert!(
        warm_after.hits > warm_before.hits,
        "compaction replays must register as warm hits ({warm_before:?} -> {warm_after:?})"
    );

    // The incremental tier must have actually answered queries — every
    // small-delta round is in its regime, and a tier that falls back on
    // everything would otherwise pass the parity gate forever.
    let inc = engine.incremental_stats();
    assert!(
        inc.hits >= 1,
        "the incremental tier never answered a query: {inc:?}"
    );
    // Every small-delta `approx` round sits squarely in the tier's
    // regime (a handful of delta endpoints against a 5%-of-nodes
    // budget); the run is deterministic, so hit/fallback outcomes are
    // reproducible and this can be exact.
    let (small_approx, small_approx_hits): (Vec<_>, Vec<_>) = {
        let s: Vec<_> = rows
            .iter()
            .filter(|r| r.shape == "small" && r.algorithm == "approx")
            .collect();
        let h = s.iter().filter(|r| r.fallback == "-").cloned().collect();
        (s, h)
    };
    assert!(
        !small_approx.is_empty() && small_approx.len() == small_approx_hits.len(),
        "every small-delta approx round must take the incremental path: \
         {} of {} hit",
        small_approx_hits.len(),
        small_approx.len()
    );
    // Between them, the maintenance tiers must carry most rounds.
    assert!(
        inc.hits + warm_after.hits >= rows.len() as u64 / 2,
        "most mutated-query rounds should be maintained, not recomputed: \
         incremental {inc:?} + warm {warm_after:?} over {} rows",
        rows.len()
    );

    // The small-delta headline — `approx` is the paper's core peel and
    // the tier's cleanest win (the directed sweep pays O(grid) per-ratio
    // simulations, which only beat a warm sweep once the graph is big
    // enough to amortize them). Recorded in the table and compared
    // (warn-only) against bench/baseline.json.
    let mut small: Vec<f64> = small_approx_hits
        .iter()
        .filter(|r| r.speedup_vs_warm > 0.0)
        .map(|r| r.speedup_vs_warm)
        .collect();
    small.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    if let Some(median) = small.get(small.len() / 2) {
        eprintln!(
            "[mutate] small-delta approx, incremental vs warm re-peel: \
             median {median:.2}x over {} rounds",
            small.len()
        );
        if *median < 3.0 {
            eprintln!(
                "[mutate] WARNING: small-delta approx incremental speedup \
                 {median:.2}x is below the 3x target"
            );
        }
    }

    if durable {
        let mut over: Vec<f64> = rows
            .iter()
            .filter(|r| r.durable_overhead > 0.0)
            .map(|r| r.durable_overhead)
            .collect();
        assert!(
            !over.is_empty(),
            "--durable was set but no round timed a durable mutation"
        );
        over.sort_by(|a, b| a.partial_cmp(b).expect("finite overheads"));
        let median = over[over.len() / 2];
        eprintln!(
            "[mutate] durable sessions (WAL append + fsync-every-1): \
             median {median:.2}x the in-memory session mutate over {} rounds",
            over.len()
        );
    }

    rows
}

/// The session's current materialized graph.
fn materialized(engine: &Engine, name: &str) -> EdgeList {
    let (_, entry) = engine
        .catalog()
        .get_named(name)
        .expect("session graph exists");
    entry.list.clone()
}

/// Renders the rows as a paper-style table.
pub fn to_table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Mutate: incremental re-peel vs warm re-peel vs cold recompute vs file rewrite \
         (parity asserted)",
        &[
            "round",
            "shape",
            "algorithm",
            "edges",
            "delta",
            "inc ms",
            "warm ms",
            "cold ms",
            "file ms",
            "durable ms",
            "durable x",
            "affected",
            "passes",
            "fallback",
            "inc speedup",
            "speedup",
            "parity",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.round.to_string(),
            r.shape.to_string(),
            r.algorithm.to_string(),
            r.edges.to_string(),
            r.delta_edges.to_string(),
            fmt_f(r.inc_ms, 2),
            fmt_f(r.warm_ms, 2),
            fmt_f(r.cold_ms, 2),
            fmt_f(r.file_ms, 2),
            fmt_f(r.durable_ms, 2),
            fmt_f(r.durable_overhead, 2),
            r.affected.to_string(),
            r.passes.to_string(),
            r.fallback.to_string(),
            fmt_f(r.speedup_vs_warm, 2),
            fmt_f(r.speedup_vs_file, 2),
            if r.parity { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    t
}
