//! **Mutate experiment** — the PR-5 mutable-session story end to end:
//! edges arrive and expire between queries, and the engine's versioned
//! session path is measured against the only update path the serve
//! stack had before (rewrite the file, let the fingerprint invalidate
//! everything, reload cold).
//!
//! Per round, a delta batch (add-only, remove-heavy, or mixed — the
//! three shapes the acceptance criteria name) is applied to a named
//! session graph and each peeling query (`approx`, `atleast-k` on the
//! undirected graph; `directed` on the directed one) is timed three
//! ways over the **same** materialized graph:
//!
//! * **warm** — `add_edges` on the session + query: the delta folds
//!   into the already-canonical base, the version bumps, and the query
//!   warm-restarts from the previous version's seed;
//! * **cold** — a fresh engine over the materialized edge list
//!   (clone + canonicalize + CSR + peel): pure recompute, no session;
//! * **file** — the pre-session world: write the materialized graph to
//!   disk, then a fresh engine loads it (stat scan + parse +
//!   canonicalize + fingerprint + CSR + peel).
//!
//! **Parity is asserted, not sampled**: every warm report must be
//! byte-identical (minus `elapsed_ms`) to the cold report over the
//! materialized graph, for every round × shape × algorithm — the run
//! panics on the first divergence, which is what lets CI run this as a
//! correctness gate. A final compact round additionally exercises the
//! verified-replay path (version bump, unchanged content) and asserts
//! the warm-hit counters moved.
//!
//! On a single-CPU container the absolute times are modest; the honest
//! headline is the *work avoided* (no rewrite, no re-parse, no re-sort),
//! which shows up as `file_ms / warm_ms` in the speedup column.

use std::path::PathBuf;
use std::time::Instant;

use dsg_datasets::{flickr_standin, twitter_standin, Scale};
use dsg_engine::{Algorithm, Engine, Query, ResourcePolicy, Source};
use dsg_graph::io::write_text;
use dsg_graph::{EdgeList, GraphKind, SplitMix64};

use crate::table::{fmt_f, Table};

/// An edge batch, as the mutation ops take it.
type EdgeBatch = Vec<(u32, u32)>;

/// One (round × algorithm) measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Mutation round (1-based; the last round is the compact/replay).
    pub round: usize,
    /// Delta shape of the round (`add`, `remove`, `mixed`, `compact`).
    pub shape: &'static str,
    /// Algorithm queried.
    pub algorithm: &'static str,
    /// Edges in the materialized graph after the delta.
    pub edges: u64,
    /// Edges the round's delta actually applied.
    pub delta_edges: u64,
    /// Session path: mutate + warm query, milliseconds.
    pub warm_ms: f64,
    /// Cold recompute over the materialized list, milliseconds.
    pub cold_ms: f64,
    /// File world: rewrite + cold load + query, milliseconds.
    pub file_ms: f64,
    /// `file_ms / warm_ms`.
    pub speedup_vs_file: f64,
    /// Whether the warm report was byte-identical to the cold one
    /// (asserted — a row only exists if it was).
    pub parity: bool,
}

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_mutate_experiment");
    std::fs::create_dir_all(&dir).expect("cannot create mutate data dir");
    dir
}

/// Deterministic delta batch over the current node universe.
fn delta_batch(rng: &mut SplitMix64, nodes: u32, count: usize) -> Vec<(u32, u32)> {
    let span = nodes.max(2);
    (0..count)
        .map(|_| {
            let u = (rng.next_u64() % span as u64) as u32;
            let v = (rng.next_u64() % span as u64) as u32;
            (u, v)
        })
        .collect()
}

/// Picks `count` existing edges to remove, spread across the list.
fn removal_batch(list: &EdgeList, count: usize) -> Vec<(u32, u32)> {
    let m = list.num_edges();
    if m == 0 {
        return Vec::new();
    }
    let step = (m / count.max(1)).max(1);
    list.edges
        .iter()
        .step_by(step)
        .take(count)
        .copied()
        .collect()
}

struct Session {
    name: &'static str,
    queries: Vec<(&'static str, Query)>,
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Vec<Row> {
    let dir = data_dir();
    let engine = Engine::new();
    let policy = ResourcePolicy::default();

    let und = flickr_standin(scale);
    let dir_graph = twitter_standin(scale);
    engine
        .create_graph("live_und", GraphKind::Undirected, &und.edges)
        .expect("create undirected session");
    engine
        .create_graph("live_dir", GraphKind::Directed, &dir_graph.edges)
        .expect("create directed session");

    let sessions = [
        Session {
            name: "live_und",
            queries: vec![
                (
                    "approx",
                    Query::new(Algorithm::Approx {
                        epsilon: 0.5,
                        sketch: None,
                    }),
                ),
                (
                    "atleast-k",
                    Query::new(Algorithm::AtLeastK {
                        k: 16,
                        epsilon: 0.5,
                    }),
                ),
            ],
        },
        Session {
            name: "live_dir",
            queries: vec![(
                "directed",
                Query::new(Algorithm::Directed {
                    delta: 2.0,
                    epsilon: 0.5,
                }),
            )],
        },
    ];

    // Seed every (graph, query) warm slot before the measured rounds.
    for session in &sessions {
        for (_, query) in &session.queries {
            engine
                .execute(&Source::named(session.name), query, &policy)
                .expect("seed query");
        }
    }

    let mut rng = SplitMix64::new(42);
    let shapes: [&'static str; 6] = ["add", "remove", "mixed", "add", "remove", "mixed"];
    let mut rows = Vec::new();

    for (round, shape) in shapes.iter().enumerate() {
        for session in &sessions {
            let snapshot = materialized(&engine, session.name);
            // Delta ≈ 2% of the current edge count, split per shape.
            let batch = (snapshot.num_edges() / 50).clamp(4, 2_000);
            let (adds, removes): (EdgeBatch, EdgeBatch) = match *shape {
                "add" => (delta_batch(&mut rng, snapshot.num_nodes, batch), Vec::new()),
                "remove" => (Vec::new(), removal_batch(&snapshot, batch)),
                _ => (
                    delta_batch(&mut rng, snapshot.num_nodes, batch / 2),
                    removal_batch(&snapshot, batch / 2),
                ),
            };

            // --- warm arm: session mutation + warm queries.
            let warm_started = Instant::now();
            let mut delta_applied = 0u64;
            if !adds.is_empty() {
                delta_applied += engine
                    .add_edges(session.name, &adds)
                    .expect("add_edges")
                    .applied;
            }
            if !removes.is_empty() {
                delta_applied += engine
                    .remove_edges(session.name, &removes)
                    .expect("remove_edges")
                    .applied;
            }
            let mutate_ms = warm_started.elapsed().as_secs_f64() * 1e3;
            let current = materialized(&engine, session.name);

            for (alg_name, query) in &session.queries {
                let warm_started = Instant::now();
                let warm = engine
                    .execute(&Source::named(session.name), query, &policy)
                    .expect("warm query");
                let warm_ms = mutate_ms / session.queries.len() as f64
                    + warm_started.elapsed().as_secs_f64() * 1e3;

                // --- cold arm: fresh engine, materialized list.
                let cold_engine = Engine::new();
                let cold_started = Instant::now();
                let cold = cold_engine
                    .execute(
                        &Source::Memory {
                            list: current.clone(),
                            label: session.name.to_string(),
                        },
                        query,
                        &policy,
                    )
                    .expect("cold query");
                let cold_ms = cold_started.elapsed().as_secs_f64() * 1e3;

                // Parity: the acceptance criterion. Panic on divergence.
                let warm_json = warm.json_object(false);
                let cold_json = cold.json_object(false);
                assert_eq!(
                    warm_json, cold_json,
                    "warm/cold divergence: round {round}, {shape}, {alg_name}"
                );

                // --- file arm: rewrite + cold load (the PR-4 world).
                let path = dir.join(format!("{}_{round}.txt", session.name));
                let file_engine = Engine::new();
                let file_started = Instant::now();
                write_text(&path, &current).expect("rewrite edge file");
                let file_report = file_engine
                    .execute(
                        &Source::File {
                            path: path.clone(),
                            binary: false,
                            directed_input: current.kind == GraphKind::Directed,
                        },
                        query,
                        &policy,
                    )
                    .expect("file query");
                let file_ms = file_started.elapsed().as_secs_f64() * 1e3;
                assert_eq!(
                    file_report.density().to_bits(),
                    warm.density().to_bits(),
                    "file-world density must agree: round {round}, {alg_name}"
                );

                rows.push(Row {
                    round: round + 1,
                    shape,
                    algorithm: alg_name,
                    edges: current.num_edges() as u64,
                    delta_edges: delta_applied,
                    warm_ms,
                    cold_ms,
                    file_ms,
                    speedup_vs_file: if warm_ms > 0.0 {
                        file_ms / warm_ms
                    } else {
                        0.0
                    },
                    parity: true,
                });
            }
        }
    }

    // Final round: compact bumps the version without changing content —
    // the warm path must serve a verified replay, byte-identically.
    let warm_before = engine.warm_stats();
    for session in &sessions {
        engine.compact_graph(session.name).expect("compact");
        let current = materialized(&engine, session.name);
        for (alg_name, query) in &session.queries {
            let started = Instant::now();
            let warm = engine
                .execute(&Source::named(session.name), query, &policy)
                .expect("replay query");
            let warm_ms = started.elapsed().as_secs_f64() * 1e3;
            let cold_engine = Engine::new();
            let cold_started = Instant::now();
            let cold = cold_engine
                .execute(
                    &Source::Memory {
                        list: current.clone(),
                        label: session.name.to_string(),
                    },
                    query,
                    &policy,
                )
                .expect("cold replay reference");
            let cold_ms = cold_started.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                warm.json_object(false),
                cold.json_object(false),
                "replay divergence: {alg_name}"
            );
            rows.push(Row {
                round: shapes.len() + 1,
                shape: "compact",
                algorithm: alg_name,
                edges: current.num_edges() as u64,
                delta_edges: 0,
                warm_ms,
                cold_ms,
                file_ms: 0.0,
                speedup_vs_file: 0.0,
                parity: true,
            });
        }
    }
    let warm_after = engine.warm_stats();
    assert!(
        warm_after.hits > warm_before.hits,
        "compaction replays must register as warm hits ({warm_before:?} -> {warm_after:?})"
    );
    assert!(
        warm_after.hits >= rows.len() as u64 / 2,
        "most mutated-query rounds should warm-restart: {warm_after:?} over {} rows",
        rows.len()
    );

    rows
}

/// The session's current materialized graph.
fn materialized(engine: &Engine, name: &str) -> EdgeList {
    let (_, entry) = engine
        .catalog()
        .get_named(name)
        .expect("session graph exists");
    entry.list.clone()
}

/// Renders the rows as a paper-style table.
pub fn to_table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Mutate: session warm restart vs cold recompute vs file rewrite (parity asserted)",
        &[
            "round",
            "shape",
            "algorithm",
            "edges",
            "delta",
            "warm ms",
            "cold ms",
            "file ms",
            "speedup",
            "parity",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.round.to_string(),
            r.shape.to_string(),
            r.algorithm.to_string(),
            r.edges.to_string(),
            r.delta_edges.to_string(),
            fmt_f(r.warm_ms, 2),
            fmt_f(r.cold_ms, 2),
            fmt_f(r.file_ms, 2),
            fmt_f(r.speedup_vs_file, 2),
            if r.parity { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    t
}
