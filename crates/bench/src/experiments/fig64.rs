//! **Figure 6.4** — directed density and number of passes as a function
//! of the assumed ratio `c` (δ = 2), for ε ∈ {0, 1}, on livejournal.
//!
//! Paper finding: the density curve over `c` is complex with an interior
//! optimum (livejournal's best `c ≈ 0.436`, i.e. |S| and |T| not too
//! skewed), and pass counts stay modest across the whole grid.

use dsg_core::directed::sweep_c_csr;
use dsg_datasets::{livejournal_standin, Scale};
use dsg_graph::CsrDirected;

use crate::table::{fmt_f, Table};

/// One (ε, c) measurement.
#[derive(Clone, Debug)]
pub struct Point {
    /// ε value.
    pub epsilon: f64,
    /// Ratio c.
    pub c: f64,
    /// Density at this c.
    pub density: f64,
    /// Passes at this c.
    pub passes: u32,
}

/// Result: all grid points plus the best c per ε.
#[derive(Clone, Debug)]
pub struct Fig64 {
    /// All measurements.
    pub points: Vec<Point>,
    /// `(ε, best c, best density)` per ε.
    pub best: Vec<(f64, f64, f64)>,
}

/// ε values plotted in Figure 6.4.
pub const EPSILONS: [f64; 2] = [0.0, 1.0];

/// Runs the c sweep on the livejournal stand-in.
pub fn run(scale: Scale) -> Fig64 {
    let list = livejournal_standin(scale);
    let csr = CsrDirected::from_edge_list(&list);
    let mut points = Vec::new();
    let mut best = Vec::new();
    for &eps in &EPSILONS {
        let sweep = sweep_c_csr(&csr, 2.0, eps);
        for &(c, density, passes) in &sweep.per_c {
            points.push(Point {
                epsilon: eps,
                c,
                density,
                passes,
            });
        }
        best.push((eps, sweep.best.c, sweep.best.best_density));
    }
    Fig64 { points, best }
}

/// Renders the measurements as a table.
pub fn to_table(r: &Fig64) -> Table {
    let mut t = Table::new(
        "Figure 6.4: livejournal stand-in — density and passes vs c (δ=2)",
        &["ε", "c", "ρ", "passes"],
    );
    for p in &r.points {
        t.push_row(vec![
            fmt_f(p.epsilon, 0),
            format!("{:.4e}", p.c),
            fmt_f(p.density, 2),
            p.passes.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_optimum_exists() {
        let r = run(Scale::Tiny);
        for &(eps, best_c, best_d) in &r.best {
            let series: Vec<&Point> = r.points.iter().filter(|p| p.epsilon == eps).collect();
            // Extreme ratios perform worse than the best.
            let first = series.first().unwrap();
            let last = series.last().unwrap();
            assert!(best_d >= first.density && best_d >= last.density);
            // The best c is interior, away from the 1/n and n endpoints.
            assert!(
                best_c > first.c && best_c < last.c,
                "ε={eps}: best c {best_c} at a grid endpoint"
            );
        }
    }

    #[test]
    fn pass_counts_modest() {
        let r = run(Scale::Tiny);
        for p in &r.points {
            assert!(p.passes <= 60, "c={}: {} passes", p.c, p.passes);
        }
    }
}
