//! **Serve-throughput experiment** — the wire-path story end to end:
//! the same (clients × workers) grid measured over three transports —
//! JSONL lockstep, binary frames lockstep, and binary frames pipelined
//! — reporting q/s **and tail latency** (p50/p99 per request) per cell,
//! with content parity across transports asserted per row.
//!
//! Per row, a fresh [`dsg_engine::Engine`] serves a Unix socket with a
//! worker pool ([`dsg_engine::ServeOptions`]). A single warm-up
//! connection first sends one round (one query per distinct graph
//! file) and its response transcript — stripped of the
//! nondeterministic `elapsed_ms` — must be **byte-identical** to the
//! JSONL transcript of the same case (fresh servers make the cache
//! counters deterministic, so this is an exact comparison, not a
//! fuzzy one). Then `clients` client threads each issue `repeat`
//! rounds over one connection via [`dsg_engine::client_unix_opts`],
//! exactly like `densest client --repeat M --parallel N [--binary]
//! [--pipeline K]`, and per-request latencies from every connection
//! are folded into the p50/p99 columns. The timed phase runs `TRIALS`
//! times and the fastest trial is reported (min-time benchmarking:
//! scheduler noise only ever slows a trial down).
//!
//! Afterwards the `stats` op is parsed (with the same `minijson`
//! parser the server uses) and the run `assert!`s the properties the
//! CI smoke steps rely on:
//!
//! * **single-flight loading** — `loads` equals the number of distinct
//!   graph files, no matter how many clients raced on them cold;
//! * **result caching** — every timed-phase query repeats the warm-up
//!   queries, so *all* of them must be result-cache replays;
//! * **transport parity** — binary and pipelined transcripts match the
//!   JSONL transcript exactly (modulo `elapsed_ms`);
//! * **the wire path pays for itself** — on the 1×1 cell, where the
//!   measurement is least scheduler-noisy, pipelined binary q/s must
//!   beat JSONL lockstep by at least [`MIN_PIPELINE_SPEEDUP`]×. The
//!   floor is deliberately conservative for noisy CI runners; the
//!   table reports the honest measured ratio.
//!
//! On a single-CPU container the measured q/s does not scale with
//! workers (the compute is serialized by the hardware; see the PR-1
//! scaling experiment for the same honesty note) — but the *transport*
//! speedup survives, because it removes per-request round trips and
//! syscalls rather than adding parallelism.

use std::io::Cursor;
use std::path::PathBuf;

use dsg_datasets::{flickr_standin, livejournal_standin, Scale};
use dsg_engine::minijson::{self, Value};
use dsg_engine::{
    client_unix, client_unix_opts, percentile, routing_shard, serve_unix, ClientOptions, Engine,
    ResourcePolicy, ServeOptions,
};
use dsg_graph::io::write_text;

use crate::table::{fmt_f, Table};

/// Conservative internal floor for the pipelined-binary speedup over
/// JSONL lockstep on the 1×1 cell. Measured runs on a single-CPU
/// container sit at 3.0–3.5× (result-cache replays make the wire the
/// bottleneck); the floor is set well below that so noisy CI runners
/// don't flake, while still catching the fast path silently rotting
/// back to per-request round trips.
pub const MIN_PIPELINE_SPEEDUP: f64 = 2.0;

/// Requests kept in flight per connection for the pipelined transport.
const PIPELINE_DEPTH: usize = 128;

/// Timed-phase trials per row; the fastest trial is reported. On a
/// shared single-CPU runner the spread between trials is scheduler
/// noise, and min-time is the standard way to strip it without
/// inflating the result (every trial really ran that fast end to end).
const TRIALS: usize = 3;

/// One (transport × clients × workers) measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Case label (`clients x workers`).
    pub case: String,
    /// Wire transport: `jsonl`, `binary`, or `binary+pipe`.
    pub transport: &'static str,
    /// Concurrent client connections.
    pub clients: usize,
    /// Query rounds each client issued.
    pub repeat: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Timed-phase query requests answered.
    pub queries: u64,
    /// Wall-clock milliseconds of the timed client phase.
    pub wall_ms: f64,
    /// Queries per second.
    pub qps: f64,
    /// Median per-request latency (ms) across all connections.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency (ms).
    pub p99_ms: f64,
    /// `qps / qps(jsonl)` for the same case (1.0 on the jsonl row).
    pub speedup: f64,
    /// Graph loads (must equal the number of distinct graph files).
    pub loads: u64,
    /// Result-cache replays.
    pub result_hits: u64,
    /// Concurrent-connection high-water mark the server observed.
    pub conn_peak: u64,
}

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_serve_throughput");
    std::fs::create_dir_all(&dir).expect("cannot create serve-throughput data dir");
    dir
}

/// Pulls a numeric field out of a parsed stats response.
fn stat_u64(fields: &[(String, Value)], key: &str) -> u64 {
    minijson::get(fields, key)
        .and_then(Value::as_uint)
        .unwrap_or_else(|| panic!("stats response missing '{key}'"))
}

/// Removes the nondeterministic `elapsed_ms` field (always last on
/// query responses) so transcripts compare byte-for-byte.
fn strip_elapsed(text: &str) -> String {
    text.lines()
        .map(|line| match line.find(",\"elapsed_ms\":") {
            Some(at) => format!("{}}}", &line[..at]),
            None => line.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The three transports under measurement.
fn transports() -> [(&'static str, ClientOptions); 3] {
    [
        (
            "jsonl",
            ClientOptions {
                binary: false,
                pipeline: 1,
            },
        ),
        (
            "binary",
            ClientOptions {
                binary: true,
                pipeline: 1,
            },
        ),
        (
            "binary+pipe",
            ClientOptions {
                binary: true,
                pipeline: PIPELINE_DEPTH,
            },
        ),
    ]
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Vec<Row> {
    // Two distinct graph files so "loads == distinct graphs" is a
    // stronger assertion than "loads == 1".
    let dir = data_dir();
    let graphs = [
        (dir.join("serve_a.txt"), flickr_standin(scale)),
        (dir.join("serve_b.txt"), livejournal_standin(scale)),
    ];
    for (path, list) in &graphs {
        write_text(path, list).expect("write serve-throughput edge file");
    }
    let distinct_graphs = graphs.len() as u64;

    // One round = one query per graph file. The timed phase repeats it
    // enough that pipelining has windows to fill.
    let round: String = graphs
        .iter()
        .enumerate()
        .map(|(i, (path, _))| {
            format!(
                "{{\"id\":{i},\"algorithm\":\"approx\",\"file\":\"{}\",\"epsilon\":0.5}}\n",
                path.display()
            )
        })
        .collect();
    let repeat = 1024;

    let cases: &[(usize, usize)] = &[(1, 1), (2, 2), (4, 4)];
    let mut rows = Vec::new();
    for &(clients, workers) in cases {
        let mut jsonl_qps = 0.0;
        let mut jsonl_transcript = String::new();
        for (transport, client_options) in transports() {
            let sock = dir.join(format!("serve_{clients}x{workers}_{transport}.sock"));
            let _ = std::fs::remove_file(&sock);

            let engine = Engine::new();
            let policy = ResourcePolicy::default();
            let options = ServeOptions {
                workers,
                max_connections: 2 * clients.max(1),
                shards: 1,
                ..ServeOptions::default()
            };
            let row = std::thread::scope(|s| {
                let server = {
                    let (engine, sock) = (&engine, sock.clone());
                    s.spawn(move || {
                        serve_unix(engine, &policy, &sock, &options).expect("serve loop failed")
                    })
                };
                for _ in 0..300 {
                    if sock.exists() {
                        break;
                    }
                    // Harness-only: wait for the server thread to bind.
                    #[allow(clippy::disallowed_methods)]
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                assert!(sock.exists(), "server socket never appeared");

                // Parity warm-up: one connection, one round, fresh
                // server — the transcript is fully deterministic
                // (cold cache counters included) and must match the
                // JSONL transcript of the same case exactly.
                let transcript = {
                    let mut out = Vec::new();
                    client_unix_opts(&sock, Cursor::new(round.clone()), &mut out, &client_options)
                        .expect("warm-up client failed");
                    strip_elapsed(&String::from_utf8(out).expect("utf8 response"))
                };
                if transport == "jsonl" {
                    jsonl_transcript = transcript.clone();
                } else {
                    assert_eq!(
                        transcript, jsonl_transcript,
                        "{transport} responses must be byte-identical in content to JSONL \
                         ({clients} clients, {workers} workers)"
                    );
                }

                // Timed phase: `clients` connections × `repeat` rounds,
                // per-request latencies folded across all connections.
                // Run [`TRIALS`] times against the same server and keep
                // the fastest trial (and its latencies).
                let requests: String = round.repeat(repeat);
                let expected = (clients * repeat * graphs.len()) as u64;
                let mut wall_ms = f64::INFINITY;
                let mut latencies: Vec<f64> = Vec::new();
                for _trial in 0..TRIALS {
                    let started = std::time::Instant::now();
                    let (exchanged, trial_lats): (u64, Vec<f64>) = std::thread::scope(|cs| {
                        let handles: Vec<_> = (0..clients)
                            .map(|_| {
                                let (sock, requests, client_options) =
                                    (&sock, &requests, &client_options);
                                cs.spawn(move || {
                                    let mut out = Vec::new();
                                    let stats = client_unix_opts(
                                        sock,
                                        Cursor::new(requests.clone()),
                                        &mut out,
                                        client_options,
                                    )
                                    .expect("client failed");
                                    let out = String::from_utf8(out).expect("utf8 response");
                                    for line in out.lines() {
                                        assert!(
                                            line.contains("\"ok\":true"),
                                            "query failed under load: {line}"
                                        );
                                    }
                                    stats
                                })
                            })
                            .collect();
                        let mut total = 0u64;
                        let mut lats = Vec::new();
                        for h in handles {
                            let stats = h.join().unwrap();
                            total += stats.exchanges;
                            lats.extend(stats.latencies_ms);
                        }
                        (total, lats)
                    });
                    let trial_wall = started.elapsed().as_secs_f64() * 1e3;
                    assert_eq!(exchanged, expected, "every request must be answered");
                    if trial_wall < wall_ms {
                        wall_ms = trial_wall;
                        latencies = trial_lats;
                    }
                }

                // Read the counters, then shut the server down.
                let mut out = Vec::new();
                client_unix(
                    &sock,
                    Cursor::new(
                        "{\"op\":\"stats\",\"id\":\"s\"}\n{\"op\":\"shutdown\"}\n".to_string(),
                    ),
                    &mut out,
                )
                .expect("stats client failed");
                let out = String::from_utf8(out).expect("utf8 stats");
                let stats_line = out.lines().next().expect("stats response");
                let fields = minijson::parse_object(stats_line).expect("stats parses");
                let summary = server.join().expect("server thread panicked");
                assert!(summary.shutdown, "server must exit via shutdown");
                assert!(!sock.exists(), "socket file must be removed");

                let loads = stat_u64(&fields, "loads");
                let result_hits = stat_u64(&fields, "result_hits");
                let conn_peak = stat_u64(&fields, "conn_peak");
                // The properties this experiment exists to pin down.
                assert_eq!(
                    loads, distinct_graphs,
                    "single-flight: each distinct graph loads exactly once \
                     ({transport}, {clients} clients, {workers} workers)"
                );
                // The warm-up round computed both results; every timed
                // query in every trial repeats one of them, so all must
                // be replays.
                let expected_hits = expected * TRIALS as u64;
                assert!(
                    result_hits >= expected_hits,
                    "expected ≥ {expected_hits} result-cache hits, got {result_hits} ({transport})"
                );

                let qps = if wall_ms > 0.0 {
                    expected as f64 / (wall_ms / 1e3)
                } else {
                    0.0
                };
                Row {
                    case: format!("{clients}x{workers}"),
                    transport,
                    clients,
                    repeat,
                    workers,
                    queries: expected,
                    wall_ms,
                    qps,
                    p50_ms: percentile(&latencies, 50.0),
                    p99_ms: percentile(&latencies, 99.0),
                    speedup: 0.0, // filled in below
                    loads,
                    result_hits,
                    conn_peak,
                }
            });
            let mut row = row;
            if transport == "jsonl" {
                jsonl_qps = row.qps;
            }
            row.speedup = if jsonl_qps > 0.0 {
                row.qps / jsonl_qps
            } else {
                0.0
            };
            if transport == "binary+pipe" && clients == 1 && workers == 1 {
                assert!(
                    row.speedup >= MIN_PIPELINE_SPEEDUP,
                    "pipelined binary must beat JSONL lockstep by ≥ {MIN_PIPELINE_SPEEDUP}x \
                     on the 1x1 cell (got {:.2}x: {:.0} q/s vs {jsonl_qps:.0} q/s)",
                    row.speedup,
                    row.qps
                );
            }
            rows.push(row);
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Sharded serving: the same socket, N hash-routed engine shards.
// ---------------------------------------------------------------------------

/// One shard-count measurement of the sharded table.
#[derive(Clone, Debug)]
pub struct ShardRow {
    /// Engine shards behind the socket (`densest serve --shards`).
    pub shards: usize,
    /// Concurrent client connections (one per graph file — disjoint
    /// per-shard load at the highest shard count, exactly what
    /// `densest client --graph-per-conn` produces).
    pub clients: usize,
    /// Router I/O workers; each shard runs this many executors too.
    pub workers: usize,
    /// Timed-phase query requests answered per trial.
    pub queries: u64,
    /// Wall-clock milliseconds of the fastest timed trial.
    pub wall_ms: f64,
    /// Aggregate queries per second across all connections.
    pub qps: f64,
    /// Median per-request latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile per-request latency (ms).
    pub p99_ms: f64,
    /// `qps / qps(reference row)` — scaling vs the first shard count.
    pub speedup: f64,
    /// Per-shard `routed` counters, `/`-joined (`-` on a 1-shard row,
    /// which runs the classic single-engine pool with no router).
    pub routed: String,
    /// Whether every response was byte-identical to the reference
    /// shard count's transcript (asserted — a row only exists if so).
    pub parity: bool,
}

/// Extracts a numeric counter from a raw JSON response line. The
/// sharded stats response embeds arrays (`named`, `shards`) that the
/// flat request parser rejects by design, so counters are read
/// textually here.
fn field_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = line
        .find(&pat)
        .unwrap_or_else(|| panic!("stats response missing '{key}': {line}"));
    let digits: String = line[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("stats field '{key}' is not a number: {line}"))
}

/// Removes one `,"key":value` scalar field from every line.
fn strip_scalar(text: &str, key: &str) -> String {
    let pat = format!(",\"{key}\":");
    text.lines()
        .map(|line| match line.find(&pat) {
            Some(at) => {
                let rest = &line[at + pat.len()..];
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                format!("{}{}", &line[..at], &rest[end..])
            }
            None => line.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Strips the fields that legitimately differ between shard counts:
/// `elapsed_ms` (nondeterministic) and `loads` (an engine-cumulative
/// counter — a 1-shard server loads every file into one engine, shard
/// engines load only their own). Everything else must match exactly.
fn strip_run_dependent(text: &str) -> String {
    strip_scalar(&strip_scalar(text, "elapsed_ms"), "loads")
}

/// Runs the sharded-serving comparison: the same multi-graph workload
/// against one server per shard count, byte parity and per-shard
/// routing asserted against the first count (normally 1).
pub fn run_sharded(scale: Scale, shard_counts: &[usize]) -> Vec<ShardRow> {
    assert!(!shard_counts.is_empty(), "need at least one shard count");
    let max_shards = shard_counts.iter().copied().max().unwrap().max(1);
    let dir = data_dir();

    // One graph file per residue class mod the highest shard count,
    // probed by file name: at that count every file routes to a
    // distinct shard, so a connection pinned to one file generates
    // disjoint-shard load. (Any smaller count in the list divides the
    // load coarser but stays deterministic.)
    let mut files: Vec<String> = Vec::new();
    let mut covered = vec![false; max_shards];
    for i in 0u32.. {
        if files.len() == max_shards {
            break;
        }
        assert!(i < 10_000, "could not cover every shard residue");
        let key = dir
            .join(format!("shard_graph_{i}.txt"))
            .display()
            .to_string();
        let residue = routing_shard(None, Some(&key), max_shards);
        if !covered[residue] {
            covered[residue] = true;
            files.push(key);
        }
    }
    for (i, key) in files.iter().enumerate() {
        let mut list = if i % 2 == 0 {
            flickr_standin(scale)
        } else {
            livejournal_standin(scale)
        };
        // Every file must hold a *distinct* graph: the result cache
        // keys on the content fingerprint, so two identical files
        // would replay each other's results on a 1-shard server but
        // not across shards — a spurious parity break. A pendant edge
        // to a fresh node makes each file unique.
        let fresh = list.num_nodes;
        list.edges.push((0, fresh + i as u32));
        list.num_nodes = fresh + i as u32 + 1;
        write_text(PathBuf::from(key), &list).expect("write sharded edge file");
    }

    let clients = files.len();
    let workers = 2;
    let repeat = 512;
    let timed_options = ClientOptions {
        binary: true,
        pipeline: PIPELINE_DEPTH,
    };

    // One warm-up round: one query per file, in file order.
    let round: String = files
        .iter()
        .enumerate()
        .map(|(i, key)| {
            format!("{{\"id\":{i},\"algorithm\":\"approx\",\"file\":\"{key}\",\"epsilon\":0.5}}\n")
        })
        .collect();

    let mut ref_warmup = String::new();
    let mut ref_timed: Vec<String> = Vec::new();
    let mut ref_qps = 0.0;
    let mut rows = Vec::new();
    for (row_idx, &shards) in shard_counts.iter().enumerate() {
        let sock = dir.join(format!("serve_shards_{shards}.sock"));
        let _ = std::fs::remove_file(&sock);
        let engine = Engine::new();
        let policy = ResourcePolicy::default();
        let options = ServeOptions {
            workers,
            max_connections: 2 * clients + 2,
            shards,
            ..ServeOptions::default()
        };
        let mut row = std::thread::scope(|s| {
            let server = {
                let (engine, sock) = (&engine, sock.clone());
                s.spawn(move || {
                    serve_unix(engine, &policy, &sock, &options).expect("sharded serve loop failed")
                })
            };
            for _ in 0..300 {
                if sock.exists() {
                    break;
                }
                // Harness-only: wait for the server thread to bind.
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            assert!(sock.exists(), "sharded server socket never appeared");

            // Warm-up + parity: a single JSONL connection runs the
            // round; the stripped transcript must be byte-identical
            // across shard counts.
            let warmup = {
                let mut out = Vec::new();
                client_unix(&sock, Cursor::new(round.clone()), &mut out)
                    .expect("sharded warm-up client failed");
                strip_run_dependent(&String::from_utf8(out).expect("utf8 response"))
            };
            // Timed phase: one pipelined binary connection per file.
            let expected = (clients * repeat) as u64;
            let mut wall_ms = f64::INFINITY;
            let mut latencies: Vec<f64> = Vec::new();
            let mut transcripts: Vec<String> = Vec::new();
            for trial in 0..TRIALS {
                let started = std::time::Instant::now();
                let results: Vec<(u64, Vec<f64>, String)> = std::thread::scope(|cs| {
                    let handles: Vec<_> = files
                        .iter()
                        .map(|key| {
                            let (sock, timed_options) = (&sock, &timed_options);
                            let requests = format!(
                                "{{\"algorithm\":\"approx\",\"file\":\"{key}\",\"epsilon\":0.5}}\n"
                            )
                            .repeat(repeat);
                            cs.spawn(move || {
                                let mut out = Vec::new();
                                let stats = client_unix_opts(
                                    sock,
                                    Cursor::new(requests),
                                    &mut out,
                                    timed_options,
                                )
                                .expect("sharded client failed");
                                (
                                    stats.exchanges,
                                    stats.latencies_ms,
                                    String::from_utf8(out).expect("utf8 response"),
                                )
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                let trial_wall = started.elapsed().as_secs_f64() * 1e3;
                let total: u64 = results.iter().map(|(n, _, _)| n).sum();
                assert_eq!(total, expected, "every sharded request must be answered");
                if trial == 0 {
                    transcripts = results
                        .iter()
                        .map(|(_, _, out)| strip_run_dependent(out))
                        .collect();
                }
                if trial_wall < wall_ms {
                    wall_ms = trial_wall;
                    latencies = results.into_iter().flat_map(|(_, l, _)| l).collect();
                }
            }

            // Counters, then shutdown. The merged stats keep the flat
            // 1-shard schema; in sharded mode a per-shard breakdown
            // array follows, and its `routed` counters must match the
            // per-file request counts exactly — every request touched
            // its home shard and no other (zero cross-shard traffic).
            let mut out = Vec::new();
            client_unix(
                &sock,
                Cursor::new("{\"op\":\"stats\",\"id\":\"s\"}\n{\"op\":\"shutdown\"}\n".to_string()),
                &mut out,
            )
            .expect("sharded stats client failed");
            let out = String::from_utf8(out).expect("utf8 stats");
            let stats_line = out.lines().next().expect("stats response").to_string();
            let summary = server.join().expect("sharded server thread panicked");
            assert!(summary.shutdown, "sharded server must exit via shutdown");
            assert!(!sock.exists(), "sharded socket file must be removed");

            // Parity — asserted only now, with the server down: a
            // panic inside the scope would otherwise leave the serve
            // thread running and deadlock the join instead of failing.
            for t in &transcripts {
                for line in t.lines() {
                    assert!(line.contains("\"ok\":true"), "sharded query failed: {line}");
                }
            }
            if row_idx == 0 {
                ref_warmup = warmup;
                ref_timed = transcripts;
            } else {
                assert_eq!(
                    warmup, ref_warmup,
                    "a {shards}-shard server must answer byte-identically to the \
                     {}-shard reference",
                    shard_counts[0]
                );
                assert_eq!(
                    transcripts, ref_timed,
                    "sharded timed-phase responses must be byte-identical to the \
                     reference transcript ({shards} shards)"
                );
            }

            assert_eq!(
                field_u64(&stats_line, "loads"),
                clients as u64,
                "single-flight per shard: each file loads exactly once ({shards} shards)"
            );
            let replays = (TRIALS * clients * repeat) as u64;
            let result_hits = field_u64(&stats_line, "result_hits");
            assert!(
                result_hits >= replays,
                "expected ≥ {replays} result-cache hits, got {result_hits} ({shards} shards)"
            );
            let routed = if shards == 1 {
                "-".to_string()
            } else {
                let mut per_shard = vec![0u64; shards];
                for key in &files {
                    per_shard[routing_shard(None, Some(key), shards)] +=
                        1 + (TRIALS * repeat) as u64;
                }
                for (k, expect) in per_shard.iter().enumerate() {
                    let want = format!("\"shard\":{k},\"routed\":{expect}");
                    assert!(
                        stats_line.contains(&want),
                        "per-shard breakdown must prove disjoint routing: \
                         missing {want} in {stats_line}"
                    );
                }
                per_shard
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join("/")
            };

            ShardRow {
                shards,
                clients,
                workers,
                queries: expected,
                wall_ms,
                qps: if wall_ms > 0.0 {
                    expected as f64 / (wall_ms / 1e3)
                } else {
                    0.0
                },
                p50_ms: percentile(&latencies, 50.0),
                p99_ms: percentile(&latencies, 99.0),
                speedup: 0.0, // filled in below
                routed,
                parity: true,
            }
        });
        if row_idx == 0 {
            ref_qps = row.qps;
        }
        row.speedup = if ref_qps > 0.0 {
            row.qps / ref_qps
        } else {
            0.0
        };
        rows.push(row);
    }

    // The scaling criterion: 4 shards must reach 1.5x the 1-shard
    // aggregate q/s — hard only where the hardware can parallelize.
    // On a 1-CPU container shards serialize on the core and the honest
    // result is ~1x (or below: more threads, same silicon), so the
    // floor degrades to a warning there.
    if shard_counts[0] == 1 {
        if let Some(best) = rows
            .iter()
            .filter(|r| r.shards >= 4)
            .map(|r| r.speedup)
            .max_by(|a, b| a.partial_cmp(b).expect("finite speedups"))
        {
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            if cores >= 4 {
                assert!(
                    best >= 1.5,
                    "4-shard aggregate q/s must reach 1.5x the 1-shard server on a \
                     {cores}-core host (got {best:.2}x)"
                );
            } else if best < 1.5 {
                eprintln!(
                    "[serve-throughput] WARNING: sharded speedup {best:.2}x is below the \
                     1.5x multi-core floor ({cores} CPU(s) visible — shards serialize \
                     on the hardware; recorded warn-only)"
                );
            }
        }
    }
    rows
}

/// Renders the sharded rows as a paper-style table.
pub fn to_shard_table(rows: &[ShardRow]) -> Table {
    let mut t = Table::new(
        "Sharded serving: hash-routed engine shards behind one socket \
         (pipelined binary, one connection per graph file; byte parity and \
         disjoint per-shard routing asserted vs the first row)",
        &[
            "shards", "clients", "workers", "queries", "wall ms", "q/s", "p50 ms", "p99 ms",
            "speedup", "routed", "parity",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.shards.to_string(),
            r.clients.to_string(),
            r.workers.to_string(),
            r.queries.to_string(),
            fmt_f(r.wall_ms, 2),
            fmt_f(r.qps, 0),
            fmt_f(r.p50_ms, 3),
            fmt_f(r.p99_ms, 3),
            fmt_f(r.speedup, 2),
            r.routed.clone(),
            if r.parity { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    t
}

/// Renders the rows as a paper-style table.
pub fn to_table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Serve throughput: transports x concurrent clients vs one worker-pool server \
         (two graph files; speedup is vs the same case's jsonl row)",
        &[
            "case",
            "transport",
            "clients",
            "workers",
            "queries",
            "wall ms",
            "q/s",
            "p50 ms",
            "p99 ms",
            "speedup",
            "loads",
            "res hits",
            "conn peak",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.case.clone(),
            r.transport.to_string(),
            r.clients.to_string(),
            r.workers.to_string(),
            r.queries.to_string(),
            fmt_f(r.wall_ms, 2),
            fmt_f(r.qps, 0),
            fmt_f(r.p50_ms, 3),
            fmt_f(r.p99_ms, 3),
            fmt_f(r.speedup, 2),
            r.loads.to_string(),
            r.result_hits.to_string(),
            r.conn_peak.to_string(),
        ]);
    }
    t
}
