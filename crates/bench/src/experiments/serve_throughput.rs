//! **Serve-throughput experiment** — the wire-path story end to end:
//! the same (clients × workers) grid measured over three transports —
//! JSONL lockstep, binary frames lockstep, and binary frames pipelined
//! — reporting q/s **and tail latency** (p50/p99 per request) per cell,
//! with content parity across transports asserted per row.
//!
//! Per row, a fresh [`dsg_engine::Engine`] serves a Unix socket with a
//! worker pool ([`dsg_engine::ServeOptions`]). A single warm-up
//! connection first sends one round (one query per distinct graph
//! file) and its response transcript — stripped of the
//! nondeterministic `elapsed_ms` — must be **byte-identical** to the
//! JSONL transcript of the same case (fresh servers make the cache
//! counters deterministic, so this is an exact comparison, not a
//! fuzzy one). Then `clients` client threads each issue `repeat`
//! rounds over one connection via [`dsg_engine::client_unix_opts`],
//! exactly like `densest client --repeat M --parallel N [--binary]
//! [--pipeline K]`, and per-request latencies from every connection
//! are folded into the p50/p99 columns. The timed phase runs `TRIALS`
//! times and the fastest trial is reported (min-time benchmarking:
//! scheduler noise only ever slows a trial down).
//!
//! Afterwards the `stats` op is parsed (with the same `minijson`
//! parser the server uses) and the run `assert!`s the properties the
//! CI smoke steps rely on:
//!
//! * **single-flight loading** — `loads` equals the number of distinct
//!   graph files, no matter how many clients raced on them cold;
//! * **result caching** — every timed-phase query repeats the warm-up
//!   queries, so *all* of them must be result-cache replays;
//! * **transport parity** — binary and pipelined transcripts match the
//!   JSONL transcript exactly (modulo `elapsed_ms`);
//! * **the wire path pays for itself** — on the 1×1 cell, where the
//!   measurement is least scheduler-noisy, pipelined binary q/s must
//!   beat JSONL lockstep by at least [`MIN_PIPELINE_SPEEDUP`]×. The
//!   floor is deliberately conservative for noisy CI runners; the
//!   table reports the honest measured ratio.
//!
//! On a single-CPU container the measured q/s does not scale with
//! workers (the compute is serialized by the hardware; see the PR-1
//! scaling experiment for the same honesty note) — but the *transport*
//! speedup survives, because it removes per-request round trips and
//! syscalls rather than adding parallelism.

use std::io::Cursor;
use std::path::PathBuf;

use dsg_datasets::{flickr_standin, livejournal_standin, Scale};
use dsg_engine::minijson::{self, Value};
use dsg_engine::{
    client_unix, client_unix_opts, percentile, serve_unix, ClientOptions, Engine, ResourcePolicy,
    ServeOptions,
};
use dsg_graph::io::write_text;

use crate::table::{fmt_f, Table};

/// Conservative internal floor for the pipelined-binary speedup over
/// JSONL lockstep on the 1×1 cell. Measured runs on a single-CPU
/// container sit at 3.0–3.5× (result-cache replays make the wire the
/// bottleneck); the floor is set well below that so noisy CI runners
/// don't flake, while still catching the fast path silently rotting
/// back to per-request round trips.
pub const MIN_PIPELINE_SPEEDUP: f64 = 2.0;

/// Requests kept in flight per connection for the pipelined transport.
const PIPELINE_DEPTH: usize = 128;

/// Timed-phase trials per row; the fastest trial is reported. On a
/// shared single-CPU runner the spread between trials is scheduler
/// noise, and min-time is the standard way to strip it without
/// inflating the result (every trial really ran that fast end to end).
const TRIALS: usize = 3;

/// One (transport × clients × workers) measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Case label (`clients x workers`).
    pub case: String,
    /// Wire transport: `jsonl`, `binary`, or `binary+pipe`.
    pub transport: &'static str,
    /// Concurrent client connections.
    pub clients: usize,
    /// Query rounds each client issued.
    pub repeat: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Timed-phase query requests answered.
    pub queries: u64,
    /// Wall-clock milliseconds of the timed client phase.
    pub wall_ms: f64,
    /// Queries per second.
    pub qps: f64,
    /// Median per-request latency (ms) across all connections.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency (ms).
    pub p99_ms: f64,
    /// `qps / qps(jsonl)` for the same case (1.0 on the jsonl row).
    pub speedup: f64,
    /// Graph loads (must equal the number of distinct graph files).
    pub loads: u64,
    /// Result-cache replays.
    pub result_hits: u64,
    /// Concurrent-connection high-water mark the server observed.
    pub conn_peak: u64,
}

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_serve_throughput");
    std::fs::create_dir_all(&dir).expect("cannot create serve-throughput data dir");
    dir
}

/// Pulls a numeric field out of a parsed stats response.
fn stat_u64(fields: &[(String, Value)], key: &str) -> u64 {
    minijson::get(fields, key)
        .and_then(Value::as_uint)
        .unwrap_or_else(|| panic!("stats response missing '{key}'"))
}

/// Removes the nondeterministic `elapsed_ms` field (always last on
/// query responses) so transcripts compare byte-for-byte.
fn strip_elapsed(text: &str) -> String {
    text.lines()
        .map(|line| match line.find(",\"elapsed_ms\":") {
            Some(at) => format!("{}}}", &line[..at]),
            None => line.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The three transports under measurement.
fn transports() -> [(&'static str, ClientOptions); 3] {
    [
        (
            "jsonl",
            ClientOptions {
                binary: false,
                pipeline: 1,
            },
        ),
        (
            "binary",
            ClientOptions {
                binary: true,
                pipeline: 1,
            },
        ),
        (
            "binary+pipe",
            ClientOptions {
                binary: true,
                pipeline: PIPELINE_DEPTH,
            },
        ),
    ]
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Vec<Row> {
    // Two distinct graph files so "loads == distinct graphs" is a
    // stronger assertion than "loads == 1".
    let dir = data_dir();
    let graphs = [
        (dir.join("serve_a.txt"), flickr_standin(scale)),
        (dir.join("serve_b.txt"), livejournal_standin(scale)),
    ];
    for (path, list) in &graphs {
        write_text(path, list).expect("write serve-throughput edge file");
    }
    let distinct_graphs = graphs.len() as u64;

    // One round = one query per graph file. The timed phase repeats it
    // enough that pipelining has windows to fill.
    let round: String = graphs
        .iter()
        .enumerate()
        .map(|(i, (path, _))| {
            format!(
                "{{\"id\":{i},\"algorithm\":\"approx\",\"file\":\"{}\",\"epsilon\":0.5}}\n",
                path.display()
            )
        })
        .collect();
    let repeat = 1024;

    let cases: &[(usize, usize)] = &[(1, 1), (2, 2), (4, 4)];
    let mut rows = Vec::new();
    for &(clients, workers) in cases {
        let mut jsonl_qps = 0.0;
        let mut jsonl_transcript = String::new();
        for (transport, client_options) in transports() {
            let sock = dir.join(format!("serve_{clients}x{workers}_{transport}.sock"));
            let _ = std::fs::remove_file(&sock);

            let engine = Engine::new();
            let policy = ResourcePolicy::default();
            let options = ServeOptions {
                workers,
                max_connections: 2 * clients.max(1),
            };
            let row = std::thread::scope(|s| {
                let server = {
                    let (engine, sock) = (&engine, sock.clone());
                    s.spawn(move || {
                        serve_unix(engine, &policy, &sock, &options).expect("serve loop failed")
                    })
                };
                for _ in 0..300 {
                    if sock.exists() {
                        break;
                    }
                    // Harness-only: wait for the server thread to bind.
                    #[allow(clippy::disallowed_methods)]
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                assert!(sock.exists(), "server socket never appeared");

                // Parity warm-up: one connection, one round, fresh
                // server — the transcript is fully deterministic
                // (cold cache counters included) and must match the
                // JSONL transcript of the same case exactly.
                let transcript = {
                    let mut out = Vec::new();
                    client_unix_opts(&sock, Cursor::new(round.clone()), &mut out, &client_options)
                        .expect("warm-up client failed");
                    strip_elapsed(&String::from_utf8(out).expect("utf8 response"))
                };
                if transport == "jsonl" {
                    jsonl_transcript = transcript.clone();
                } else {
                    assert_eq!(
                        transcript, jsonl_transcript,
                        "{transport} responses must be byte-identical in content to JSONL \
                         ({clients} clients, {workers} workers)"
                    );
                }

                // Timed phase: `clients` connections × `repeat` rounds,
                // per-request latencies folded across all connections.
                // Run [`TRIALS`] times against the same server and keep
                // the fastest trial (and its latencies).
                let requests: String = round.repeat(repeat);
                let expected = (clients * repeat * graphs.len()) as u64;
                let mut wall_ms = f64::INFINITY;
                let mut latencies: Vec<f64> = Vec::new();
                for _trial in 0..TRIALS {
                    let started = std::time::Instant::now();
                    let (exchanged, trial_lats): (u64, Vec<f64>) = std::thread::scope(|cs| {
                        let handles: Vec<_> = (0..clients)
                            .map(|_| {
                                let (sock, requests, client_options) =
                                    (&sock, &requests, &client_options);
                                cs.spawn(move || {
                                    let mut out = Vec::new();
                                    let stats = client_unix_opts(
                                        sock,
                                        Cursor::new(requests.clone()),
                                        &mut out,
                                        client_options,
                                    )
                                    .expect("client failed");
                                    let out = String::from_utf8(out).expect("utf8 response");
                                    for line in out.lines() {
                                        assert!(
                                            line.contains("\"ok\":true"),
                                            "query failed under load: {line}"
                                        );
                                    }
                                    stats
                                })
                            })
                            .collect();
                        let mut total = 0u64;
                        let mut lats = Vec::new();
                        for h in handles {
                            let stats = h.join().unwrap();
                            total += stats.exchanges;
                            lats.extend(stats.latencies_ms);
                        }
                        (total, lats)
                    });
                    let trial_wall = started.elapsed().as_secs_f64() * 1e3;
                    assert_eq!(exchanged, expected, "every request must be answered");
                    if trial_wall < wall_ms {
                        wall_ms = trial_wall;
                        latencies = trial_lats;
                    }
                }

                // Read the counters, then shut the server down.
                let mut out = Vec::new();
                client_unix(
                    &sock,
                    Cursor::new(
                        "{\"op\":\"stats\",\"id\":\"s\"}\n{\"op\":\"shutdown\"}\n".to_string(),
                    ),
                    &mut out,
                )
                .expect("stats client failed");
                let out = String::from_utf8(out).expect("utf8 stats");
                let stats_line = out.lines().next().expect("stats response");
                let fields = minijson::parse_object(stats_line).expect("stats parses");
                let summary = server.join().expect("server thread panicked");
                assert!(summary.shutdown, "server must exit via shutdown");
                assert!(!sock.exists(), "socket file must be removed");

                let loads = stat_u64(&fields, "loads");
                let result_hits = stat_u64(&fields, "result_hits");
                let conn_peak = stat_u64(&fields, "conn_peak");
                // The properties this experiment exists to pin down.
                assert_eq!(
                    loads, distinct_graphs,
                    "single-flight: each distinct graph loads exactly once \
                     ({transport}, {clients} clients, {workers} workers)"
                );
                // The warm-up round computed both results; every timed
                // query in every trial repeats one of them, so all must
                // be replays.
                let expected_hits = expected * TRIALS as u64;
                assert!(
                    result_hits >= expected_hits,
                    "expected ≥ {expected_hits} result-cache hits, got {result_hits} ({transport})"
                );

                let qps = if wall_ms > 0.0 {
                    expected as f64 / (wall_ms / 1e3)
                } else {
                    0.0
                };
                Row {
                    case: format!("{clients}x{workers}"),
                    transport,
                    clients,
                    repeat,
                    workers,
                    queries: expected,
                    wall_ms,
                    qps,
                    p50_ms: percentile(&latencies, 50.0),
                    p99_ms: percentile(&latencies, 99.0),
                    speedup: 0.0, // filled in below
                    loads,
                    result_hits,
                    conn_peak,
                }
            });
            let mut row = row;
            if transport == "jsonl" {
                jsonl_qps = row.qps;
            }
            row.speedup = if jsonl_qps > 0.0 {
                row.qps / jsonl_qps
            } else {
                0.0
            };
            if transport == "binary+pipe" && clients == 1 && workers == 1 {
                assert!(
                    row.speedup >= MIN_PIPELINE_SPEEDUP,
                    "pipelined binary must beat JSONL lockstep by ≥ {MIN_PIPELINE_SPEEDUP}x \
                     on the 1x1 cell (got {:.2}x: {:.0} q/s vs {jsonl_qps:.0} q/s)",
                    row.speedup,
                    row.qps
                );
            }
            rows.push(row);
        }
    }
    rows
}

/// Renders the rows as a paper-style table.
pub fn to_table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Serve throughput: transports x concurrent clients vs one worker-pool server \
         (two graph files; speedup is vs the same case's jsonl row)",
        &[
            "case",
            "transport",
            "clients",
            "workers",
            "queries",
            "wall ms",
            "q/s",
            "p50 ms",
            "p99 ms",
            "speedup",
            "loads",
            "res hits",
            "conn peak",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.case.clone(),
            r.transport.to_string(),
            r.clients.to_string(),
            r.workers.to_string(),
            r.queries.to_string(),
            fmt_f(r.wall_ms, 2),
            fmt_f(r.qps, 0),
            fmt_f(r.p50_ms, 3),
            fmt_f(r.p99_ms, 3),
            fmt_f(r.speedup, 2),
            r.loads.to_string(),
            r.result_hits.to_string(),
            r.conn_peak.to_string(),
        ]);
    }
    t
}
