//! **Serve-throughput experiment** — the PR-4 concurrency story end to
//! end: N concurrent clients × M repeated query rounds against one
//! worker-pool server, measuring queries/sec and both cache layers.
//!
//! Per case, a fresh [`dsg_engine::Engine`] serves a Unix socket with a
//! worker pool ([`dsg_engine::ServeOptions`]); `clients` client threads
//! each issue `repeat` rounds of the same two queries (one per distinct
//! graph file) over one connection, exactly like
//! `densest client --repeat M --parallel N`. Afterwards the `stats` op
//! is parsed (with the same `minijson` parser the server uses) and the
//! run `assert!`s the two properties the CI smoke step relies on:
//!
//! * **single-flight loading** — `loads` equals the number of distinct
//!   graph files, no matter how many clients raced on them cold;
//! * **result caching** — at least one repeated identical query was
//!   replayed from the result cache (`result_hits ≥ 1`; with `repeat`
//!   rounds per client, every client's rounds after the first are
//!   guaranteed hits).
//!
//! On a single-CPU container the measured q/s does not scale with
//! workers (the compute is serialized by the hardware; see the PR-1
//! scaling experiment for the same honesty note) — the table reports
//! whatever the host gives, while the *correctness* columns
//! (loads, hit rate) are asserted at every scale.

use std::io::Cursor;
use std::path::PathBuf;

use dsg_datasets::{flickr_standin, livejournal_standin, Scale};
use dsg_engine::minijson::{self, Value};
use dsg_engine::{client_unix, serve_unix, Engine, ResourcePolicy, ServeOptions};
use dsg_graph::io::write_text;

use crate::table::{fmt_f, Table};

/// One (clients × workers) measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Case label (`clients x workers`).
    pub case: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Query rounds each client issued.
    pub repeat: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Total query requests answered.
    pub queries: u64,
    /// Wall-clock milliseconds of the whole client phase.
    pub wall_ms: f64,
    /// Queries per second.
    pub qps: f64,
    /// Graph loads (must equal the number of distinct graph files).
    pub loads: u64,
    /// Catalog hits (queries served from an already-loaded graph).
    pub catalog_hits: u64,
    /// Result-cache replays.
    pub result_hits: u64,
    /// `result_hits / queries`.
    pub result_hit_rate: f64,
    /// Concurrent-connection high-water mark the server observed.
    pub conn_peak: u64,
}

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_serve_throughput");
    std::fs::create_dir_all(&dir).expect("cannot create serve-throughput data dir");
    dir
}

/// Pulls a numeric field out of a parsed stats response.
fn stat_u64(fields: &[(String, Value)], key: &str) -> u64 {
    minijson::get(fields, key)
        .and_then(Value::as_uint)
        .unwrap_or_else(|| panic!("stats response missing '{key}'"))
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Vec<Row> {
    // Two distinct graph files so "loads == distinct graphs" is a
    // stronger assertion than "loads == 1".
    let dir = data_dir();
    let graphs = [
        (dir.join("serve_a.txt"), flickr_standin(scale)),
        (dir.join("serve_b.txt"), livejournal_standin(scale)),
    ];
    for (path, list) in &graphs {
        write_text(path, list).expect("write serve-throughput edge file");
    }
    let distinct_graphs = graphs.len() as u64;

    let repeat = 4;
    let cases: &[(usize, usize)] = &[(1, 1), (2, 2), (4, 4)];
    let mut rows = Vec::new();
    for &(clients, workers) in cases {
        let sock = dir.join(format!("serve_{clients}x{workers}.sock"));
        let _ = std::fs::remove_file(&sock);

        let engine = Engine::new();
        let policy = ResourcePolicy::default();
        let options = ServeOptions {
            workers,
            max_connections: 2 * clients.max(1),
        };
        let row = std::thread::scope(|s| {
            let server = {
                let (engine, sock) = (&engine, sock.clone());
                s.spawn(move || {
                    serve_unix(engine, &policy, &sock, &options).expect("serve loop failed")
                })
            };
            for _ in 0..300 {
                if sock.exists() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            assert!(sock.exists(), "server socket never appeared");

            // One round = one query per graph file; each client repeats
            // the round over a single connection.
            let round: String = graphs
                .iter()
                .enumerate()
                .map(|(i, (path, _))| {
                    format!(
                        "{{\"id\":{i},\"algorithm\":\"approx\",\"file\":\"{}\",\"epsilon\":0.5}}\n",
                        path.display()
                    )
                })
                .collect();
            let requests: String = round.repeat(repeat);

            let started = std::time::Instant::now();
            let exchanged: u64 = std::thread::scope(|cs| {
                let handles: Vec<_> = (0..clients)
                    .map(|_| {
                        let (sock, requests) = (&sock, &requests);
                        cs.spawn(move || {
                            let mut out = Vec::new();
                            let n = client_unix(sock, Cursor::new(requests.clone()), &mut out)
                                .expect("client failed");
                            let out = String::from_utf8(out).expect("utf8 response");
                            for line in out.lines() {
                                assert!(
                                    line.contains("\"ok\":true"),
                                    "query failed under load: {line}"
                                );
                            }
                            n
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let expected = (clients * repeat * graphs.len()) as u64;
            assert_eq!(exchanged, expected, "every request must be answered");

            // Read the counters, then shut the server down.
            let mut out = Vec::new();
            client_unix(
                &sock,
                Cursor::new("{\"op\":\"stats\",\"id\":\"s\"}\n{\"op\":\"shutdown\"}\n".to_string()),
                &mut out,
            )
            .expect("stats client failed");
            let out = String::from_utf8(out).expect("utf8 stats");
            let stats_line = out.lines().next().expect("stats response");
            let fields = minijson::parse_object(stats_line).expect("stats parses");
            let summary = server.join().expect("server thread panicked");
            assert!(summary.shutdown, "server must exit via shutdown");
            assert!(!sock.exists(), "socket file must be removed");

            let loads = stat_u64(&fields, "loads");
            let catalog_hits = stat_u64(&fields, "hits");
            let result_hits = stat_u64(&fields, "result_hits");
            let conn_peak = stat_u64(&fields, "conn_peak");
            // The two properties this experiment exists to pin down.
            assert_eq!(
                loads, distinct_graphs,
                "single-flight: each distinct graph loads exactly once \
                 ({clients} clients, {workers} workers)"
            );
            assert!(
                result_hits >= 1,
                "a repeated identical query must be served from the result cache"
            );
            // Every client's rounds after its first are guaranteed hits.
            let guaranteed = (clients * (repeat - 1) * graphs.len()) as u64;
            assert!(
                result_hits >= guaranteed,
                "expected ≥ {guaranteed} result-cache hits, got {result_hits}"
            );

            Row {
                case: format!("{clients}x{workers}"),
                clients,
                repeat,
                workers,
                queries: expected,
                wall_ms,
                qps: if wall_ms > 0.0 {
                    expected as f64 / (wall_ms / 1e3)
                } else {
                    0.0
                },
                loads,
                catalog_hits,
                result_hits,
                result_hit_rate: result_hits as f64 / expected as f64,
                conn_peak,
            }
        });
        rows.push(row);
    }
    rows
}

/// Renders the rows as a paper-style table.
pub fn to_table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Serve throughput: concurrent clients vs one worker-pool server (two graph files)",
        &[
            "case",
            "clients",
            "repeat",
            "workers",
            "queries",
            "wall ms",
            "q/s",
            "loads",
            "cat hits",
            "res hits",
            "hit rate",
            "conn peak",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.case.clone(),
            r.clients.to_string(),
            r.repeat.to_string(),
            r.workers.to_string(),
            r.queries.to_string(),
            fmt_f(r.wall_ms, 2),
            fmt_f(r.qps, 0),
            r.loads.to_string(),
            r.catalog_hits.to_string(),
            r.result_hits.to_string(),
            fmt_f(r.result_hit_rate, 3),
            r.conn_peak.to_string(),
        ]);
    }
    t
}
