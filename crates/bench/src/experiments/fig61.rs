//! **Figure 6.1** — effect of ε on the approximation (relative to ε = 0)
//! and on the number of passes, for the flickr and im stand-ins.
//!
//! Paper findings to reproduce: density relative to ε = 0 stays within
//! ~±20% across ε ∈ [0, 2.5] (non-monotonically), while the number of
//! passes drops by roughly half as ε grows from 0 into [0.5, 1].

use dsg_core::undirected::approx_densest_csr;
use dsg_datasets::{flickr_standin, im_standin, Scale};
use dsg_graph::CsrUndirected;

use crate::table::{fmt_f, Table};

/// The ε grid of Figure 6.1.
pub const EPSILONS: [f64; 11] = [0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5];

/// One (graph, ε) measurement.
#[derive(Clone, Debug)]
pub struct Point {
    /// Dataset name.
    pub graph: &'static str,
    /// ε value.
    pub epsilon: f64,
    /// Best density found.
    pub density: f64,
    /// Density relative to the ε = 0 run of the same graph.
    pub relative_density: f64,
    /// Number of passes.
    pub passes: u32,
}

/// Runs the ε sweep on both undirected stand-ins.
pub fn run(scale: Scale) -> Vec<Point> {
    let mut out = Vec::new();
    for (name, list) in [("flickr", flickr_standin(scale)), ("im", im_standin(scale))] {
        let csr = CsrUndirected::from_edge_list(&list);
        let base = approx_densest_csr(&csr, 0.0).best_density;
        for &eps in &EPSILONS {
            let r = approx_densest_csr(&csr, eps);
            out.push(Point {
                graph: name,
                epsilon: eps,
                density: r.best_density,
                relative_density: if base > 0.0 {
                    r.best_density / base
                } else {
                    0.0
                },
                passes: r.passes,
            });
        }
    }
    out
}

/// Renders the points as a table.
pub fn to_table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "Figure 6.1: ε vs approximation (relative to ε=0) and number of passes",
        &["G", "ε", "ρ̃", "ρ̃/ρ̃(ε=0)", "passes"],
    );
    for p in points {
        t.push_row(vec![
            p.graph.to_string(),
            fmt_f(p.epsilon, 2),
            fmt_f(p.density, 2),
            fmt_f(p.relative_density, 3),
            p.passes.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let points = run(Scale::Tiny);
        assert_eq!(points.len(), 2 * EPSILONS.len());
        for name in ["flickr", "im"] {
            let series: Vec<&Point> = points.iter().filter(|p| p.graph == name).collect();
            // ε = 0 is the reference.
            assert!((series[0].relative_density - 1.0).abs() < 1e-9);
            // Quality stays within the paper's observed band (±40% is
            // generous; the paper sees ±20%).
            for p in &series {
                assert!(
                    p.relative_density > 0.6 && p.relative_density < 1.4,
                    "{name} ε={}: relative density {}",
                    p.epsilon,
                    p.relative_density
                );
            }
            // Passes shrink substantially from ε=0 to ε=2.5.
            let p0 = series[0].passes;
            let p_last = series.last().unwrap().passes;
            assert!(
                p_last < p0,
                "{name}: passes did not decrease ({p0} -> {p_last})"
            );
        }
    }
}
