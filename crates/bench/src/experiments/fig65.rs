//! **Figure 6.5** — the per-pass behavior of |S|, |T|, and |E(S,T)| at
//! the best ratio `c` (δ = 2, ε = 1), on livejournal.
//!
//! Paper finding: the trace shows the "alternate" nature of the
//! simplified Algorithm 3 — the side that is too large relative to `c`
//! shrinks, then the other — while nodes and edges fall dramatically.

use dsg_core::directed::{approx_densest_directed_csr, sweep_c_csr};
use dsg_datasets::{livejournal_standin, Scale};
use dsg_graph::CsrDirected;

use crate::table::{fmt_f, Table};

/// One pass of the best-c trace.
#[derive(Clone, Debug)]
pub struct PassRow {
    /// 1-based pass.
    pub pass: u32,
    /// |S| at pass start.
    pub s_size: usize,
    /// |T| at pass start.
    pub t_size: usize,
    /// |E(S,T)| at pass start.
    pub edges: usize,
    /// Which side was removed from.
    pub removed_from_s: bool,
}

/// The experiment result.
#[derive(Clone, Debug)]
pub struct Fig65 {
    /// The best ratio found by the δ=2 sweep.
    pub best_c: f64,
    /// Density at the best c.
    pub best_density: f64,
    /// Per-pass trace at the best c.
    pub trace: Vec<PassRow>,
}

/// Runs the sweep, then re-runs at the best `c` to capture the trace.
pub fn run(scale: Scale) -> Fig65 {
    let list = livejournal_standin(scale);
    let csr = CsrDirected::from_edge_list(&list);
    let sweep = sweep_c_csr(&csr, 2.0, 1.0);
    let best_c = sweep.best.c;
    let run = approx_densest_directed_csr(&csr, best_c, 1.0);
    Fig65 {
        best_c,
        best_density: run.best_density,
        trace: run
            .trace
            .iter()
            .map(|p| PassRow {
                pass: p.pass,
                s_size: p.s_size,
                t_size: p.t_size,
                edges: p.edges,
                removed_from_s: p.removed_from_s,
            })
            .collect(),
    }
}

/// Renders the trace as a table.
pub fn to_table(r: &Fig65) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 6.5: |S|, |T|, |E(S,T)| per pass at best c = {} (ε=1, δ=2)",
            fmt_f(r.best_c, 3)
        ),
        &["pass", "|S|", "|T|", "|E(S,T)|", "side removed"],
    );
    for p in &r.trace {
        t.push_row(vec![
            p.pass.to_string(),
            p.s_size.to_string(),
            p.t_size.to_string(),
            p.edges.to_string(),
            if p.removed_from_s { "S" } else { "T" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_alternates_and_shrinks() {
        let r = run(Scale::Tiny);
        assert!(r.best_density > 0.0);
        assert!(!r.trace.is_empty());
        // Both sides get removed from at some point (the "alternate"
        // nature the paper highlights).
        let s_removals = r.trace.iter().filter(|p| p.removed_from_s).count();
        let t_removals = r.trace.len() - s_removals;
        assert!(s_removals > 0, "S never shrank");
        assert!(t_removals > 0, "T never shrank");
        // Edges monotonically non-increasing.
        for w in r.trace.windows(2) {
            assert!(w[1].edges <= w[0].edges);
        }
    }
}
