//! **Planner experiment** — which backend does the resource-aware
//! planner pick at each scale, what does it cost, and does it return
//! the same answer?
//!
//! One graph is generated per scale and written to disk; the same
//! `approx` query is then planned and executed by the engine under a
//! grid of resource policies chosen to exercise every planner rule:
//!
//! * unbounded budget, 1 thread → in-memory serial;
//! * unbounded budget, 4 threads → parallel CSR;
//! * budget at 1/8 of the in-memory estimate → file-streamed;
//! * a sketch width on the query → sketched oracle;
//! * forced MapReduce under a tight budget → spill-to-disk shuffle.
//!
//! Each row records the planner's choice, the wall time, and parity
//! against the forced in-memory run. The run `assert!`s the planner
//! chose the expected backend and that every exact backend matched the
//! reference bit for bit (the sketched row reports its density ratio
//! instead — a sketch is an estimator, not an exact oracle), so a
//! planner regression fails the `repro planner` step loudly.

use std::path::PathBuf;

use dsg_datasets::{flickr_standin, Scale};
use dsg_engine::{planner, Algorithm, BackendRequest, Engine, Query, ResourcePolicy, Source};
use dsg_graph::io::write_text;

use crate::table::{fmt_f, Table};

/// One (policy, plan, result) measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Which policy case ran.
    pub case: &'static str,
    /// Backend the planner chose.
    pub backend: String,
    /// Nodes in the generated graph.
    pub nodes: u64,
    /// Edges in the generated graph.
    pub edges: u64,
    /// Wall-clock milliseconds of plan + execute.
    pub wall_ms: f64,
    /// Best density found.
    pub density: f64,
    /// Passes over the edge set (0 where the notion does not apply).
    pub passes: u32,
    /// `density / in-memory reference density`.
    pub ratio: f64,
    /// Result matches the forced in-memory run bit for bit.
    pub exact_match: bool,
}

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_planner_experiment");
    std::fs::create_dir_all(&dir).expect("cannot create planner data dir");
    dir
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Vec<Row> {
    let list = flickr_standin(scale);
    let path = data_dir().join(format!("edges_{}.txt", list.num_nodes));
    write_text(&path, &list).expect("write planner edge file");
    let source = Source::File {
        path,
        binary: false,
        directed_input: false,
    };
    let epsilon = 0.5;
    let approx = Query::new(Algorithm::Approx {
        epsilon,
        sketch: None,
    });

    let engine = Engine::new();
    let meta = engine.stat(&source).expect("stat planner graph");
    let est_mem = planner::est_in_memory_bytes(&meta);

    // The reference every other case is compared against.
    let reference = engine
        .execute(
            &source,
            &Query {
                backend: Some(BackendRequest::InMemory),
                ..approx
            },
            &ResourcePolicy::default(),
        )
        .expect("forced in-memory reference run");
    let ref_density = reference.density();
    let ref_set = reference.best_set().expect("reference set").clone();
    let ref_passes = reference.passes().unwrap_or(0);

    // (case, query, policy, backend the planner must choose, must match
    // the reference exactly)
    let cases: Vec<(&'static str, Query, ResourcePolicy, &'static str, bool)> = vec![
        (
            "auto/unbounded",
            approx,
            ResourcePolicy::default(),
            "memory",
            true,
        ),
        (
            "auto/4-threads",
            approx,
            ResourcePolicy {
                memory_budget_bytes: None,
                threads: 4,
            },
            "parallel",
            true,
        ),
        (
            "auto/budget-mem/8",
            approx,
            ResourcePolicy {
                memory_budget_bytes: Some(est_mem / 8),
                threads: 1,
            },
            "stream",
            true,
        ),
        (
            "sketch-width-1024",
            Query::new(Algorithm::Approx {
                epsilon,
                sketch: Some(1024),
            }),
            ResourcePolicy::default(),
            "sketch",
            false,
        ),
        (
            "forced-mapreduce/tight",
            Query {
                backend: Some(BackendRequest::MapReduce),
                ..approx
            },
            ResourcePolicy {
                memory_budget_bytes: Some(planner::est_shuffle_bytes_per_pass(&meta) / 8),
                threads: 2,
            },
            "mapreduce-spill",
            true,
        ),
    ];

    let mut rows = Vec::new();
    for (case, query, policy, expect_backend, must_match) in cases {
        let started = std::time::Instant::now();
        let report = engine
            .execute(&source, &query, &policy)
            .unwrap_or_else(|e| panic!("planner case '{case}' failed: {e}"));
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let backend = report.plan.backend.name().to_string();
        assert_eq!(
            backend,
            expect_backend,
            "planner chose '{backend}' for case '{case}', expected '{expect_backend}' \
             (plan: {})",
            report.plan.explain()
        );
        let density = report.density();
        let exact_match = density.to_bits() == ref_density.to_bits()
            && report.best_set() == Some(&ref_set)
            && report.passes().unwrap_or(0) == ref_passes;
        if must_match {
            assert!(
                exact_match,
                "case '{case}' ({backend}) diverged from the in-memory reference: \
                 density {density} vs {ref_density}"
            );
        } else {
            // The sketched estimate stays within the paper's quality
            // band — far looser than the exact backends, but a collapse
            // to ~0 would mean the oracle is broken.
            assert!(
                density >= 0.2 * ref_density,
                "sketched density {density} collapsed vs reference {ref_density}"
            );
        }
        rows.push(Row {
            case,
            backend,
            nodes: meta.nodes,
            edges: meta.edges,
            wall_ms,
            density,
            passes: report.passes().unwrap_or(0),
            ratio: density / ref_density,
            exact_match,
        });
    }
    rows
}

/// Renders the rows as a paper-style table.
pub fn to_table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Planner: backend choice, cost, and parity vs the forced in-memory run",
        &[
            "case", "backend", "nodes", "edges", "wall ms", "density", "passes", "ratio", "exact",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.case.to_string(),
            r.backend.clone(),
            r.nodes.to_string(),
            r.edges.to_string(),
            fmt_f(r.wall_ms, 2),
            fmt_f(r.density, 4),
            r.passes.to_string(),
            fmt_f(r.ratio, 3),
            r.exact_match.to_string(),
        ]);
    }
    t
}
