//! **Out-of-core experiment** — the repo's headline claim, end to end.
//!
//! Generates a graph, writes it to disk, and then runs the machinery
//! that makes the paper's scale story real:
//!
//! 1. **Semi-streaming**: Algorithm 1 and Algorithm 2 straight over the
//!    on-disk file (`TextFileStream` / `BinaryFileStream`, one re-read
//!    per pass, O(n) state) versus the in-memory CSR runs — the rows
//!    assert parity of density, best set, and pass count, and report the
//!    streamed state footprint next to the in-memory footprint.
//! 2. **External MapReduce shuffle**: the §5.2 driver with a spill
//!    budget small enough to force disk runs every round, versus the
//!    in-memory shuffle — bit-identical results, with spilled bytes and
//!    run counts reported.
//!
//! Peak process RSS (`VmHWM`, Linux) is included so a `--scale large`
//! run shows the streamed state staying flat while file sizes grow. The
//! small-budget MapReduce configuration doubles as the CI smoke test:
//! the run `assert!`s that at least one spill happened and that every
//! parity column is true, so a regression fails the `repro outofcore`
//! step loudly.

use std::path::PathBuf;

use dsg_core::large::{approx_densest_at_least_k_csr, try_approx_densest_at_least_k};
use dsg_core::undirected::{approx_densest_csr, try_approx_densest};
use dsg_datasets::Scale;
use dsg_graph::gen;
use dsg_graph::io::{write_binary, write_text};
use dsg_graph::stream::{BinaryFileStream, EdgeStream, TextFileStream};
use dsg_graph::CsrUndirected;
use dsg_mapreduce::{mr_densest_undirected, MapReduceConfig, ShuffleBackend};

use crate::table::{fmt_f, Table};

/// One row of the experiment.
#[derive(Clone, Debug)]
pub struct Row {
    /// What ran (e.g. `"approx/text-stream"`, `"mapreduce/spill"`).
    pub case: &'static str,
    /// Nodes in the generated graph.
    pub nodes: u64,
    /// Edges in the generated graph.
    pub edges: u64,
    /// On-disk input size in bytes (0 for in-memory baselines).
    pub file_bytes: u64,
    /// Best density found.
    pub density: f64,
    /// Passes over the edge set.
    pub passes: u32,
    /// Working-state bytes: streamed O(n) state, in-memory CSR size, or
    /// shuffle bytes spilled to disk for the MapReduce rows.
    pub state_bytes: u64,
    /// Spill runs written (MapReduce rows; 0 elsewhere).
    pub spill_runs: u64,
    /// Result matches the in-memory reference bit for bit.
    pub parity: bool,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
}

/// Report of one `outofcore` run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Per-case rows.
    pub rows: Vec<Row>,
    /// Peak process RSS (`VmHWM`) in kB, 0 where unavailable.
    pub peak_rss_kb: u64,
}

/// Streamed O(n) state with the exact oracle (`oracle_words = n`) — the
/// same definition the CLI reports as `state_bytes`.
fn streaming_state_bytes(n: u64) -> u64 {
    dsg_core::result::streaming_state_bytes(n, n)
}

/// In-memory footprint the streamed run avoids: the CSR snapshot
/// (offsets + neighbor lists, both directions of each edge).
fn csr_bytes(n: u64, m: u64) -> u64 {
    (n + 1) * 8 + 2 * m * 4
}

/// `VmHWM` from /proc/self/status (Linux), else 0.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = std::time::Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1e3)
}

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("dsg_outofcore_experiment");
    std::fs::create_dir_all(&dir).expect("cannot create out-of-core data dir");
    dir
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Report {
    // A planted community in a sparse background, sized by scale.
    let n = scale.nodes();
    let m = n * 5;
    let planted = gen::planted_dense_subgraph(n, m as usize, (n / 40).max(20), 0.5, 17);
    let list = planted.graph;
    let n = list.num_nodes as u64;
    let m = list.num_edges() as u64;

    let dir = data_dir();
    let text_path = dir.join(format!("edges_{n}.txt"));
    let bin_path = dir.join(format!("edges_{n}.bin"));
    write_text(&text_path, &list).expect("write text edge file");
    write_binary(&bin_path, &list).expect("write binary edge file");
    let text_bytes = std::fs::metadata(&text_path)
        .map(|md| md.len())
        .unwrap_or(0);
    let bin_bytes = std::fs::metadata(&bin_path).map(|md| md.len()).unwrap_or(0);

    let mut rows = Vec::new();
    let epsilon = 0.5;
    let k = (n / 20).max(2) as usize;

    // ---- In-memory references --------------------------------------
    let csr = CsrUndirected::from_edge_list(&list);
    let (mem_approx, mem_approx_ms) = time_ms(|| approx_densest_csr(&csr, epsilon));
    rows.push(Row {
        case: "approx/in-memory",
        nodes: n,
        edges: m,
        file_bytes: 0,
        density: mem_approx.best_density,
        passes: mem_approx.passes,
        state_bytes: csr_bytes(n, m),
        spill_runs: 0,
        parity: true,
        wall_ms: mem_approx_ms,
    });
    let (mem_k, mem_k_ms) = time_ms(|| approx_densest_at_least_k_csr(&csr, k, epsilon));
    rows.push(Row {
        case: "atleast-k/in-memory",
        nodes: n,
        edges: m,
        file_bytes: 0,
        density: mem_k.best_density,
        passes: mem_k.passes,
        state_bytes: csr_bytes(n, m),
        spill_runs: 0,
        parity: true,
        wall_ms: mem_k_ms,
    });

    // ---- Streamed runs ----------------------------------------------
    let same_run = |a: &dsg_core::result::UndirectedRun, b: &dsg_core::result::UndirectedRun| {
        a.passes == b.passes
            && a.best_density.to_bits() == b.best_density.to_bits()
            && a.best_set == b.best_set
    };

    let mut text_stream = TextFileStream::open_auto(&text_path).expect("open text stream");
    let (text_run, text_ms) =
        time_ms(|| try_approx_densest(&mut text_stream, epsilon).expect("text stream run"));
    rows.push(Row {
        case: "approx/text-stream",
        nodes: n,
        edges: m,
        file_bytes: text_bytes,
        density: text_run.best_density,
        passes: text_run.passes,
        state_bytes: streaming_state_bytes(n),
        spill_runs: 0,
        parity: same_run(&text_run, &mem_approx),
        wall_ms: text_ms,
    });

    let mut bin_stream = BinaryFileStream::open(&bin_path).expect("open binary stream");
    let (bin_run, bin_ms) =
        time_ms(|| try_approx_densest(&mut bin_stream, epsilon).expect("binary stream run"));
    rows.push(Row {
        case: "approx/binary-stream",
        nodes: n,
        edges: m,
        file_bytes: bin_bytes,
        density: bin_run.best_density,
        passes: bin_run.passes,
        state_bytes: streaming_state_bytes(n),
        spill_runs: 0,
        parity: same_run(&bin_run, &mem_approx),
        wall_ms: bin_ms,
    });
    assert_eq!(
        bin_stream.passes(),
        bin_run.passes as u64,
        "binary stream pass accounting"
    );

    let mut bin_stream_k = BinaryFileStream::open(&bin_path).expect("open binary stream");
    let (k_run, k_ms) = time_ms(|| {
        try_approx_densest_at_least_k(&mut bin_stream_k, k, epsilon).expect("streamed atleast-k")
    });
    rows.push(Row {
        case: "atleast-k/binary-stream",
        nodes: n,
        edges: m,
        file_bytes: bin_bytes,
        density: k_run.best_density,
        passes: k_run.passes,
        state_bytes: streaming_state_bytes(n),
        spill_runs: 0,
        parity: same_run(&k_run, &mem_k),
        wall_ms: k_ms,
    });

    // ---- MapReduce: in-memory vs spill-to-disk shuffle ---------------
    let splits: Vec<Vec<(u32, u32)>> = list
        .edges
        .chunks(list.edges.len().div_ceil(16).max(1))
        .map(|c| c.to_vec())
        .collect();
    let base = MapReduceConfig {
        num_workers: 4,
        num_reducers: 8,
        combine: true,
        shuffle: ShuffleBackend::InMemory,
    };
    let (mr_mem, mr_mem_ms) =
        time_ms(|| mr_densest_undirected(&base, list.num_nodes, splits.clone(), epsilon));
    let mem_shuffle_bytes: u64 = mr_mem.reports.iter().map(|r| r.rounds.shuffle_bytes).sum();
    rows.push(Row {
        case: "mapreduce/in-memory",
        nodes: n,
        edges: m,
        file_bytes: 0,
        density: mr_mem.best_density,
        passes: mr_mem.passes,
        state_bytes: mem_shuffle_bytes,
        spill_runs: 0,
        parity: same_mr(&mr_mem, &mem_approx),
        wall_ms: mr_mem_ms,
    });

    // A budget far below any bucket size: every round must spill.
    let spilling = MapReduceConfig {
        shuffle: ShuffleBackend::External {
            spill_budget_bytes: 1024,
        },
        ..base
    };
    let (mr_spill, mr_spill_ms) =
        time_ms(|| mr_densest_undirected(&spilling, list.num_nodes, splits, epsilon));
    let spilled: u64 = mr_spill
        .reports
        .iter()
        .map(|r| r.rounds.spilled_bytes)
        .sum();
    let runs: u64 = mr_spill.reports.iter().map(|r| r.rounds.spill_runs).sum();
    let spill_parity = mr_spill.passes == mr_mem.passes
        && mr_spill.best_density.to_bits() == mr_mem.best_density.to_bits()
        && mr_spill.best_set == mr_mem.best_set;
    rows.push(Row {
        case: "mapreduce/spill",
        nodes: n,
        edges: m,
        file_bytes: 0,
        density: mr_spill.best_density,
        passes: mr_spill.passes,
        state_bytes: spilled,
        spill_runs: runs,
        parity: spill_parity,
        wall_ms: mr_spill_ms,
    });

    // Smoke assertions: this experiment is the CI gate for the
    // out-of-core path.
    assert!(runs > 0, "1 KiB spill budget must force at least one spill");
    assert!(spilled > 0, "spilled runs must account bytes");
    assert!(
        rows.iter().all(|r| r.parity),
        "out-of-core results must match in-memory bit for bit: {rows:#?}"
    );

    Report {
        rows,
        peak_rss_kb: peak_rss_kb(),
    }
}

fn same_mr(
    mr: &dsg_mapreduce::MrUndirectedResult,
    reference: &dsg_core::result::UndirectedRun,
) -> bool {
    mr.passes == reference.passes
        && (mr.best_density - reference.best_density).abs() < 1e-9
        && mr.best_set == reference.best_set
}

/// Renders the report as a table.
pub fn to_table(report: &Report) -> Table {
    let mut t = Table::new(
        format!(
            "Out-of-core: streamed + spilled vs in-memory (peak RSS {} kB)",
            report.peak_rss_kb
        ),
        &[
            "case",
            "nodes",
            "edges",
            "file MB",
            "density",
            "passes",
            "state MB",
            "spill runs",
            "parity",
            "ms",
        ],
    );
    for r in &report.rows {
        t.push_row(vec![
            r.case.to_string(),
            r.nodes.to_string(),
            r.edges.to_string(),
            fmt_f(r.file_bytes as f64 / 1e6, 2),
            fmt_f(r.density, 4),
            r.passes.to_string(),
            fmt_f(r.state_bytes as f64 / 1e6, 3),
            r.spill_runs.to_string(),
            if r.parity { "ok" } else { "MISMATCH" }.to_string(),
            fmt_f(r.wall_ms, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_runs_and_spills() {
        let report = run(Scale::Tiny);
        assert_eq!(report.rows.len(), 7);
        assert!(report.rows.iter().all(|r| r.parity));
        let spill_row = report
            .rows
            .iter()
            .find(|r| r.case == "mapreduce/spill")
            .unwrap();
        assert!(spill_row.spill_runs > 0);
        assert!(spill_row.state_bytes > 0);
    }
}
