//! **Table 1** — parameters of the evaluation graphs.
//!
//! Prints the synthetic stand-ins' actual sizes side by side with the
//! paper's reported sizes, making the scale substitution explicit.

use dsg_datasets::{flickr_standin, im_standin, livejournal_standin, twitter_standin, Scale};
use dsg_graph::stats::summarize;

use crate::table::{fmt_f, Table};

/// One dataset row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Dataset name.
    pub name: &'static str,
    /// "undirected" / "directed".
    pub kind: &'static str,
    /// Stand-in node count.
    pub nodes: u32,
    /// Stand-in edge count.
    pub edges: usize,
    /// Mean degree of the stand-in.
    pub mean_degree: f64,
    /// The paper's |V| (for reference).
    pub paper_nodes: &'static str,
    /// The paper's |E| (for reference).
    pub paper_edges: &'static str,
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Vec<Row> {
    let data: [(
        &'static str,
        dsg_graph::EdgeList,
        &'static str,
        &'static str,
    ); 4] = [
        ("flickr", flickr_standin(scale), "976K", "7.6M"),
        ("im", im_standin(scale), "645M", "6.1B"),
        ("livejournal", livejournal_standin(scale), "4.84M", "68.9M"),
        ("twitter", twitter_standin(scale), "50.7M", "2.7B"),
    ];
    data.into_iter()
        .map(|(name, g, pn, pe)| {
            let s = summarize(name, &g);
            Row {
                name,
                kind: s.kind,
                nodes: s.num_nodes,
                edges: s.num_edges,
                mean_degree: s.mean_degree,
                paper_nodes: pn,
                paper_edges: pe,
            }
        })
        .collect()
}

/// Renders the rows as a table.
pub fn to_table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table 1: graphs used in the experiments (stand-in vs paper)",
        &[
            "G",
            "type",
            "|V|",
            "|E|",
            "mean deg",
            "paper |V|",
            "paper |E|",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.name.to_string(),
            r.kind.to_string(),
            r.nodes.to_string(),
            r.edges.to_string(),
            fmt_f(r.mean_degree, 1),
            r.paper_nodes.to_string(),
            r.paper_edges.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_with_sane_values() {
        let rows = run(Scale::Tiny);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].name, "flickr");
        assert_eq!(rows[0].kind, "undirected");
        assert_eq!(rows[2].kind, "directed");
        for r in &rows {
            assert!(r.nodes > 0 && r.edges > 0);
            assert!(r.mean_degree > 1.0);
        }
        let t = to_table(&rows);
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("twitter"));
    }
}
