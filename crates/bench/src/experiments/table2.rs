//! **Table 2** — quality of approximation: `ρ*(G)` and `ρ*(G)/ρ̃(G)` for
//! `ε ∈ {0.001, 0.1, 1}` on the seven (stand-in) SNAP graphs.
//!
//! The paper solved Charikar's LP with COIN-OR CLP for `ρ*`; this harness
//! uses the Goldberg max-flow reduction, which computes the same optimum
//! (see `dsg-flow`). The headline finding — approximation ratios near 1,
//! far better than the worst-case `2(1+ε)`, even for large ε — reproduces
//! directly.

use std::path::Path;

use dsg_core::undirected::approx_densest_csr;
use dsg_datasets::snap::{table2_graphs, TABLE2};
use dsg_flow::exact_densest;
use dsg_graph::CsrUndirected;

use crate::table::{fmt_f, Table};

/// The ε grid of Table 2.
pub const EPSILONS: [f64; 3] = [0.001, 0.1, 1.0];

/// One graph row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Dataset name.
    pub name: &'static str,
    /// Node count.
    pub nodes: u32,
    /// Edge count.
    pub edges: usize,
    /// Exact optimum `ρ*(G)` (via max-flow).
    pub rho_star: f64,
    /// `ρ*(G)/ρ̃(G)` per ε in [`EPSILONS`] order.
    pub ratios: Vec<f64>,
    /// Whether real SNAP data was used (vs the synthetic stand-in).
    pub real_data: bool,
    /// The paper's reported `ρ*` for reference.
    pub paper_rho_star: f64,
}

/// Runs Table 2 on the first `limit` graphs (all seven when `None`).
/// `data_dir` optionally points at real SNAP edge lists.
pub fn run(limit: Option<usize>, data_dir: Option<&Path>) -> Vec<Row> {
    let graphs = table2_graphs(data_dir);
    let take = limit.unwrap_or(graphs.len());
    graphs
        .into_iter()
        .take(take)
        .map(|(desc, list, real)| {
            let csr = CsrUndirected::from_edge_list(&list);
            let exact = exact_densest(&csr);
            let ratios = EPSILONS
                .iter()
                .map(|&eps| {
                    let run = approx_densest_csr(&csr, eps);
                    if run.best_density > 0.0 {
                        exact.density / run.best_density
                    } else {
                        f64::INFINITY
                    }
                })
                .collect();
            Row {
                name: desc.name,
                nodes: list.num_nodes,
                edges: list.num_edges(),
                rho_star: exact.density,
                ratios,
                real_data: real,
                paper_rho_star: desc.paper_rho_star,
            }
        })
        .collect()
}

/// Renders the rows as a table.
pub fn to_table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table 2: empirical approximation ρ*/ρ̃ (paper worst case: 2(1+ε))",
        &[
            "G",
            "|V|",
            "|E|",
            "ρ*(G)",
            "ε=0.001",
            "ε=0.1",
            "ε=1",
            "data",
            "paper ρ*",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.name.to_string(),
            r.nodes.to_string(),
            r.edges.to_string(),
            fmt_f(r.rho_star, 2),
            fmt_f(r.ratios[0], 3),
            fmt_f(r.ratios[1], 3),
            fmt_f(r.ratios[2], 3),
            if r.real_data { "real" } else { "synthetic" }.to_string(),
            fmt_f(r.paper_rho_star, 2),
        ]);
    }
    t
}

/// Descriptors, re-exported for the benches.
pub fn descriptors() -> &'static [dsg_datasets::Table2Graph] {
    &TABLE2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_graph_has_near_optimal_ratios() {
        // Only the two smallest graphs: the exact solver on all seven is a
        // release-mode (repro binary) job.
        let rows = run(Some(1), None);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.name, "as20000102");
        assert!(!r.real_data);
        // ρ* of the stand-in is calibrated near the paper's value.
        assert!(
            (r.rho_star - r.paper_rho_star).abs() < 0.5 * r.paper_rho_star,
            "ρ* {} vs paper {}",
            r.rho_star,
            r.paper_rho_star
        );
        for (i, &ratio) in r.ratios.iter().enumerate() {
            // Guarantee: ratio ≤ 2(1+ε); paper observes ≈ 1.0–1.4.
            let eps = EPSILONS[i];
            assert!(ratio >= 1.0 - 1e-9, "ratio {ratio} below 1");
            assert!(
                ratio <= 2.0 * (1.0 + eps) + 1e-9,
                "ratio {ratio} violates the guarantee at ε={eps}"
            );
        }
        let t = to_table(&rows);
        assert!(t.render().contains("as20000102"));
    }
}
