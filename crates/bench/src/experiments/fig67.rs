//! **Figure 6.7** — MapReduce wall-clock time per pass on the im
//! stand-in, for ε ∈ {0, 1, 2}.
//!
//! Paper finding: per-pass time decays steeply with the pass index
//! (cost ∝ surviving edges), and larger ε finishes in fewer passes. The
//! thread-pool simulator reproduces the decay shape; absolute times are
//! laptop-scale rather than 2000-node-Hadoop-scale.

use std::time::Duration;

use dsg_datasets::{im_standin, Scale};
use dsg_mapreduce::{mr_densest_undirected, MapReduceConfig};

use crate::table::{fmt_f, Table};

/// ε values of Figure 6.7.
pub const EPSILONS: [f64; 3] = [0.0, 1.0, 2.0];

/// One per-pass timing series.
#[derive(Clone, Debug)]
pub struct Series {
    /// ε value.
    pub epsilon: f64,
    /// `(pass, wall_time, live_edges)` rows.
    pub passes: Vec<(u32, Duration, u64)>,
    /// Best density found.
    pub best_density: f64,
}

/// Runs the MapReduce driver on the im stand-in for each ε.
pub fn run(scale: Scale) -> Vec<Series> {
    let list = im_standin(scale);
    let splits = 16usize;
    let chunk = (list.edges.len() / splits).max(1);
    let edge_splits: Vec<Vec<(u32, u32)>> = list.edges.chunks(chunk).map(|c| c.to_vec()).collect();
    let config = MapReduceConfig::default();
    EPSILONS
        .iter()
        .map(|&eps| {
            let r = mr_densest_undirected(&config, list.num_nodes, edge_splits.clone(), eps);
            Series {
                epsilon: eps,
                passes: r
                    .reports
                    .iter()
                    .map(|p| (p.pass, p.wall_time, p.edges))
                    .collect(),
                best_density: r.best_density,
            }
        })
        .collect()
}

/// Renders the series as a table.
pub fn to_table(series: &[Series]) -> Table {
    let mut t = Table::new(
        "Figure 6.7: MapReduce time per pass on the im stand-in",
        &["ε", "pass", "time (ms)", "live edges"],
    );
    for s in series {
        for &(pass, time, edges) in &s.passes {
            t.push_row(vec![
                fmt_f(s.epsilon, 1),
                pass.to_string(),
                fmt_f(time.as_secs_f64() * 1000.0, 2),
                edges.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_pass_cost_tracks_surviving_edges() {
        let series = run(Scale::Tiny);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert!(s.best_density > 0.0);
            // Edge volume decays monotonically.
            for w in s.passes.windows(2) {
                assert!(w[1].2 <= w[0].2);
            }
        }
        // Larger ε -> fewer passes.
        assert!(series[2].passes.len() <= series[0].passes.len());
    }
}
