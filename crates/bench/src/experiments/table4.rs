//! **Table 4** — the sketching heuristic (§5.1): ratio of the density
//! found with a Count-Sketch degree oracle to the exact-oracle density,
//! for three sketch widths and ε ∈ {0, 0.5, 1, 1.5, 2, 2.5}, plus the
//! memory ratio row.
//!
//! The paper used `t = 5` and `b ∈ {30000, 40000, 50000}` against
//! flickr's 976K nodes (memory ratios 0.16/0.20/0.25). The stand-in keeps
//! the *ratios* `5·b/n` identical so the trade-off reproduces at any
//! scale.

use dsg_core::undirected::approx_densest;
use dsg_datasets::{flickr_standin, Scale};
use dsg_graph::stream::MemoryStream;
use dsg_sketch::{approx_densest_sketched, SketchParams};

use crate::table::{fmt_f, Table};

/// ε grid of Table 4.
pub const EPSILONS: [f64; 6] = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5];
/// The paper's memory ratios `t·b/n` for the three sketch widths.
pub const MEMORY_RATIOS: [f64; 3] = [0.16, 0.20, 0.25];
/// Rows per sketch (paper: t = 5).
pub const SKETCH_ROWS: usize = 5;

/// One (ε, b) cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// ε value.
    pub epsilon: f64,
    /// Sketch width b.
    pub b: u32,
    /// Sketched density / exact density.
    pub ratio: f64,
}

/// The experiment result.
#[derive(Clone, Debug)]
pub struct Table4 {
    /// All cells.
    pub cells: Vec<Cell>,
    /// The three sketch widths used.
    pub bs: [u32; 3],
    /// Memory ratio per width (`t·b/n`).
    pub memory: [f64; 3],
}

/// Runs the sketch-quality grid on the flickr stand-in.
pub fn run(scale: Scale) -> Table4 {
    let list = flickr_standin(scale);
    let n = list.num_nodes;
    let bs: [u32; 3] = [
        ((MEMORY_RATIOS[0] * n as f64) / SKETCH_ROWS as f64) as u32,
        ((MEMORY_RATIOS[1] * n as f64) / SKETCH_ROWS as f64) as u32,
        ((MEMORY_RATIOS[2] * n as f64) / SKETCH_ROWS as f64) as u32,
    ];
    let mut cells = Vec::new();
    let mut memory = [0.0f64; 3];
    for &eps in &EPSILONS {
        let mut stream = MemoryStream::new(list.clone());
        let exact = approx_densest(&mut stream, eps);
        for (i, &b) in bs.iter().enumerate() {
            let mut stream = MemoryStream::new(list.clone());
            let sk = approx_densest_sketched(
                &mut stream,
                eps,
                SketchParams::paper(b, 0x5EED + i as u64),
            );
            memory[i] = sk.memory_ratio();
            cells.push(Cell {
                epsilon: eps,
                b,
                ratio: if exact.best_density > 0.0 {
                    sk.run.best_density / exact.best_density
                } else {
                    0.0
                },
            });
        }
    }
    Table4 { cells, bs, memory }
}

/// Renders the grid as a table with the memory row at the bottom.
pub fn to_table(r: &Table4) -> Table {
    let mut t = Table::new(
        "Table 4: ratio of ρ with and without sketching (t=5)",
        &[
            "ε",
            &format!("b={}", r.bs[0]),
            &format!("b={}", r.bs[1]),
            &format!("b={}", r.bs[2]),
        ],
    );
    for &eps in &EPSILONS {
        let row: Vec<String> = std::iter::once(fmt_f(eps, 1))
            .chain(r.bs.iter().map(|&b| {
                let c = r
                    .cells
                    .iter()
                    .find(|c| c.epsilon == eps && c.b == b)
                    .expect("cell computed");
                fmt_f(c.ratio, 3)
            }))
            .collect();
        t.push_row(row);
    }
    t.push_row(
        std::iter::once("Memory".to_string())
            .chain(r.memory.iter().map(|&m| fmt_f(m, 2)))
            .collect(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_memory_match_paper_shape() {
        let r = run(Scale::Tiny);
        assert_eq!(r.cells.len(), EPSILONS.len() * 3);
        // Memory ratios ≈ the paper's {0.16, 0.20, 0.25}.
        for (m, target) in r.memory.iter().zip(&MEMORY_RATIOS) {
            assert!((m - target).abs() < 0.02, "memory {m} vs {target}");
        }
        // Sketch accuracy depends on the *absolute* width b (error ≈
        // ‖deg‖₂/√b), so at Scale::Tiny (b ≈ 64) the ratios sit lower
        // than the paper's [0.7, 1.05]; the repro binary runs this
        // experiment at Scale::Medium where the paper's band reproduces.
        // Here we check the qualitative regime only.
        for c in &r.cells {
            assert!(
                c.ratio > 0.2 && c.ratio < 1.5,
                "ε={} b={}: ratio {}",
                c.epsilon,
                c.b,
                c.ratio
            );
        }
    }
}
