//! One module per table/figure of the paper's evaluation section.
//!
//! Every experiment returns structured rows plus a [`crate::table::Table`]
//! rendering, so the `repro` binary, the Criterion benches, and the
//! integration tests all share one implementation.

pub mod fig61;
pub mod fig62;
pub mod fig63;
pub mod fig64;
pub mod fig65;
pub mod fig66;
pub mod fig67;
pub mod lemmas;
pub mod mutate;
pub mod outofcore;
pub mod planner;
pub mod scaling;
pub mod serve_throughput;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
