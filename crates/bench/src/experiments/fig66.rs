//! **Figure 6.6** — directed density and passes vs `c` (ε = 1, δ = 2) on
//! the twitter stand-in.
//!
//! Paper finding: unlike livejournal, the best `c` is *not* concentrated
//! around 1 — the celebrity skew (~600 users followed by >30M) makes the
//! optimal pair highly asymmetric, and many `c` values can safely be
//! skipped.

use dsg_core::directed::sweep_c_csr;
use dsg_datasets::{twitter_standin, Scale};
use dsg_graph::CsrDirected;

use crate::table::{fmt_f, Table};

/// One c-grid measurement.
#[derive(Clone, Debug)]
pub struct Point {
    /// Ratio c.
    pub c: f64,
    /// Density at this c.
    pub density: f64,
    /// Passes at this c.
    pub passes: u32,
}

/// Result of the twitter sweep.
#[derive(Clone, Debug)]
pub struct Fig66 {
    /// All grid points.
    pub points: Vec<Point>,
    /// Best ratio.
    pub best_c: f64,
    /// Best density.
    pub best_density: f64,
    /// |S|/|T| of the best pair actually found.
    pub best_pair_ratio: f64,
}

/// Runs the c sweep on the twitter stand-in (ε = 1, δ = 2).
pub fn run(scale: Scale) -> Fig66 {
    let list = twitter_standin(scale);
    let csr = CsrDirected::from_edge_list(&list);
    let sweep = sweep_c_csr(&csr, 2.0, 1.0);
    let pair_ratio = sweep.best.best_s.len() as f64 / sweep.best.best_t.len().max(1) as f64;
    Fig66 {
        points: sweep
            .per_c
            .iter()
            .map(|&(c, density, passes)| Point { c, density, passes })
            .collect(),
        best_c: sweep.best.c,
        best_density: sweep.best.best_density,
        best_pair_ratio: pair_ratio,
    }
}

/// Renders the sweep as a table.
pub fn to_table(r: &Fig66) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 6.6: twitter stand-in — density and passes vs c (ε=1, δ=2); best c = {}",
            fmt_f(r.best_c, 3)
        ),
        &["c", "ρ", "passes"],
    );
    for p in &r.points {
        t.push_row(vec![
            format!("{:.4e}", p.c),
            fmt_f(p.density, 2),
            p.passes.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_pair_is_asymmetric() {
        let r = run(Scale::Tiny);
        assert!(r.best_density > 0.0);
        // The celebrity structure forces |S| ≫ |T|.
        assert!(
            r.best_pair_ratio > 5.0,
            "expected a skewed pair, got |S|/|T| = {}",
            r.best_pair_ratio
        );
    }

    #[test]
    fn density_far_from_best_at_tiny_c() {
        let r = run(Scale::Tiny);
        // c far below 1 forces |S| ≤ |T| pairs, which cannot capture the
        // follower -> celebrity structure; density there is much lower.
        let tiny_c = r.points.first().unwrap();
        assert!(
            tiny_c.density < 0.7 * r.best_density,
            "tiny c density {} too close to best {}",
            tiny_c.density,
            r.best_density
        );
    }

    #[test]
    fn pass_counts_in_paper_range() {
        // Paper observes 4-7 passes at ε=1 across the twitter grid; allow
        // a wider band for the stand-in.
        let r = run(Scale::Tiny);
        for p in &r.points {
            assert!(p.passes <= 30, "c={}: {} passes", p.c, p.passes);
        }
    }
}
