//! **Figure 6.2** — density (relative to the run's maximum) as a function
//! of the pass index, for ε ∈ {0, 1, 2}, on flickr and im stand-ins.
//!
//! Paper finding: the density trajectory is non-monotone (for flickr even
//! unimodal), peaking at an intermediate pass — the justification for
//! keeping the *best* intermediate set rather than the last one.

use dsg_core::undirected::approx_densest_csr;
use dsg_datasets::{flickr_standin, im_standin, Scale};
use dsg_graph::CsrUndirected;

use crate::table::{fmt_f, Table};

/// The ε values plotted in Figure 6.2.
pub const EPSILONS: [f64; 3] = [0.0, 1.0, 2.0];

/// One trace: relative density per pass for one (graph, ε).
#[derive(Clone, Debug)]
pub struct Trace {
    /// Dataset name.
    pub graph: &'static str,
    /// ε value.
    pub epsilon: f64,
    /// `ρ(S_p)/max_p ρ(S_p)` per pass `p` (1-based).
    pub relative_density: Vec<f64>,
    /// The pass where the maximum was attained.
    pub best_pass: u32,
}

/// Runs the traces on both undirected stand-ins.
pub fn run(scale: Scale) -> Vec<Trace> {
    let mut out = Vec::new();
    for (name, list) in [("flickr", flickr_standin(scale)), ("im", im_standin(scale))] {
        let csr = CsrUndirected::from_edge_list(&list);
        for &eps in &EPSILONS {
            let r = approx_densest_csr(&csr, eps);
            out.push(Trace {
                graph: name,
                epsilon: eps,
                relative_density: r.relative_density_series(),
                best_pass: r.best_pass,
            });
        }
    }
    out
}

/// Renders the traces as a long-form table (one row per pass).
pub fn to_table(traces: &[Trace]) -> Table {
    let mut t = Table::new(
        "Figure 6.2: density (relative to maximum) vs passes",
        &["G", "ε", "pass", "ρ/ρ_max"],
    );
    for tr in traces {
        for (i, &d) in tr.relative_density.iter().enumerate() {
            t.push_row(vec![
                tr.graph.to_string(),
                fmt_f(tr.epsilon, 1),
                (i + 1).to_string(),
                fmt_f(d, 4),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_peak_at_one() {
        let traces = run(Scale::Tiny);
        assert_eq!(traces.len(), 6);
        for tr in &traces {
            let max = tr.relative_density.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                (max - 1.0).abs() < 1e-9,
                "{} ε={}: max relative density {max}",
                tr.graph,
                tr.epsilon
            );
            // The best pass must index the maximum.
            let best_idx = tr.best_pass as usize - 1;
            assert!(
                (tr.relative_density[best_idx] - 1.0).abs() < 1e-9,
                "best_pass does not point at the peak"
            );
            assert!(!tr.relative_density.is_empty());
        }
    }

    #[test]
    fn density_rises_before_peak_on_flickr() {
        // The planted-core stand-in reproduces the paper's rise: density
        // at the peak clearly exceeds the starting density.
        let traces = run(Scale::Tiny);
        let fl = traces
            .iter()
            .find(|t| t.graph == "flickr" && t.epsilon == 1.0)
            .unwrap();
        assert!(
            fl.relative_density[0] < 0.9,
            "starting density should be well below the peak, got {}",
            fl.relative_density[0]
        );
    }
}
