//! **Scaling ablation** — serial vs parallel peeling-kernel pass time
//! across the ε grid and thread counts.
//!
//! The `(1+ε)`-threshold pass is a bulk, order-independent operation —
//! the property that maps Algorithm 1 to MapReduce in §5.2 maps it
//! equally well to shared-memory threads. This experiment measures the
//! in-memory CSR backends of the unified kernel: the serial decremental
//! store against the chunked parallel store at several thread counts,
//! for both the undirected (Algorithm 1, flickr stand-in) and directed
//! (Algorithm 3 at `c = 1`, livejournal stand-in) kernels.
//!
//! The parallel backend is deterministic, so every row also verifies
//! parity: the parallel run's pass count, best density, and best set must
//! match the serial run exactly. Speedups depend on the host: on a
//! single-core machine the parallel backend only adds coordination
//! overhead, which this table makes visible rather than hiding.

use std::time::Instant;

use dsg_core::directed::{approx_densest_directed_csr, approx_densest_directed_csr_parallel};
use dsg_core::undirected::{approx_densest_csr, approx_densest_csr_parallel};
use dsg_datasets::{flickr_standin, livejournal_standin, Scale};
use dsg_graph::{CsrDirected, CsrUndirected};

use crate::table::{fmt_f, Table};

/// The ε grid of the ablation (a subset of Figure 6.1's grid).
pub const EPSILONS: [f64; 4] = [0.25, 0.5, 1.0, 2.0];

/// Thread counts measured against the serial baseline.
pub const THREADS: [usize; 3] = [2, 4, 8];

/// One (kernel, ε, threads) measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Which kernel ran (`"undirected"` or `"directed"`).
    pub kernel: &'static str,
    /// ε value.
    pub epsilon: f64,
    /// Worker threads of the parallel run.
    pub threads: usize,
    /// Number of passes (identical for both backends).
    pub passes: u32,
    /// Serial wall-clock time in milliseconds.
    pub serial_ms: f64,
    /// Parallel wall-clock time in milliseconds.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms` (> 1 means the parallel backend wins).
    pub speedup: f64,
    /// Whether the parallel run matched the serial run exactly.
    pub parity: bool,
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1e3)
}

/// Runs the ablation at the given scale.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();

    let und = CsrUndirected::from_edge_list(&flickr_standin(scale));
    for &eps in &EPSILONS {
        let (serial, serial_ms) = time_ms(|| approx_densest_csr(&und, eps));
        for &threads in &THREADS {
            let (par, parallel_ms) = time_ms(|| approx_densest_csr_parallel(&und, eps, threads));
            rows.push(Row {
                kernel: "undirected",
                epsilon: eps,
                threads,
                passes: serial.passes,
                serial_ms,
                parallel_ms,
                speedup: serial_ms / parallel_ms.max(1e-9),
                parity: serial.passes == par.passes
                    && serial.best_density.to_bits() == par.best_density.to_bits()
                    && serial.best_set == par.best_set,
            });
        }
    }

    let dir = CsrDirected::from_edge_list(&livejournal_standin(scale));
    for &eps in &EPSILONS {
        let (serial, serial_ms) = time_ms(|| approx_densest_directed_csr(&dir, 1.0, eps));
        for &threads in &THREADS {
            let (par, parallel_ms) =
                time_ms(|| approx_densest_directed_csr_parallel(&dir, 1.0, eps, threads));
            rows.push(Row {
                kernel: "directed",
                epsilon: eps,
                threads,
                passes: serial.passes,
                serial_ms,
                parallel_ms,
                speedup: serial_ms / parallel_ms.max(1e-9),
                parity: serial.passes == par.passes
                    && serial.best_density.to_bits() == par.best_density.to_bits()
                    && serial.best_s == par.best_s
                    && serial.best_t == par.best_t,
            });
        }
    }
    rows
}

/// Renders the rows as a table.
pub fn to_table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Scaling ablation: serial vs parallel kernel pass time",
        &[
            "kernel",
            "ε",
            "threads",
            "passes",
            "serial ms",
            "parallel ms",
            "speedup",
            "parity",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.kernel.to_string(),
            fmt_f(r.epsilon, 2),
            r.threads.to_string(),
            r.passes.to_string(),
            fmt_f(r.serial_ms, 2),
            fmt_f(r.parallel_ms, 2),
            fmt_f(r.speedup, 2),
            if r.parity { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_grid_and_hold_parity() {
        let rows = run(Scale::Tiny);
        assert_eq!(rows.len(), 2 * EPSILONS.len() * THREADS.len());
        for r in &rows {
            assert!(
                r.parity,
                "{} ε={} t={}: parallel diverged",
                r.kernel, r.epsilon, r.threads
            );
            assert!(r.passes > 0);
            assert!(r.serial_ms >= 0.0 && r.parallel_ms >= 0.0);
        }
        let t = to_table(&rows);
        assert_eq!(t.rows.len(), rows.len());
    }
}
