//! Lower-bound demonstrations (§4.1.1): the adversarial instances on
//! which Algorithm 1 provably needs many passes.
//!
//! * **Lemma 5** — the union-of-regular-graphs instance forces
//!   `Ω(log n / log log n)` passes: each pass only peels `O(log k)` of
//!   the `k` regular layers.
//! * **Lemma 6** — the weighted power-law instance forces `Ω(log n)`
//!   passes: each pass removes only a constant fraction of nodes.
//!
//! These are not figures in the paper, but they certify that the
//! implementation's pass behavior matches the analysis — the worst case
//! is real, and the small pass counts of §6.3 really do come from the
//! data, not the code.

use dsg_core::undirected::approx_densest_csr;
use dsg_graph::gen;
use dsg_graph::CsrUndirected;

use crate::table::{fmt_f, Table};

/// One lower-bound measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Instance parameter (k for Lemma 5, n for Lemma 6).
    pub param: u64,
    /// Number of nodes of the instance.
    pub nodes: u64,
    /// Passes used by Algorithm 1 (ε as noted per experiment).
    pub passes: u32,
    /// Best density found.
    pub density: f64,
}

/// Lemma 5: passes on `regular_union(k)` for `k ∈ ks` at ε = 0.5.
pub fn run_lemma5(ks: &[u32]) -> Vec<Row> {
    ks.iter()
        .map(|&k| {
            let list = gen::regular_union(k);
            let csr = CsrUndirected::from_edge_list(&list);
            let r = approx_densest_csr(&csr, 0.5);
            Row {
                param: k as u64,
                nodes: list.num_nodes as u64,
                passes: r.passes,
                density: r.best_density,
            }
        })
        .collect()
}

/// Lemma 6: passes on `weighted_powerlaw(n, α=0.5)` for `n ∈ ns` at
/// ε = 0.5.
pub fn run_lemma6(ns: &[u32]) -> Vec<Row> {
    ns.iter()
        .map(|&n| {
            let list = gen::weighted_powerlaw(n, 0.5, n as f64 * 4.0);
            let csr = CsrUndirected::from_edge_list(&list);
            let r = approx_densest_csr(&csr, 0.5);
            Row {
                param: n as u64,
                nodes: n as u64,
                passes: r.passes,
                density: r.best_density,
            }
        })
        .collect()
}

/// Renders lower-bound rows.
pub fn to_table(title: &str, param_name: &str, rows: &[Row]) -> Table {
    let mut t = Table::new(title, &[param_name, "|V|", "passes", "ρ̃"]);
    for r in rows {
        t.push_row(vec![
            r.param.to_string(),
            r.nodes.to_string(),
            r.passes.to_string(),
            fmt_f(r.density, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma5_passes_grow_with_k() {
        let rows = run_lemma5(&[3, 4, 5, 6]);
        // Passes strictly grow with the number of layers — the hallmark of
        // the Ω(log n / log log n) construction.
        for w in rows.windows(2) {
            assert!(
                w[1].passes >= w[0].passes,
                "passes dropped: k={} gave {}, k={} gave {}",
                w[0].param,
                w[0].passes,
                w[1].param,
                w[1].passes
            );
        }
        assert!(rows.last().unwrap().passes > rows.first().unwrap().passes);
        // The top layer (density 2^{k-2}) must be found within the
        // guarantee: ρ̃ ≥ 2^{k-2}/(2+2ε) = 2^{k-2}/3.
        for r in &rows {
            let opt = (1u64 << (r.param - 2)).max(1) as f64;
            assert!(
                r.density + 1e-9 >= opt / 3.0,
                "k={}: density {} below bound {}",
                r.param,
                r.density,
                opt / 3.0
            );
        }
    }

    #[test]
    fn lemma6_passes_grow_with_n() {
        let rows = run_lemma6(&[100, 200, 400, 800]);
        assert!(
            rows.last().unwrap().passes > rows.first().unwrap().passes,
            "passes must grow with n: {:?}",
            rows.iter().map(|r| r.passes).collect::<Vec<_>>()
        );
    }

    #[test]
    fn heavy_tailed_social_graphs_stay_far_below_worst_case() {
        // §6.3's observation: the worst-case bound of Lemma 4
        // (log_{1+ε} n ≈ 27 passes at ε = 0.5, n = 50K) is never
        // approached on heavy-tailed graphs.
        let n = 50_000u32;
        let social = gen::chung_lu_powerlaw(n, 2.3, 8.0, 500.0, 9);
        let csr = CsrUndirected::from_edge_list(&social);
        let social_passes = approx_densest_csr(&csr, 0.5).passes;
        let worst_case = ((n as f64).ln() / 1.5f64.ln()).ceil() as u32;
        assert!(
            social_passes * 2 < worst_case,
            "social {social_passes} passes vs worst case {worst_case}"
        );
    }
}
