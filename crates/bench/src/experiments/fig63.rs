//! **Figure 6.3** — remaining nodes and edges after each pass, for
//! ε ∈ {0, 1, 2}, on flickr and im stand-ins.
//!
//! Paper finding: the graph shrinks dramatically in the first few passes
//! (log-scale plots nearly straight down), so after 2–3 passes the rest
//! fits in main memory — the practical reason the algorithm is cheap.

use dsg_core::undirected::approx_densest_csr;
use dsg_datasets::{flickr_standin, im_standin, Scale};
use dsg_graph::CsrUndirected;

use crate::table::{fmt_f, Table};

/// The ε values plotted in Figure 6.3.
pub const EPSILONS: [f64; 3] = [0.0, 1.0, 2.0];

/// One shrinkage trace for one (graph, ε).
#[derive(Clone, Debug)]
pub struct Trace {
    /// Dataset name.
    pub graph: &'static str,
    /// ε value.
    pub epsilon: f64,
    /// `(nodes, edges)` at the start of each pass.
    pub remaining: Vec<(usize, f64)>,
}

/// Runs the shrinkage traces on both undirected stand-ins.
pub fn run(scale: Scale) -> Vec<Trace> {
    let mut out = Vec::new();
    for (name, list) in [("flickr", flickr_standin(scale)), ("im", im_standin(scale))] {
        let csr = CsrUndirected::from_edge_list(&list);
        for &eps in &EPSILONS {
            let r = approx_densest_csr(&csr, eps);
            out.push(Trace {
                graph: name,
                epsilon: eps,
                remaining: r.trace.iter().map(|p| (p.nodes, p.edge_weight)).collect(),
            });
        }
    }
    out
}

/// Renders the traces as a long-form table.
pub fn to_table(traces: &[Trace]) -> Table {
    let mut t = Table::new(
        "Figure 6.3: remaining nodes and edges vs passes",
        &["G", "ε", "pass", "nodes", "edges"],
    );
    for tr in traces {
        for (i, &(n, m)) in tr.remaining.iter().enumerate() {
            t.push_row(vec![
                tr.graph.to_string(),
                fmt_f(tr.epsilon, 1),
                (i + 1).to_string(),
                n.to_string(),
                fmt_f(m, 0),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinkage_is_dramatic_early() {
        let traces = run(Scale::Tiny);
        for tr in &traces {
            // Strictly decreasing node counts.
            for w in tr.remaining.windows(2) {
                assert!(w[1].0 < w[0].0);
                assert!(w[1].1 <= w[0].1 + 1e-9);
            }
            if tr.epsilon >= 1.0 && tr.remaining.len() >= 3 {
                // With ε ≥ 1 at least half the nodes drop per pass
                // (ε/(1+ε) ≥ 1/2 by Lemma 4's bound) — typically far more.
                let start = tr.remaining[0].0 as f64;
                let after2 = tr.remaining[2].0 as f64;
                assert!(
                    after2 < start * 0.25,
                    "{} ε={}: {} -> {} after 2 passes",
                    tr.graph,
                    tr.epsilon,
                    start,
                    after2
                );
            }
        }
    }
}
