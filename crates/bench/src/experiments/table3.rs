//! **Table 3** — directed density found on livejournal for resolutions
//! δ ∈ {2, 10, 100} and ε ∈ {0, 1, 2}.
//!
//! Paper finding: as long as δ stays moderate, ε behaves as in the
//! undirected case (large ε barely hurts); a very coarse δ = 100 combined
//! with large ε finally loses real density.

use dsg_core::directed::sweep_c_csr;
use dsg_datasets::{livejournal_standin, Scale};
use dsg_graph::CsrDirected;

use crate::table::{fmt_f, Table};

/// δ grid of Table 3.
pub const DELTAS: [f64; 3] = [2.0, 10.0, 100.0];
/// ε grid of Table 3.
pub const EPSILONS: [f64; 3] = [0.0, 1.0, 2.0];

/// One (ε, δ) cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// ε value.
    pub epsilon: f64,
    /// δ value.
    pub delta: f64,
    /// Best directed density over the c grid.
    pub density: f64,
    /// Total passes summed over the sweep.
    pub total_passes: u64,
}

/// Runs the (ε, δ) grid on the livejournal stand-in.
pub fn run(scale: Scale) -> Vec<Cell> {
    let list = livejournal_standin(scale);
    let csr = CsrDirected::from_edge_list(&list);
    let mut out = Vec::new();
    for &eps in &EPSILONS {
        for &delta in &DELTAS {
            let sweep = sweep_c_csr(&csr, delta, eps);
            out.push(Cell {
                epsilon: eps,
                delta,
                density: sweep.best.best_density,
                total_passes: sweep.per_c.iter().map(|&(_, _, p)| p as u64).sum(),
            });
        }
    }
    out
}

/// Renders the grid as a table (rows = ε, columns = δ).
pub fn to_table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Table 3: livejournal stand-in — ρ for different δ and ε",
        &["ε", "δ=2", "δ=10", "δ=100"],
    );
    for &eps in &EPSILONS {
        let row: Vec<String> = std::iter::once(fmt_f(eps, 0))
            .chain(DELTAS.iter().map(|&d| {
                let c = cells
                    .iter()
                    .find(|c| c.epsilon == eps && c.delta == d)
                    .expect("cell computed");
                fmt_f(c.density, 2)
            }))
            .collect();
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_delta_finds_at_least_as_much() {
        let cells = run(Scale::Tiny);
        assert_eq!(cells.len(), 9);
        for &eps in &EPSILONS {
            let d = |delta: f64| {
                cells
                    .iter()
                    .find(|c| c.epsilon == eps && c.delta == delta)
                    .unwrap()
                    .density
            };
            // The δ=2 grid is a superset refinement: allow small slack for
            // grid placement, but coarse grids must not win big.
            assert!(
                d(2.0) + 1e-9 >= 0.9 * d(100.0),
                "ε={eps}: δ=2 found {} vs δ=100 {}",
                d(2.0),
                d(100.0)
            );
            assert!(d(2.0) > 0.0);
        }
        // Coarser δ costs fewer total passes.
        let p2: u64 = cells
            .iter()
            .filter(|c| c.delta == 2.0)
            .map(|c| c.total_passes)
            .sum();
        let p100: u64 = cells
            .iter()
            .filter(|c| c.delta == 100.0)
            .map(|c| c.total_passes)
            .sum();
        assert!(p100 < p2);
        let t = to_table(&cells);
        assert_eq!(t.rows.len(), 3);
    }
}
