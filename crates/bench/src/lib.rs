//! # dsg-bench — the reproduction harness
//!
//! One module per table/figure of the paper's evaluation (§6). Each
//! experiment is a plain function returning structured rows, shared by:
//!
//! * the `repro` binary (`cargo run -p dsg-bench --bin repro -- <exp>`),
//!   which prints paper-style tables (or CSV with `--csv`), and
//! * the Criterion benches under `benches/`, which time the underlying
//!   algorithm kernels.
//!
//! Absolute numbers differ from the paper (synthetic stand-in datasets at
//! laptop scale; see DESIGN.md §4) but every *shape* is reproduced: who
//! wins, the effect of ε on quality and passes, the unimodal density
//! trajectories, the memory/quality trade-off of sketching, and the
//! per-pass decay of MapReduce cost.

#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod experiments;
pub mod table;

pub use dsg_datasets::Scale;
