//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|medium|large] [--csv]
//!       [--data-dir <path>] [--out <file>] [--shards n,n,...] [--durable]
//!
//! experiments:
//!   table1   dataset parameters
//!   table2   quality of approximation vs the exact optimum
//!   fig61    ε vs approximation and passes
//!   fig62    density vs passes
//!   fig63    remaining nodes/edges vs passes
//!   table3   directed ρ for δ × ε grid
//!   fig64    directed density/passes vs c (livejournal)
//!   fig65    |S|, |T|, |E(S,T)| per pass at best c
//!   fig66    directed density/passes vs c (twitter)
//!   table4   sketching quality and memory
//!   fig67    MapReduce time per pass
//!   scaling  serial vs parallel peeling-kernel pass time
//!   outofcore  streamed + spill-to-disk shuffle vs in-memory parity
//!   planner  engine backend choice per resource policy, cost, parity
//!   serve-throughput  concurrent clients vs one worker-pool server:
//!            queries/sec, single-flight loads, result-cache hit rate;
//!            plus a second table comparing `--shards n,n,...` engine
//!            shard counts (default 1,2,4) with byte parity and
//!            per-shard routing asserted vs the 1-shard server
//!   mutate   mutable sessions: warm restart vs cold recompute vs file
//!            rewrite per delta shape (parity asserted); `--durable`
//!            adds a WAL append + fsync-every-1 mirror arm and reports
//!            its overhead vs the in-memory session mutate
//!   lemma5   pass lower bound (union of regular graphs)
//!   lemma6   pass lower bound (weighted power law)
//!   all      everything above
//! ```
//!
//! `--bench-json <file>` additionally writes the tables as one JSON
//! object (`{"experiment":…,"scale":…,"tables":[…]}`) — the
//! `BENCH_<experiment>.json` artifacts CI's perf-smoke job uploads and
//! compares (warn-only) against `bench/baseline.json`.
//!
//! Default scale: `small` (≈20K-node stand-ins; `table2` always runs at
//! the paper's graph sizes). `--data-dir` points at real SNAP `.txt`
//! files to upgrade `table2` from stand-ins to the genuine datasets.

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::PathBuf;

use dsg_bench::experiments as exp;
use dsg_bench::table::Table;
use dsg_datasets::Scale;

struct Args {
    experiment: String,
    scale: Scale,
    csv: bool,
    data_dir: Option<PathBuf>,
    out: Option<PathBuf>,
    bench_json: Option<PathBuf>,
    shards: Vec<usize>,
    durable: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut scale = Scale::Small;
    let mut csv = false;
    let mut data_dir = None;
    let mut out = None;
    let mut bench_json = None;
    let mut shards = vec![1, 2, 4];
    let mut durable = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().ok_or("missing value for --scale")?;
                scale = Scale::parse(&v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--csv" => csv = true,
            "--durable" => durable = true,
            "--data-dir" => {
                data_dir = Some(PathBuf::from(
                    args.next().ok_or("missing value for --data-dir")?,
                ));
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().ok_or("missing value for --out")?));
            }
            "--bench-json" => {
                bench_json = Some(PathBuf::from(
                    args.next().ok_or("missing value for --bench-json")?,
                ));
            }
            "--shards" => {
                let v = args.next().ok_or("missing value for --shards")?;
                shards = v
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|_| s))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|s| format!("bad shard count '{s}' in --shards"))?;
                if shards.is_empty() || shards.contains(&0) {
                    return Err("--shards needs a comma-separated list of counts >= 1".into());
                }
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(Args {
        experiment,
        scale,
        csv,
        data_dir,
        out,
        bench_json,
        shards,
        durable,
    })
}

fn usage() -> String {
    "usage: repro <table1|table2|fig61|fig62|fig63|table3|fig64|fig65|fig66|table4|fig67|scaling|outofcore|planner|serve-throughput|mutate|lemma5|lemma6|all> \
     [--scale tiny|small|medium|large] [--csv] [--data-dir <path>] [--out <file>] \
     [--bench-json <file>] [--shards n,n,...] [--durable]"
        .to_string()
}

fn run_experiment(name: &str, args: &Args) -> Result<Vec<Table>, String> {
    let scale = args.scale;
    let tables = match name {
        "table1" => vec![exp::table1::to_table(&exp::table1::run(scale))],
        "table2" => vec![exp::table2::to_table(&exp::table2::run(
            None,
            args.data_dir.as_deref(),
        ))],
        "fig61" => vec![exp::fig61::to_table(&exp::fig61::run(scale))],
        "fig62" => vec![exp::fig62::to_table(&exp::fig62::run(scale))],
        "fig63" => vec![exp::fig63::to_table(&exp::fig63::run(scale))],
        "table3" => vec![exp::table3::to_table(&exp::table3::run(scale))],
        "fig64" => vec![exp::fig64::to_table(&exp::fig64::run(scale))],
        "fig65" => vec![exp::fig65::to_table(&exp::fig65::run(scale))],
        "fig66" => vec![exp::fig66::to_table(&exp::fig66::run(scale))],
        "table4" => {
            // The sketch error scales with the absolute width b, so Table 4
            // needs at least the medium stand-in to reproduce the paper's
            // band (see the module docs).
            let s = if matches!(scale, Scale::Tiny | Scale::Small) {
                Scale::Medium
            } else {
                scale
            };
            vec![exp::table4::to_table(&exp::table4::run(s))]
        }
        "fig67" => vec![exp::fig67::to_table(&exp::fig67::run(scale))],
        "scaling" => vec![exp::scaling::to_table(&exp::scaling::run(scale))],
        "outofcore" => vec![exp::outofcore::to_table(&exp::outofcore::run(scale))],
        "planner" => vec![exp::planner::to_table(&exp::planner::run(scale))],
        "serve-throughput" => vec![
            exp::serve_throughput::to_table(&exp::serve_throughput::run(scale)),
            exp::serve_throughput::to_shard_table(&exp::serve_throughput::run_sharded(
                scale,
                &args.shards,
            )),
        ],
        "mutate" => vec![exp::mutate::to_table(&exp::mutate::run(
            scale,
            args.durable,
        ))],
        "lemma5" => vec![exp::lemmas::to_table(
            "Lemma 5: passes on the union-of-regular-graphs instance (ε=0.5)",
            "k",
            &exp::lemmas::run_lemma5(&[3, 4, 5, 6, 7, 8]),
        )],
        "lemma6" => vec![exp::lemmas::to_table(
            "Lemma 6: passes on the weighted power-law instance (ε=0.5)",
            "n",
            &exp::lemmas::run_lemma6(&[125, 250, 500, 1000, 2000]),
        )],
        "all" => {
            let order = [
                "table1",
                "table2",
                "fig61",
                "fig62",
                "fig63",
                "table3",
                "fig64",
                "fig65",
                "fig66",
                "table4",
                "fig67",
                "scaling",
                "outofcore",
                "planner",
                "serve-throughput",
                "mutate",
                "lemma5",
                "lemma6",
            ];
            let mut all = Vec::new();
            for e in order {
                eprintln!("[repro] running {e} ...");
                all.extend(run_experiment(e, args)?);
            }
            all
        }
        other => return Err(format!("unknown experiment '{other}'\n{}", usage())),
    };
    Ok(tables)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let tables = match run_experiment(&args.experiment, &args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut rendered = String::new();
    for t in &tables {
        rendered.push_str(&if args.csv { t.render_csv() } else { t.render() });
        rendered.push('\n');
    }
    match &args.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).expect("cannot create output file");
            f.write_all(rendered.as_bytes()).expect("write failed");
            eprintln!("[repro] wrote {}", path.display());
        }
        None => print!("{rendered}"),
    }
    if let Some(path) = &args.bench_json {
        let jsons: Vec<String> = tables.iter().map(Table::render_json).collect();
        let payload = format!(
            "{{\"experiment\":\"{}\",\"scale\":\"{:?}\",\"tables\":[{}]}}\n",
            args.experiment,
            args.scale,
            jsons.join(",")
        );
        let mut f = std::fs::File::create(path).expect("cannot create bench-json file");
        f.write_all(payload.as_bytes())
            .expect("bench-json write failed");
        eprintln!("[repro] wrote {}", path.display());
    }
}
