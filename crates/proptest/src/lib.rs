//! A small, dependency-free stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this workspace has no network access, so the
//! real proptest cannot be fetched. This shim implements the API subset the
//! workspace's property tests use — `Strategy` with `prop_map` /
//! `prop_flat_map`, numeric range strategies, tuples, `any::<bool>()`,
//! `collection::vec`, the `proptest!` macro, and `prop_assert!` /
//! `prop_assert_eq!` — over a fixed-seed SplitMix64 generator. Unlike the
//! real crate there is **no shrinking** and no persisted failure seeds:
//! every run generates the same deterministic case sequence, and a failure
//! reports the case index so it can be replayed by reducing `with_cases`.

#![forbid(unsafe_code)]

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::{any, Any, ProptestConfig, Strategy};
    // Macros are exported at the crate root; re-export for path parity.
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Deterministic 64-bit generator (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test-size bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. The real crate separates strategies from value
/// trees (for shrinking); without shrinking a strategy is just a
/// deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Strategy for "any value of `T`" — implemented for the types the
/// workspace tests use.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification accepting `usize` ranges.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy generating a `Vec` of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with context instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!("assertion failed: `{:?}` != `{:?}`", l, r));
        }
    }};
}

/// Declares a block of property tests, mirroring proptest's macro shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // Fixed seed per test: derived from the test's name so
                // different tests see different streams, identically on
                // every run.
                let seed = {
                    use ::std::hash::{Hash, Hasher};
                    let mut h = ::std::collections::hash_map::DefaultHasher::new();
                    stringify!($name).hash(&mut h);
                    h.finish()
                };
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), String> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("proptest case {case} of {} failed: {msg}", cfg.cases);
                    }
                }
            }
        )*
    };
}
