//! Property/fuzz suite for the serve protocol's `minijson` parser.
//!
//! The contract under test: `parse_object` **never panics** on any
//! input — every failure is a typed [`JsonError`] with a byte position
//! — and on valid flat objects it round-trips exactly. The generators
//! cover the nasty corners by construction: escape sequences, `\uXXXX`
//! unicode (including the unpaired-surrogate replacement rule), deeply
//! nested containers (rejected without recursion, so no stack
//! overflow), and truncation at every byte boundary.

use dsg_engine::minijson::{get, parse_object, JsonError, Value};
use dsg_engine::report::escape_json;
use proptest::prelude::*;

/// A pool of strings that exercises every escape class the parser
/// decodes: quotes, backslashes, control characters, multi-byte UTF-8,
/// and characters that JSON requires to be `\u`-escaped.
const STRING_POOL: [&str; 12] = [
    "",
    "plain",
    "with space",
    "quote\"inside",
    "back\\slash",
    "line\nbreak\tand\rreturn",
    "control\u{1}\u{1f}",
    "é λ 語 🦀",
    "slash/forward",
    "\u{8}\u{c}backspace-formfeed",
    "null\u{0}byte",
    "mixed é\"\\\n\u{3}語",
];

fn pool_string(idx: usize) -> &'static str {
    STRING_POOL[idx % STRING_POOL.len()]
}

/// Renders one value exactly as the serve loop's `JsonBuilder` would.
fn render_value(v: &Value) -> String {
    v.to_json()
}

fn make_value(tag: u8, num: f64, sidx: usize) -> Value {
    match tag % 4 {
        0 => Value::Str(pool_string(sidx).to_string()),
        1 => {
            // Keep numbers round-trippable through the f64 formatter.
            Value::Num((num * 1e6).trunc() / 64.0)
        }
        2 => Value::Bool(num > 0.5),
        _ => Value::Null,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Render → parse → compare: flat objects with every value class
    /// and adversarial strings round-trip exactly.
    #[test]
    fn roundtrips_generated_flat_objects(
        spec in proptest::collection::vec((0u8..=3, 0.0f64..1.0, 0usize..64), 0..8),
    ) {
        let fields: Vec<(String, Value)> = spec
            .iter()
            .enumerate()
            .map(|(i, (tag, num, sidx))| {
                // Keys drawn from the same adversarial pool, made unique
                // by index so lookups are unambiguous.
                let key = format!("k{i}_{}", escape_len_marker(pool_string(*sidx)));
                (key, make_value(*tag, *num, *sidx))
            })
            .collect();
        let doc = format!(
            "{{{}}}",
            fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape_json(k), render_value(v)))
                .collect::<Vec<_>>()
                .join(",")
        );
        let parsed = match parse_object(&doc) {
            Ok(p) => p,
            Err(e) => return Err(format!("valid doc rejected: {e} in {doc}")),
        };
        prop_assert_eq!(parsed.len(), fields.len());
        for (k, v) in &fields {
            let got = get(&parsed, k);
            prop_assert_eq!(got, Some(v));
        }
    }

    /// The fuzz contract: arbitrary byte soup (valid UTF-8, since the
    /// input arrives as `&str`) never panics — it parses or returns a
    /// typed error, and the error's position is within the input.
    #[test]
    fn arbitrary_input_never_panics(
        bytes in proptest::collection::vec(0u32..128, 0..64),
        mode in 0u8..=2,
    ) {
        let alphabet: &[char] = match mode {
            // Raw printable noise.
            0 => &['a', '"', '\\', '{', '}', '[', ']', ':', ',', '0', '9', '.', '-', '+', 'e',
                  't', 'f', 'n', 'u', ' ', '\t', 'é', '🦀'],
            // JSON-shaped fragments, more likely to get deep into the parser.
            1 => &['{', '}', '"', ':', ',', 'a', '1', ' '],
            // Escape-heavy strings.
            _ => &['"', '\\', 'u', 'n', '0', 'f', 'a', 'b', 'c', 'd', 'e', 'F'],
        };
        let input: String = bytes
            .iter()
            .map(|b| alphabet[*b as usize % alphabet.len()])
            .collect();
        match parse_object(&input) {
            Ok(_) => {}
            Err(JsonError { pos, .. }) => prop_assert!(pos <= input.len()),
        }
    }

    /// Every `\uXXXX` escape decodes to the expected scalar — or to
    /// U+FFFD for surrogate halves (ids and paths are plain text; the
    /// parser replaces rather than pairs).
    #[test]
    fn unicode_escapes_decode_or_replace(code in 0u32..=0xFFFF) {
        let doc = format!("{{\"s\":\"\\u{code:04x}\"}}");
        let parsed = match parse_object(&doc) {
            Ok(p) => p,
            Err(e) => return Err(format!("\\u{code:04x} rejected: {e}")),
        };
        let got = get(&parsed, "s").and_then(Value::as_str).map(str::to_string);
        let expected = char::from_u32(code).unwrap_or('\u{fffd}').to_string();
        prop_assert_eq!(got, Some(expected));
    }

    /// Truncating a valid document at any byte boundary yields a typed
    /// error (never a panic, never a bogus success).
    #[test]
    fn truncated_documents_error_cleanly(
        spec in proptest::collection::vec((0u8..=3, 0.0f64..1.0, 0usize..64), 1..6),
    ) {
        let doc = format!(
            "{{{}}}",
            spec.iter()
                .enumerate()
                .map(|(i, (tag, num, sidx))| format!(
                    "\"k{i}\":{}",
                    render_value(&make_value(*tag, *num, *sidx))
                ))
                .collect::<Vec<_>>()
                .join(",")
        );
        prop_assert!(parse_object(&doc).is_ok(), "untruncated doc must parse: {}", doc);
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let prefix = &doc[..cut];
            match parse_object(prefix) {
                Ok(_) => return Err(format!("strict prefix parsed: '{prefix}' of '{doc}'")),
                Err(JsonError { pos, .. }) => prop_assert!(pos <= prefix.len()),
            }
        }
    }

    /// Deep nesting cannot overflow the stack: containers are rejected
    /// at the first opening bracket with a typed error, by design (the
    /// request schema is flat), so the depth limit is 1 and the parser
    /// has no recursion at all.
    #[test]
    fn deep_nesting_is_rejected_without_overflow(depth in 1usize..4096, brace in any::<bool>()) {
        let open = if brace { "{\"a\":" } else { "[" };
        let doc = format!("{{\"k\":{}", open.repeat(depth));
        match parse_object(&doc) {
            Ok(_) => return Err("unterminated nesting cannot parse".to_string()),
            Err(e) => {
                prop_assert!(
                    e.msg.contains("nested") || e.msg.contains("expected"),
                    "typed error expected, got: {}", e
                );
            }
        }
    }
}

/// Stable short marker so generated keys stay unique and printable even
/// when the pool string is full of control characters.
fn escape_len_marker(s: &str) -> usize {
    s.len()
}

#[test]
fn truncated_unicode_escape_is_a_typed_error() {
    for doc in [
        "{\"s\":\"\\u",
        "{\"s\":\"\\u0",
        "{\"s\":\"\\u00",
        "{\"s\":\"\\u004",
        "{\"s\":\"\\uzzzz\"}",
    ] {
        let err = parse_object(doc).expect_err(doc);
        assert!(err.pos <= doc.len(), "{doc}: {err}");
    }
}

#[test]
fn error_type_carries_position_and_renders() {
    let err = parse_object("{\"a\":[1]}").expect_err("arrays are rejected");
    assert_eq!(err.pos, 5);
    assert!(err.to_string().starts_with("bad JSON at byte 5:"), "{err}");
    // It is a std::error::Error, so it boxes like any other.
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("nested"));
}
