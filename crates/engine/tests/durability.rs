//! Property/fuzz suite for the durability layer, mirroring
//! `frame_props.rs` for the WAL: a random op sequence appended to a
//! write-ahead log and recovered must materialize bit-identically to
//! the in-memory session that applied the same ops live, truncating the
//! log at **every byte boundary** must recover exactly the intact
//! prefix (torn tails dropped whole, never half-replayed), and a
//! restarted catalog must resume at the exact versions it stopped at —
//! including the version of a record appended but never acknowledged
//! (the kill-between-append-and-publish case).

use std::borrow::Cow;
use std::io::Write;
use std::path::PathBuf;

use dsg_engine::catalog::GraphCatalog;
use dsg_engine::persistence::{encode_record, Durability};
use dsg_engine::{Engine, MutateOp, ResourcePolicy};
use dsg_graph::wal::SessionOp;
use dsg_graph::{DeltaGraph, GraphKind};
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dsg-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Canonical `(num_nodes, edges)` content of a session state.
fn content(state: &DeltaGraph) -> (u32, Vec<(u32, u32)>) {
    let mut list = state.materialize();
    list.canonicalize();
    (list.num_nodes, list.edges)
}

/// One step of a generated session script.
#[derive(Clone, Debug)]
enum Step {
    Add(Vec<(u32, u32)>),
    Remove(Vec<(u32, u32)>),
    Compact,
}

fn make_steps(spec: &[(u8, Vec<(u32, u32)>)]) -> Vec<Step> {
    spec.iter()
        .map(|(sel, edges)| match sel % 3 {
            0 => Step::Add(edges.clone()),
            1 => Step::Remove(edges.clone()),
            _ => Step::Compact,
        })
        .collect()
}

/// Applies one step the way `mutate_named` does (apply, then the
/// ratio-triggered auto-compact) — the live reference the recovered
/// state must match bit-for-bit.
fn apply_live(state: &mut DeltaGraph, step: &Step, ratio: f64) {
    let applied = match step {
        Step::Add(edges) => state.add_edges(edges).unwrap(),
        Step::Remove(edges) => state.remove_edges(edges),
        Step::Compact => {
            if state.delta_edges() > 0 {
                state.compact();
            }
            0
        }
    };
    if applied > 0 {
        state.maybe_compact(ratio);
    }
}

fn step_op(step: &Step) -> SessionOp<'_> {
    match step {
        Step::Add(edges) => SessionOp::Add(Cow::Borrowed(edges)),
        Step::Remove(edges) => SessionOp::Remove(Cow::Borrowed(edges)),
        Step::Compact => SessionOp::Compact,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The WAL round-trip contract: append a random session script,
    /// recover from disk (snapshot rotation and fsync cadence
    /// randomized so both replay-from-snapshot and pure-WAL replay are
    /// exercised), and the recovered graph is bit-identical to the live
    /// session — same content, same version, same name.
    #[test]
    fn wal_recovery_matches_live_session(
        directed in any::<bool>(),
        seed in proptest::collection::vec((0u32..32, 0u32..32), 0..12),
        spec in proptest::collection::vec(
            (0u8..=2, proptest::collection::vec((0u32..32, 0u32..32), 0..8)),
            0..16,
        ),
        snapshot_every in 1u64..8,
        fsync_every in 0u64..3,
        case in 0u32..1_000_000,
    ) {
        let kind = if directed { GraphKind::Directed } else { GraphKind::Undirected };
        let ratio = 1.0;
        let root = tmpdir(&format!("prop-{case}"));
        let durability = Durability::open(&root, fsync_every, snapshot_every).unwrap();

        let mut live = DeltaGraph::new_empty(kind);
        live.add_edges(&seed).unwrap();
        live.maybe_compact(ratio);
        let mut wal = durability.create_graph_wal("session").unwrap();
        wal.append(1, &SessionOp::Create { kind, edges: Cow::Borrowed(&seed) }, &live).unwrap();

        let steps = make_steps(&spec);
        let mut version = 1u64;
        for step in &steps {
            apply_live(&mut live, step, ratio);
            version += 1;
            wal.append(version, &step_op(step), &live).unwrap();
        }
        drop(wal);
        drop(durability);

        let reopened = Durability::open(&root, fsync_every, snapshot_every).unwrap();
        let recovered = reopened.recover(ratio).unwrap();
        prop_assert_eq!(recovered.len(), 1);
        let g = &recovered[0];
        prop_assert_eq!(g.name.as_str(), "session");
        prop_assert_eq!(g.version, version);
        prop_assert_eq!(g.dropped_tail_records, 0);
        prop_assert_eq!(content(&g.state), content(&live));
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Truncation at every byte boundary (a torn append, a short write,
    /// a crash mid-record) recovers exactly the longest intact record
    /// prefix: a cut inside record k+1 replays records 1..=k and drops
    /// the tail whole — never a hybrid — and a cut inside the create
    /// record recovers "the graph does not exist".
    #[test]
    fn truncation_at_every_byte_recovers_the_intact_prefix(
        spec in proptest::collection::vec(
            (0u8..=1, proptest::collection::vec((0u32..16, 0u32..16), 1..4)),
            1..4,
        ),
        case in 0u32..1_000_000,
    ) {
        let ratio = 1.0;
        let root = tmpdir(&format!("trunc-{case}"));
        // Build the full log once (snapshot cadence too high to rotate,
        // so every record is in the file), tracking record boundaries
        // and the expected state after each record.
        let durability = Durability::open(&root, 0, 1_000).unwrap();
        let seed = vec![(0u32, 1u32), (1, 2)];
        let mut live = DeltaGraph::new_empty(GraphKind::Undirected);
        live.add_edges(&seed).unwrap();
        let mut wal = durability.create_graph_wal("g").unwrap();
        wal.append(
            1,
            &SessionOp::Create { kind: GraphKind::Undirected, edges: Cow::Borrowed(&seed) },
            &live,
        )
        .unwrap();
        let wal_path = root.join("graphs/g/wal.log");
        let mut boundaries = vec![std::fs::metadata(&wal_path).unwrap().len() as usize];
        let mut states = vec![content(&live)];
        let steps = make_steps(&spec);
        for (i, step) in steps.iter().enumerate() {
            apply_live(&mut live, step, ratio);
            wal.append(i as u64 + 2, &step_op(step), &live).unwrap();
            boundaries.push(std::fs::metadata(&wal_path).unwrap().len() as usize);
            states.push(content(&live));
        }
        drop(wal);
        drop(durability);
        let full = std::fs::read(&wal_path).unwrap();
        prop_assert_eq!(full.len(), *boundaries.last().unwrap());

        for cut in 0..=full.len() {
            let dir = tmpdir(&format!("trunc-{case}-cut"));
            std::fs::create_dir_all(dir.join("graphs/g")).unwrap();
            std::fs::write(dir.join("graphs/g/name"), b"g").unwrap();
            std::fs::write(dir.join("graphs/g/wal.log"), &full[..cut]).unwrap();
            let d = Durability::open(&dir, 0, 1_000).unwrap();
            let recovered = d.recover(ratio).unwrap();
            // Longest intact record prefix at or below the cut.
            let intact = boundaries.iter().filter(|&&b| b <= cut).count();
            let torn = boundaries.binary_search(&cut).is_err();
            if intact == 0 {
                prop_assert!(recovered.is_empty(), "cut {cut}: torn create must not exist");
            } else {
                prop_assert!(recovered.len() == 1, "cut {cut}: graph missing");
                let g = &recovered[0];
                prop_assert!(g.version == intact as u64, "cut {cut}: version {}", g.version);
                prop_assert!(g.replayed_ops == intact as u64, "cut {cut}: replayed {}", g.replayed_ops);
                prop_assert!(
                    g.dropped_tail_records == u64::from(torn),
                    "cut {cut}: dropped {}",
                    g.dropped_tail_records
                );
                prop_assert!(content(&g.state) == states[intact - 1], "cut {cut}: state diverged");
                // The torn tail was truncated away: the file ends at
                // the last intact boundary, ready for clean appends.
                let len = std::fs::metadata(dir.join("graphs/g/wal.log")).unwrap().len() as usize;
                prop_assert!(len == boundaries[intact - 1], "cut {cut}: file len {len}");
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// A restarted catalog resumes at the exact versions the first process
/// published, content-identical, and keeps allocating strictly above
/// them — versions never regress across restarts.
#[test]
fn restart_resumes_exact_versions_and_content() {
    let root = tmpdir("restart");

    let first = GraphCatalog::new();
    first.open_data_dir(&root, 1, 4).unwrap();
    first
        .create_named("a", GraphKind::Undirected, &[(0, 1), (1, 2)])
        .unwrap();
    first
        .create_named("b", GraphKind::Directed, &[(3, 4)])
        .unwrap();
    // Enough mutations on `a` to cross the snapshot cadence, so
    // recovery exercises replay-over-snapshot on one graph and pure WAL
    // replay on the other.
    for i in 0u32..6 {
        first
            .mutate_named("a", MutateOp::Add(&[(i, i + 7), (i, i + 8)]))
            .unwrap();
    }
    first
        .mutate_named("a", MutateOp::Remove(&[(0, 7)]))
        .unwrap();
    first.mutate_named("a", MutateOp::Compact).unwrap();
    let out_b = first.mutate_named("b", MutateOp::Add(&[(4, 5)])).unwrap();
    let (ga, _) = first.get_named("a").unwrap();
    let (gb, _) = first.get_named("b").unwrap();
    let (va, ca) = (ga.snapshot().version, {
        let e = ga.snapshot();
        (e.meta.nodes, e.content_hash)
    });
    let (vb, cb) = (gb.snapshot().version, {
        let e = gb.snapshot();
        (e.meta.nodes, e.content_hash)
    });
    assert_eq!(vb, out_b.version);
    drop((ga, gb));
    drop(first);

    let second = GraphCatalog::new();
    let stats = second.open_data_dir(&root, 1, 4).unwrap();
    assert_eq!(stats.graphs, 2);
    assert_eq!(stats.dropped_tail_records, 0);
    assert_eq!(stats.max_version, va.max(vb));
    let (ga, _) = second.get_named("a").unwrap();
    let (gb, _) = second.get_named("b").unwrap();
    assert_eq!(ga.snapshot().version, va);
    assert_eq!(gb.snapshot().version, vb);
    assert_eq!((ga.snapshot().meta.nodes, ga.snapshot().content_hash), ca);
    assert_eq!((gb.snapshot().meta.nodes, gb.snapshot().content_hash), cb);
    // New versions continue strictly above the recovered ceiling.
    let next = second.mutate_named("b", MutateOp::Add(&[(5, 6)])).unwrap();
    assert!(
        next.version > va.max(vb),
        "{} > {}",
        next.version,
        va.max(vb)
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The crash window the append-before-publish order leaves open: a
/// record hits the log but the process dies before the version is
/// published (the client never got an ack). Recovery must land on the
/// **post-op** state — the appended record replays whole — and the next
/// allocation stays above its version. Simulated by appending a record
/// to the on-disk log exactly as the crashed appender would have.
#[test]
fn kill_between_append_and_publish_recovers_post_op() {
    let root = tmpdir("append-publish");
    let first = GraphCatalog::new();
    first.open_data_dir(&root, 1, 100).unwrap();
    first
        .create_named("g", GraphKind::Undirected, &[(0, 1)])
        .unwrap();
    let out = first.mutate_named("g", MutateOp::Add(&[(1, 2)])).unwrap();
    drop(first);

    // The unacknowledged append: version allocated, record durable,
    // publish never happened.
    let mut rec = Vec::new();
    encode_record(
        out.version + 1,
        &SessionOp::Add(Cow::Owned(vec![(2, 3)])),
        &mut rec,
    );
    let wal_path = root.join("graphs/g/wal.log");
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal_path)
        .unwrap();
    f.write_all(&rec).unwrap();
    drop(f);

    let second = GraphCatalog::new();
    let stats = second.open_data_dir(&root, 1, 100).unwrap();
    assert_eq!(stats.dropped_tail_records, 0);
    assert_eq!(stats.max_version, out.version + 1);
    let (_g, entry) = second.get_named("g").unwrap();
    assert_eq!(entry.version, out.version + 1, "post-op, never hybrid");
    let mut list = entry.list.clone();
    list.canonicalize();
    assert_eq!(list.num_nodes, 4);
    assert_eq!(list.edges, vec![(0, 1), (1, 2), (2, 3)]);
    let next = second.mutate_named("g", MutateOp::Add(&[(3, 4)])).unwrap();
    assert_eq!(next.version, out.version + 2);
    let _ = std::fs::remove_dir_all(&root);
}

/// Drops the nondeterministic trailing `elapsed_ms` field so responses
/// from different runs compare byte-for-byte.
fn strip_elapsed(line: &str) -> String {
    match line.find(",\"elapsed_ms\":") {
        Some(i) => format!("{}}}", &line[..i]),
        None => line.to_string(),
    }
}

fn serve_lines(engine: &Engine, requests: &str) -> Vec<String> {
    let metrics = dsg_engine::ServeMetrics::new();
    let mut out = Vec::new();
    dsg_engine::serve_loop(
        engine,
        &ResourcePolicy::default(),
        requests.as_bytes(),
        &mut out,
        &metrics,
    )
    .unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// The acceptance bar for the crash-recovery CI lane, in-process: after
/// a restart, session queries answer **byte-identically** (minus
/// `elapsed_ms`) to the uninterrupted server, and the `stats` op
/// reports the durability and recovery fields CI asserts on.
#[test]
fn serve_responses_are_byte_identical_after_restart() {
    let root = tmpdir("serve-restart");
    let session = r#"{"op":"create_graph","graph":"g","edges":"0 1, 1 2, 2 3, 0 2"}
{"op":"add_edges","graph":"g","edges":"1 3, 3 4"}
{"op":"remove_edges","graph":"g","edges":"0 1"}
"#;
    let query = r#"{"id":1,"algorithm":"approx","graph":"g","epsilon":0.5}
{"id":2,"algorithm":"charikar","graph":"g"}
"#;

    // Uninterrupted reference: one engine does everything.
    let reference = Engine::new();
    serve_lines(&reference, session);
    let want: Vec<String> = serve_lines(&reference, query)
        .iter()
        .map(|l| strip_elapsed(l))
        .collect();

    // Durable run: mutate, drop (the "crash" — kill -9 keeps the page
    // cache; fsync cadence does not matter here), restart, query.
    let first = Engine::new();
    first.catalog().open_data_dir(&root, 1, 2).unwrap();
    serve_lines(&first, session);
    drop(first);

    let second = Engine::new();
    let stats = second.catalog().open_data_dir(&root, 1, 2).unwrap();
    assert_eq!(stats.graphs, 1);
    // create=v1, add=v2 (rotated into the snapshot), remove=v3 replayed.
    assert_eq!(stats.max_version, 3);
    assert_eq!(stats.replayed_ops, 1);
    let got: Vec<String> = serve_lines(&second, query)
        .iter()
        .map(|l| strip_elapsed(l))
        .collect();
    assert_eq!(got, want, "post-recovery responses must be byte-identical");

    // Structured durability fields for CI's stats assertions.
    let stats_line = &serve_lines(&second, "{\"op\":\"stats\"}\n")[0];
    for field in [
        "\"replayed_ops\":",
        "\"dropped_tail_records\":0",
        "\"wal_bytes\":",
        "\"snapshot_version\":",
        "\"last_fsync\":",
    ] {
        assert!(
            stats_line.contains(field),
            "{field} missing in {stats_line}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}
