//! Property/fuzz suite for the binary wire codec, mirroring
//! `minijson_props.rs` for the frame layer.
//!
//! The contract under test: encoding any request (any op, any flat
//! field set the JSONL schema allows) and decoding it back round-trips
//! exactly — standalone and inside batch frames — and decoding **never
//! panics** on hostile bytes: truncation at every byte boundary is
//! either "incomplete, wait for more" (a valid frame prefix) or a typed
//! [`FrameError`], and an oversized length prefix is rejected against
//! the configurable frame-size cap before any allocation happens.

use dsg_engine::frame::{
    batch_items, decode_frame, decode_request_payload, encode_batch_item, encode_request,
    FrameError, Opcode, DEFAULT_MAX_FRAME, HEADER_LEN, MAGIC, VERSION,
};
use dsg_engine::minijson::{FieldScratch, Value};
use proptest::prelude::*;

/// Adversarial string pool: empty, spacey, quotey, multi-byte UTF-8,
/// control characters — everything the length-prefixed encoding must
/// carry verbatim.
const STRING_POOL: [&str; 10] = [
    "",
    "plain",
    "with space",
    "quote\"inside",
    "back\\slash",
    "line\nbreak\tand\rreturn",
    "é λ 語 🦀",
    "control\u{1}\u{1f}",
    "null\u{0}byte",
    "mixed é\"\\\n\u{3}語",
];

/// Keys alternate between registered tag-byte keys and unregistered
/// explicit-string keys, so both encodings are exercised.
const KEY_POOL: [&str; 10] = [
    "id",
    "algorithm",
    "file",
    "graph",
    "epsilon",
    "custom_key",
    "anotherUnregisteredKey",
    "k",
    "edges",
    "key with spaces é",
];

const OPS: [&str; 7] = [
    "query",
    "stats",
    "shutdown",
    "create_graph",
    "add_edges",
    "remove_edges",
    "compact",
];

fn make_value(tag: u8, num: f64, sidx: usize) -> Value {
    match tag % 4 {
        0 => Value::Str(STRING_POOL[sidx % STRING_POOL.len()].to_string()),
        // Any finite f64 survives: the wire carries the exact LE bytes.
        1 => Value::Num((num - 0.5) * 1e9),
        2 => Value::Bool(num > 0.5),
        _ => Value::Null,
    }
}

fn make_fields(spec: &[(u8, f64, usize)]) -> Vec<(String, Value)> {
    spec.iter()
        .enumerate()
        .map(|(i, (tag, num, sidx))| {
            // Duplicate keys are legal (last wins at lookup); keep them
            // possible by not uniquifying.
            let key = KEY_POOL[(sidx + i) % KEY_POOL.len()].to_string();
            (key, make_value(*tag, *num, *sidx))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → decode → compare: every op, every value class, both key
    /// encodings, round-trips exactly.
    #[test]
    fn requests_roundtrip_exactly(
        opsel in 0usize..OPS.len(),
        spec in proptest::collection::vec((0u8..=3, 0.0f64..1.0, 0usize..64), 0..8),
    ) {
        let op = OPS[opsel];
        let fields = make_fields(&spec);
        let mut buf = Vec::new();
        encode_request(op, &fields, &mut buf).expect("encodable");
        let (opcode, payload, consumed) = decode_frame(&buf, DEFAULT_MAX_FRAME)
            .expect("valid frame")
            .expect("complete frame");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(opcode.op_name(), op);
        let mut scratch = FieldScratch::new();
        decode_request_payload(payload, &mut scratch).expect("valid payload");
        prop_assert_eq!(scratch.fields(), fields.as_slice());
    }

    /// Batch frames round-trip every item in order, and the arena reuse
    /// across items never leaks one item's fields into the next.
    #[test]
    fn batches_roundtrip_in_order(
        specs in proptest::collection::vec(
            (0usize..OPS.len(), proptest::collection::vec((0u8..=3, 0.0f64..1.0, 0usize..64), 0..4)),
            1..6,
        ),
    ) {
        let mut payload = Vec::new();
        let expected: Vec<(&str, Vec<(String, Value)>)> = specs
            .iter()
            .map(|(opsel, spec)| {
                let op = OPS[*opsel];
                let fields = make_fields(spec);
                encode_batch_item(op, &fields, &mut payload).expect("encodable");
                (op, fields)
            })
            .collect();
        let mut scratch = FieldScratch::new();
        let mut seen = 0usize;
        for (item, (op, fields)) in batch_items(&payload).zip(&expected) {
            let (opcode, body) = item.expect("valid batch item");
            prop_assert_eq!(opcode.op_name(), *op);
            decode_request_payload(body, &mut scratch).expect("valid payload");
            prop_assert_eq!(scratch.fields(), fields.as_slice());
            seen += 1;
        }
        prop_assert_eq!(seen, expected.len());
    }

    /// The fuzz contract: arbitrary bytes never panic any decoder —
    /// every failure is a typed error, every success consumes no more
    /// than the input.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(0u32..256, 0..96),
        mode in 0u8..=2,
        cap in 8usize..4096,
    ) {
        let noise: Vec<u8> = bytes.iter().map(|b| *b as u8).collect();
        let input: Vec<u8> = match mode {
            // Raw byte soup.
            0 => noise,
            // A plausible header in front, so the decoder gets deep.
            1 => {
                let mut v = vec![MAGIC, VERSION, 0x01, 0];
                v.extend_from_slice(&(noise.len() as u32).to_le_bytes());
                v.extend_from_slice(&noise);
                v
            }
            // A batch frame full of garbage items.
            _ => {
                let mut v = vec![MAGIC, VERSION, 0x0F, 0];
                v.extend_from_slice(&(noise.len() as u32).to_le_bytes());
                v.extend_from_slice(&noise);
                v
            }
        };
        match decode_frame(&input, cap) {
            Ok(None) | Err(_) => {}
            Ok(Some((opcode, payload, consumed))) => {
                prop_assert!(consumed <= input.len());
                prop_assert!(payload.len() <= cap);
                let mut scratch = FieldScratch::new();
                match opcode {
                    Opcode::Batch => {
                        for (_, body) in batch_items(payload).flatten() {
                            let _ = decode_request_payload(body, &mut scratch);
                        }
                    }
                    _ => {
                        let _ = decode_request_payload(payload, &mut scratch);
                    }
                }
            }
        }
    }

    /// Truncating a valid frame at any byte boundary is always
    /// "incomplete" (never an error, never a bogus success), and
    /// truncating a request *payload* at any boundary is either a clean
    /// parse of a shorter field list or a typed error — never a panic.
    #[test]
    fn truncation_at_every_boundary_is_typed(
        opsel in 0usize..OPS.len(),
        spec in proptest::collection::vec((0u8..=3, 0.0f64..1.0, 0usize..64), 1..5),
    ) {
        let fields = make_fields(&spec);
        let mut buf = Vec::new();
        encode_request(OPS[opsel], &fields, &mut buf).expect("encodable");
        for cut in 0..buf.len() {
            match decode_frame(&buf[..cut], DEFAULT_MAX_FRAME) {
                Ok(None) => {}
                Ok(Some(_)) => {
                    return Err(format!("strict prefix of {cut} bytes decoded as complete"))
                }
                Err(e) => return Err(format!("valid prefix of {cut} bytes rejected: {e}")),
            }
        }
        let payload = &buf[HEADER_LEN..];
        let mut scratch = FieldScratch::new();
        for cut in 0..payload.len() {
            // A cut at a field boundary parses fewer fields; any other
            // cut is a typed error. Both are fine; panics are not.
            let _ = decode_request_payload(&payload[..cut], &mut scratch);
        }
    }

    /// A hostile 4-byte length prefix cannot cause allocation: any
    /// claimed length above the cap is a typed `Oversized` error, for
    /// every cap.
    #[test]
    fn oversized_lengths_are_rejected_against_the_cap(
        cap in 0usize..1 << 20,
        over in 1u64..1 << 30,
    ) {
        let len = (cap as u64 + over).min(u32::MAX as u64) as u32;
        if (len as usize) <= cap {
            return Ok(()); // clamped into range; nothing to reject
        }
        let mut buf = vec![MAGIC, VERSION, 0x01, 0];
        buf.extend_from_slice(&len.to_le_bytes());
        match decode_frame(&buf, cap) {
            Err(FrameError::Oversized { len: got, cap: got_cap }) => {
                prop_assert_eq!(got, len as u64);
                prop_assert_eq!(got_cap, cap as u64);
            }
            other => return Err(format!("expected Oversized, got {other:?}")),
        }
    }
}

#[test]
fn every_opcode_byte_roundtrips_and_unknowns_are_rejected() {
    let mut known = 0;
    for b in 0u16..=255 {
        match Opcode::from_byte(b as u8) {
            Some(op) => {
                assert_eq!(op.byte(), b as u8);
                known += 1;
                if op != Opcode::Batch && op != Opcode::Reply {
                    assert_eq!(Opcode::from_op_name(op.op_name()), Some(op));
                }
            }
            None => {
                let frame = [MAGIC, VERSION, b as u8, 0, 0, 0, 0, 0];
                assert!(matches!(
                    decode_frame(&frame, DEFAULT_MAX_FRAME),
                    Err(FrameError::BadOpcode(_))
                ));
            }
        }
    }
    assert_eq!(known, 9, "9 opcodes: 7 requests + batch + reply");
}

#[test]
fn frame_errors_render_and_box() {
    let err = decode_frame(&[MAGIC, 2], DEFAULT_MAX_FRAME).expect_err("bad version");
    assert_eq!(err, FrameError::BadVersion(2));
    assert!(err.to_string().contains("version"), "{err}");
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("unsupported"));
}
