//! The graph catalog: load and fingerprint each graph **once**, serve
//! many queries from it — concurrently.
//!
//! Every one-shot CLI invocation used to re-read and re-canonicalize the
//! edge file; the catalog is what makes the long-running serve mode
//! amortize that. An entry caches the canonicalized [`EdgeList`] plus
//! lazily-built CSR snapshots (undirected and directed), keyed by
//! `(path, format, orientation)` — the same file parsed as directed and
//! as undirected canonicalizes differently, so the orientations are
//! distinct entries. A cheap `(file length, mtime)` check revalidates
//! entries on every hit; a changed file is transparently reloaded and
//! re-fingerprinted.
//!
//! ## Concurrency model
//!
//! The catalog is internally synchronized (`Send + Sync`, every method
//! takes `&self`) so one instance can serve a pool of worker threads:
//!
//! * The entry map sits behind an [`RwLock`]; lookups of already-loaded
//!   graphs take only the read lock.
//! * Loads are **single-flight**: each entry owns a [`OnceLock`] cell,
//!   so when two workers request the same cold graph, exactly one runs
//!   the load while the other blocks on the cell and then shares the
//!   result (observable as `loads == 1` in [`CatalogStats`]).
//! * Callers receive `Arc<CatalogEntry>` snapshots. LRU eviction and
//!   stale-file replacement only drop the map's reference — a query
//!   already holding the `Arc` keeps computing on the old snapshot and
//!   is never invalidated mid-flight.
//! * Counters are atomics, surfaced by the serve mode's `stats` op.
//! * A failed load is **not** cached: the slot is removed so the next
//!   request retries (waiters that shared the failure see the same
//!   error once).
//!
//! [`GraphCatalog::stat`] answers the planner's question — how big is
//! this graph? — *without* materializing: the binary header or a text
//! validation scan (O(1) memory), cached per path.
//!
//! ## Versioning and named session graphs
//!
//! The catalog is **versioned**: every snapshot carries a
//! [`CatalogEntry::version`]. File-backed entries stay at version 0 —
//! their identity is the content fingerprint, which already changes
//! whenever the file does. **Named session graphs** ([`NamedGraph`]) are
//! in-memory mutable graphs created and mutated through the catalog
//! ([`GraphCatalog::create_named`], [`GraphCatalog::mutate_named`]):
//! a [`DeltaGraph`] applies the edits and every successful mutation
//! publishes a fresh immutable snapshot under a monotonically
//! increasing, never-reused version. Queries hold `Arc` snapshots
//! exactly like file entries, so a mutation never tears an in-flight
//! query, and the result cache keys on `(fingerprint, version)` so a
//! stale replay is structurally impossible.

// Fx, not SipHash: these maps sit on the per-request serve path (one
// catalog probe per query), the keys are short, and the serve socket is
// a local unix socket with a trusted peer — collision-flooding is not in
// the threat model.
use rustc_hash::FxHashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::SystemTime;

use dsg_graph::delta::DEFAULT_COMPACT_RATIO;
use dsg_graph::io::{read_binary, read_text, BinaryEdgeReader};
use dsg_graph::stream::parse_edge_line;
use dsg_graph::{
    CsrDirected, CsrUndirected, DeltaGraph, EdgeList, GraphError, GraphKind, Result as GraphResult,
};

use dsg_graph::wal::SessionOp;
use std::borrow::Cow;

use crate::error::{EngineError, Result as EngineResult};
use crate::persistence::{Durability, GraphWal, RecoveryStats};
use crate::planner::GraphMeta;

/// A loaded, canonicalized graph with lazily-built CSR snapshots.
pub struct CatalogEntry {
    /// The canonicalized edge list (exactly what the one-shot CLI built).
    pub list: EdgeList,
    /// FNV-1a fingerprint of the raw file bytes at load time (0 for
    /// memory-sourced entries).
    pub fingerprint: u64,
    /// Size/weightedness metadata of the loaded graph.
    pub meta: GraphMeta,
    /// **As-stored** counts of the exact file version this entry was
    /// loaded from (pre-canonicalization, the same accounting
    /// [`GraphCatalog::stat`] reports; equals `meta` for memory
    /// entries). The engine compares this against the meta it planned
    /// from to detect a file edit racing between stat and load — a
    /// mismatched plan must not enter the result cache.
    pub stored_meta: GraphMeta,
    /// `false` when the file's stamp changed *during* the load (between
    /// the parse and the fingerprint), so `list` and `fingerprint` may
    /// describe different file versions: the entry still answers
    /// queries, but its reports must not enter the result cache.
    /// Always `true` for memory entries and undisturbed loads.
    pub cacheable: bool,
    /// Catalog version of this snapshot: 0 for file-backed and memory
    /// entries (files are versioned by content fingerprint), a
    /// monotonically increasing — never reused — counter value for
    /// named session graphs.
    pub version: u64,
    /// FNV-1a hash of the snapshot's *logical content* (orientation,
    /// node count, canonical edges). For file entries this is the file
    /// fingerprint; for named graphs it is recomputed per version, so
    /// two versions with identical edges (a no-op mutation, a compact)
    /// hash identically — the warm-restart replay check.
    pub content_hash: u64,
    /// Epoch of the owning named graph's mutation journal when this
    /// snapshot was published (0 for file/memory entries). An
    /// incremental seed is only replayable against a snapshot of the
    /// same epoch — a journal truncation bumps it, invalidating every
    /// position taken before.
    pub journal_epoch: u64,
    /// Journal length (op count) when this snapshot was published
    /// (0 for file/memory entries): the ops in `pos_a..pos_b` are
    /// exactly the logical edge edits between snapshots `a` and `b` of
    /// the same epoch.
    pub journal_pos: u64,
    csr_undirected: OnceLock<Arc<CsrUndirected>>,
    csr_directed: OnceLock<Arc<CsrDirected>>,
}

impl CatalogEntry {
    /// Wraps an already-canonicalized list (memory sources, tests).
    pub fn from_list(list: EdgeList, file_bytes: u64, fingerprint: u64) -> Self {
        let meta = GraphMeta {
            nodes: list.num_nodes as u64,
            edges: list.num_edges() as u64,
            weighted: list.is_weighted(),
            file_bytes,
        };
        CatalogEntry {
            list,
            fingerprint,
            meta,
            stored_meta: meta,
            cacheable: true,
            version: 0,
            content_hash: fingerprint,
            journal_epoch: 0,
            journal_pos: 0,
            csr_undirected: OnceLock::new(),
            csr_directed: OnceLock::new(),
        }
    }

    /// The undirected CSR snapshot, built on first use and cached.
    /// `OnceLock` makes the build single-flight too: concurrent callers
    /// block until the one builder finishes, then share the `Arc`.
    pub fn csr_undirected(&self) -> Arc<CsrUndirected> {
        self.csr_undirected
            .get_or_init(|| Arc::new(CsrUndirected::from_edge_list(&self.list)))
            .clone()
    }

    /// The directed CSR snapshot, built on first use and cached.
    pub fn csr_directed(&self) -> Arc<CsrDirected> {
        self.csr_directed
            .get_or_init(|| Arc::new(CsrDirected::from_edge_list(&self.list)))
            .clone()
    }
}

/// FNV-1a offset basis / prime — one definition for every hash in this
/// module (file fingerprints, graph names, content hashes).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds bytes into a running FNV-1a state.
fn fnv1a_update(mut hash: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    for b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over a byte sequence (graph names, content hashing).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// FNV-1a over a canonical edge list's logical content: orientation,
/// node count, and every `(u, v)` pair in canonical order. Two
/// snapshots hash identically iff they present the same graph.
fn content_hash(list: &EdgeList) -> u64 {
    let header = [
        match list.kind {
            GraphKind::Undirected => 0u8,
            GraphKind::Directed => 1u8,
        },
        0,
        0,
        0,
    ]
    .into_iter()
    .chain(list.num_nodes.to_le_bytes());
    let edges = list
        .edges
        .iter()
        .flat_map(|&(u, v)| u.to_le_bytes().into_iter().chain(v.to_le_bytes()));
    fnv1a(header.chain(edges))
}

/// Cap on retained mutation-journal ops. Crossing it clears the log and
/// bumps the epoch, so incremental seeds holding positions into the old
/// epoch fall back to a warm re-peel instead of replaying garbage.
const MAX_JOURNAL_OPS: usize = 65_536;

/// The mutation journal of a named graph: the logical edge edits
/// (`(is_add, u, v)`, as requested — no-op edits are harmless on
/// replay) applied since the journal's current epoch began. Snapshots
/// record their `(epoch, position)` at publish, so the engine's
/// incremental tier can recover the exact delta between any two
/// same-epoch snapshots without diffing edge lists.
struct Journal {
    epoch: u64,
    ops: Vec<(bool, u32, u32)>,
}

/// A named, **mutable** session graph: a [`DeltaGraph`] guarded by a
/// mutex (mutations are serialized per graph) plus the current immutable
/// [`CatalogEntry`] snapshot behind an `RwLock` swap. Queries clone the
/// snapshot `Arc` and compute on frozen state — exactly the model
/// file-backed entries use — so a mutation landing mid-query never
/// tears anything: the query finishes on the version it started on, and
/// the next query sees the new version atomically.
pub struct NamedGraph {
    name: String,
    /// FNV-1a of the name: the stable identity across versions (the
    /// `fingerprint` half of the result cache's `(fingerprint, version)`
    /// key; snapshots additionally carry a per-version content hash).
    fingerprint: u64,
    state: Mutex<DeltaGraph>,
    snapshot: RwLock<Arc<CatalogEntry>>,
    last_used: AtomicU64,
    /// Total delta edges ever applied — the engine's warm-restart ratio
    /// is computed from the growth of this counter between versions.
    cum_delta: AtomicU64,
    warm_hits: AtomicU64,
    warm_fallbacks: AtomicU64,
    /// Mutation journal (see [`Journal`]). Lock order: taken while
    /// holding `state` (a leaf — never held across another
    /// acquisition).
    journal: Mutex<Journal>,
    incremental_hits: AtomicU64,
    incremental_fallbacks: AtomicU64,
    /// The graph's WAL append handle when the catalog has a data dir
    /// (`None` for purely in-memory sessions). Lock order: taken while
    /// holding `state` — mutate appends *before* it publishes — and
    /// never held across another acquisition (a leaf, like `journal`).
    wal: Mutex<Option<GraphWal>>,
    /// WAL records replayed to rebuild this graph at startup (0 unless
    /// the graph was recovered from disk). Fixed at construction.
    replayed_ops: u64,
    /// 1 if recovery dropped a torn/corrupt WAL tail for this graph.
    dropped_tail_records: u64,
}

impl NamedGraph {
    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The name's FNV-1a fingerprint (stable across versions).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The current immutable snapshot.
    pub fn snapshot(&self) -> Arc<CatalogEntry> {
        self.snapshot
            .read()
            .expect("named graph lock poisoned")
            .clone()
    }

    /// Total delta edges ever applied to this graph.
    pub fn cum_delta(&self) -> u64 {
        self.cum_delta.load(Ordering::Relaxed)
    }

    /// Records a warm-restart replay/re-peel on this graph.
    pub fn record_warm_hit(&self) {
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a warm-restart fallback (delta ratio too high).
    pub fn record_warm_fallback(&self) {
        self.warm_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query answered by the incremental tier.
    pub fn record_incremental_hit(&self) {
        self.incremental_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an incremental attempt that fell back (affected set too
    /// large, stale journal, simulation gave up, …).
    pub fn record_incremental_fallback(&self) {
        self.incremental_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// The journal ops in `from..to` of `epoch`, or `None` when the
    /// journal has moved past them (epoch bumped, or the range is not
    /// a prefix-consistent window of the current log).
    pub(crate) fn journal_ops(
        &self,
        epoch: u64,
        from: u64,
        to: u64,
    ) -> Option<Vec<(bool, u32, u32)>> {
        let journal = self.journal.lock().expect("named graph lock poisoned");
        if journal.epoch != epoch || from > to || to > journal.ops.len() as u64 {
            return None;
        }
        Some(journal.ops[from as usize..to as usize].to_vec())
    }

    /// Point-in-time counters for the serve mode's `stats` op.
    pub fn stats(&self) -> NamedGraphStats {
        let (delta_edges, compactions) = {
            let state = self.state.lock().expect("named graph lock poisoned");
            (state.delta_edges() as u64, state.compactions())
        };
        let wal = {
            let wal = self.wal.lock().expect("named graph lock poisoned");
            wal.as_ref().map(|w| w.wal_stats()).unwrap_or_default()
        };
        let snap = self.snapshot();
        NamedGraphStats {
            name: self.name.clone(),
            version: snap.version,
            nodes: snap.meta.nodes,
            edges: snap.meta.edges,
            delta_edges,
            compactions,
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            warm_fallbacks: self.warm_fallbacks.load(Ordering::Relaxed),
            incremental_hits: self.incremental_hits.load(Ordering::Relaxed),
            incremental_fallbacks: self.incremental_fallbacks.load(Ordering::Relaxed),
            wal_bytes: wal.wal_bytes,
            snapshot_version: wal.snapshot_version,
            last_fsync: wal.last_fsync,
            replayed_ops: self.replayed_ops,
            dropped_tail_records: self.dropped_tail_records,
        }
    }
}

/// Per-graph accounting surfaced by the serve mode's `stats` op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedGraphStats {
    /// Graph name.
    pub name: String,
    /// Current catalog version.
    pub version: u64,
    /// Nodes in the current snapshot.
    pub nodes: u64,
    /// Edges in the current snapshot.
    pub edges: u64,
    /// Outstanding (un-compacted) delta log size.
    pub delta_edges: u64,
    /// Times the delta logs were folded into a fresh base.
    pub compactions: u64,
    /// Warm-restart replays/re-peels served on this graph.
    pub warm_hits: u64,
    /// Warm-restart fallbacks (delta ratio too high) on this graph.
    pub warm_fallbacks: u64,
    /// Queries answered by the incremental tier on this graph.
    pub incremental_hits: u64,
    /// Incremental attempts that fell back to warm/cold on this graph.
    pub incremental_fallbacks: u64,
    /// Bytes currently in the graph's WAL (0 when not durable).
    pub wal_bytes: u64,
    /// Version held by the graph's on-disk snapshot (0 = none yet).
    pub snapshot_version: u64,
    /// WAL records covered by the last fsync (0 when not durable).
    pub last_fsync: u64,
    /// WAL records replayed to rebuild this graph at startup.
    pub replayed_ops: u64,
    /// 1 if recovery dropped a torn/corrupt WAL tail for this graph.
    pub dropped_tail_records: u64,
}

/// One mutation request against a named graph.
#[derive(Clone, Copy, Debug)]
pub enum MutateOp<'a> {
    /// Add a batch of edges (set semantics; duplicates are no-ops).
    Add(&'a [(u32, u32)]),
    /// Remove a batch of edges (absent edges are no-ops).
    Remove(&'a [(u32, u32)]),
    /// Fold the delta logs into a fresh canonical base now.
    Compact,
}

/// What a mutation did, for the serve response and the engine's eager
/// result-cache eviction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationOutcome {
    /// The name's fingerprint (the result cache's invalidation handle).
    pub fingerprint: u64,
    /// Version after the op (unchanged if nothing was applied).
    pub version: u64,
    /// Whether the op changed the graph (and hence bumped the version).
    pub changed: bool,
    /// Edges the op actually applied (0 for pure compactions).
    pub applied: u64,
    /// Node count after the op.
    pub nodes: u64,
    /// Edge count after the op.
    pub edges: u64,
    /// Outstanding delta log size after the op.
    pub delta_edges: u64,
    /// Whether this op compacted the logs (explicitly or because the
    /// delta ratio crossed the configured threshold).
    pub compacted: bool,
}

/// Cache key: one entry per `(path, format, orientation)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    path: PathBuf,
    binary: bool,
    kind: GraphKind,
}

/// `(len, mtime)` snapshot used to revalidate cached entries cheaply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FileStamp {
    len: u64,
    mtime: Option<SystemTime>,
}

fn stamp(path: &Path) -> GraphResult<FileStamp> {
    let md = std::fs::metadata(path).map_err(GraphError::Io)?;
    Ok(FileStamp {
        len: md.len(),
        mtime: md.modified().ok(),
    })
}

/// FNV-1a over the raw file bytes.
fn fingerprint_file(path: &Path) -> GraphResult<u64> {
    let mut f = File::open(path).map_err(GraphError::Io)?;
    let mut hash = FNV_OFFSET;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf).map_err(GraphError::Io)?;
        if n == 0 {
            break;
        }
        hash = fnv1a_update(hash, buf[..n].iter().copied());
    }
    Ok(hash)
}

/// `GraphError` does not implement `Clone` (it wraps `std::io::Error`),
/// but a single-flight load's failure is shared by every waiter. This
/// reconstructs an owned error from the shared one, preserving the
/// variant (and the `io::ErrorKind`) so callers still match on it.
fn clone_graph_error(e: &GraphError) -> GraphError {
    match e {
        GraphError::NodeOutOfRange { node, num_nodes } => GraphError::NodeOutOfRange {
            node: *node,
            num_nodes: *num_nodes,
        },
        GraphError::Io(io) => GraphError::Io(std::io::Error::new(io.kind(), io.to_string())),
        GraphError::Parse { line, msg } => GraphError::Parse {
            line: *line,
            msg: msg.clone(),
        },
        GraphError::Format(msg) => GraphError::Format(msg.clone()),
        GraphError::TooLarge { what, value, max } => GraphError::TooLarge {
            what,
            value: *value,
            max: *max,
        },
    }
}

/// Load/hit counters, surfaced by the serve mode's `stats` op and
/// asserted by the catalog tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Number of times a file was actually read and canonicalized.
    pub loads: u64,
    /// Number of queries answered from a cached entry (including
    /// waiters that shared a single-flight load).
    pub hits: u64,
    /// Number of meta-only stat scans performed.
    pub stat_scans: u64,
    /// Number of entries evicted to respect [`GraphCatalog::set_max_entries`].
    pub evictions: u64,
}

/// Default bound on cached graphs (see [`GraphCatalog::set_max_entries`]).
pub const DEFAULT_MAX_ENTRIES: usize = 32;

/// One slot of the entry map: the revalidation stamp taken *before* the
/// load, an LRU clock reading, and the single-flight cell. The cell
/// holds the load's outcome; `OnceLock` guarantees exactly one caller
/// runs the initializer while concurrent callers block and share it.
struct Slot {
    stamp: FileStamp,
    last_used: AtomicU64,
    cell: OnceLock<Result<Arc<CatalogEntry>, Arc<GraphError>>>,
}

/// The catalog itself: internally synchronized, `Send + Sync`, shared by
/// reference (or `Arc`) across however many worker threads the serve
/// mode runs.
pub struct GraphCatalog {
    entries: RwLock<FxHashMap<Key, Arc<Slot>>>,
    meta_cache: RwLock<FxHashMap<Key, (GraphMeta, FileStamp)>>,
    named: RwLock<FxHashMap<String, Arc<NamedGraph>>>,
    loads: AtomicU64,
    hits: AtomicU64,
    stat_scans: AtomicU64,
    evictions: AtomicU64,
    mutations: AtomicU64,
    clock: AtomicU64,
    max_entries: AtomicUsize,
    /// Monotonic version source for named graphs. Never reused: a graph
    /// re-created under an evicted name continues from here, so a
    /// `(fingerprint, version)` result-cache key can never alias two
    /// different graph states.
    version_counter: AtomicU64,
    /// `f64` bits of the auto-compaction delta ratio.
    compact_ratio_bits: AtomicU64,
    /// The durability layer, set at most once by
    /// [`GraphCatalog::open_data_dir`]. `None` = purely in-memory
    /// sessions (the pre-durability behavior, and still the default).
    durability: OnceLock<Durability>,
    /// Total WAL records replayed across all recovered graphs.
    replayed_ops: AtomicU64,
    /// Total torn/corrupt WAL tails dropped across all recovered graphs.
    dropped_tail_records: AtomicU64,
}

impl Default for GraphCatalog {
    fn default() -> Self {
        GraphCatalog {
            entries: RwLock::new(FxHashMap::default()),
            meta_cache: RwLock::new(FxHashMap::default()),
            named: RwLock::new(FxHashMap::default()),
            loads: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            stat_scans: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            max_entries: AtomicUsize::new(DEFAULT_MAX_ENTRIES),
            version_counter: AtomicU64::new(0),
            compact_ratio_bits: AtomicU64::new(DEFAULT_COMPACT_RATIO.to_bits()),
            durability: OnceLock::new(),
            replayed_ops: AtomicU64::new(0),
            dropped_tail_records: AtomicU64::new(0),
        }
    }
}

impl GraphCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the number of cached graphs: loading beyond the bound
    /// evicts the least-recently-used entry, so a long-running server
    /// queried over many distinct files cannot grow without limit
    /// (evicted graphs transparently reload on their next query, and
    /// queries already holding an `Arc` snapshot are unaffected). The
    /// bound is clamped to at least 1; the default is
    /// [`DEFAULT_MAX_ENTRIES`].
    pub fn set_max_entries(&self, max_entries: usize) {
        let bound = max_entries.max(1);
        self.max_entries.store(bound, Ordering::Relaxed);
        {
            let mut map = self.entries.write().expect("catalog lock poisoned");
            while map.len() > bound {
                self.evict_lru(&mut map);
            }
        }
        let mut named = self.named.write().expect("catalog lock poisoned");
        while named.len() > bound {
            self.evict_lru_named(&mut named);
        }
    }

    /// The current entry bound (see [`GraphCatalog::set_max_entries`]) —
    /// read when cloning one catalog's tuning onto another, e.g. when
    /// the sharded server stamps per-shard engines from a template.
    pub fn max_entries(&self) -> usize {
        self.max_entries.load(Ordering::Relaxed)
    }

    fn evict_lru(&self, map: &mut FxHashMap<Key, Arc<Slot>>) {
        if let Some(key) = map
            .iter()
            .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
            .map(|(k, _)| k.clone())
        {
            map.remove(&key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn evict_lru_named(&self, map: &mut FxHashMap<String, Arc<NamedGraph>>) {
        if let Some(name) = map
            .iter()
            .min_by_key(|(_, g)| g.last_used.load(Ordering::Relaxed))
            .map(|(k, _)| k.clone())
        {
            map.remove(&name);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counters so far (a consistent-enough snapshot of the atomics).
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            loads: self.loads.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            stat_scans: self.stat_scans.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct graphs currently cached.
    pub fn len(&self) -> usize {
        self.entries.read().expect("catalog lock poisoned").len()
    }

    /// Whether no graph is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry **including named session graphs**
    /// (counters are kept). In-flight queries holding `Arc` snapshots
    /// keep them; named graphs are gone for good — there is no file to
    /// reload them from.
    pub fn clear(&self) {
        self.entries.write().expect("catalog lock poisoned").clear();
        self.meta_cache
            .write()
            .expect("catalog lock poisoned")
            .clear();
        self.named.write().expect("catalog lock poisoned").clear();
    }

    /// Returns the cached graph for `(path, binary, kind)`, loading,
    /// canonicalizing, and fingerprinting it on first use — exactly the
    /// sequence the one-shot CLI performed, so results are identical.
    /// The second return is `true` on a cache hit (including waiting out
    /// another thread's in-flight load of the same cold graph).
    pub fn get_or_load(
        &self,
        path: &Path,
        binary: bool,
        kind: GraphKind,
    ) -> GraphResult<(Arc<CatalogEntry>, bool)> {
        let key = Key {
            path: path.to_path_buf(),
            binary,
            kind,
        };
        let current = stamp(path)?;
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;

        // Fast path: a slot with a matching stamp under the read lock.
        let cached = {
            let map = self.entries.read().expect("catalog lock poisoned");
            map.get(&key).filter(|s| s.stamp == current).cloned()
        };
        let slot = match cached {
            Some(slot) => slot,
            None => self.install_slot(&key, current),
        };
        slot.last_used.store(now, Ordering::Relaxed);

        // Single-flight: exactly one caller runs the load; concurrent
        // callers block here and then share the cell's outcome.
        let mut loaded_here = false;
        let outcome = slot.cell.get_or_init(|| {
            loaded_here = true;
            match load_entry(path, binary, kind, current) {
                Ok(entry) => {
                    self.loads.fetch_add(1, Ordering::Relaxed);
                    Ok(entry)
                }
                Err(e) => Err(Arc::new(e)),
            }
        });
        match outcome {
            Ok(entry) => {
                if !loaded_here {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                Ok((entry.clone(), !loaded_here))
            }
            Err(e) => {
                // Failed loads are not cached: drop the slot (if it is
                // still this one) so the next request retries.
                if loaded_here {
                    let mut map = self.entries.write().expect("catalog lock poisoned");
                    if map.get(&key).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                        map.remove(&key);
                    }
                }
                Err(clone_graph_error(e))
            }
        }
    }

    /// Returns the already-loaded, still-fresh entry for `path` without
    /// ever triggering a load: `None` when the path is cold, mid-load,
    /// failed, or its on-disk stamp changed. The serve replay fast path
    /// uses this to answer repeated queries without planning; a `None`
    /// simply falls back to the full [`GraphCatalog::get_or_load`]
    /// path. Counts as a catalog hit (and refreshes the LRU clock) only
    /// through the crate-internal `record_hit`, which the caller
    /// invokes once it actually serves from the peeked entry.
    pub fn peek(&self, path: &Path, binary: bool, kind: GraphKind) -> Option<Arc<CatalogEntry>> {
        let key = Key {
            path: path.to_path_buf(),
            binary,
            kind,
        };
        let current = stamp(path).ok()?;
        let slot = {
            let map = self.entries.read().expect("catalog lock poisoned");
            map.get(&key).filter(|s| s.stamp == current).cloned()
        }?;
        let entry = slot.cell.get()?.as_ref().ok()?.clone();
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_used.store(now, Ordering::Relaxed);
        Some(entry)
    }

    /// Accounts one catalog hit served outside [`Self::get_or_load`]
    /// (the peek-based replay fast path).
    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts (or adopts) the slot for `key` at stamp `current` under
    /// the write lock, with the standard double-check: whoever wins the
    /// race installs one slot and everyone else adopts it, so the
    /// single-flight cell is shared.
    fn install_slot(&self, key: &Key, current: FileStamp) -> Arc<Slot> {
        let mut map = self.entries.write().expect("catalog lock poisoned");
        if let Some(existing) = map.get(key) {
            if existing.stamp == current {
                return existing.clone();
            }
        }
        let fresh = Arc::new(Slot {
            stamp: current,
            last_used: AtomicU64::new(self.clock.load(Ordering::Relaxed)),
            cell: OnceLock::new(),
        });
        // Replacing a stale entry never needs an eviction; a genuinely
        // new key beyond the bound pushes out the least-recently-used.
        // In-flight queries on a replaced/evicted slot keep their Arc.
        if !map.contains_key(key) && map.len() >= self.max_entries.load(Ordering::Relaxed) {
            self.evict_lru(&mut map);
        }
        map.insert(key.clone(), fresh.clone());
        fresh
    }

    /// Size metadata for planning, **without** materializing the graph:
    /// binary header, or a text validation scan with O(1) memory. Cached
    /// per `(path, format, orientation)` and revalidated by file stamp.
    ///
    /// The counts always describe the file **as stored** — never the
    /// canonicalized in-memory entry — so a plan is a pure function of
    /// the file's content and the policy, independent of what the
    /// catalog happens to hold. (A loaded entry's canonicalized edge
    /// count can be smaller; consulting it here would make the same
    /// query plan differently hot vs cold, and serve-mode results could
    /// then diverge from one-shot runs.)
    pub fn stat(&self, path: &Path, binary: bool) -> GraphResult<GraphMeta> {
        // Node/edge counts and weightedness do not depend on how the
        // edges will be oriented, so there is no orientation parameter:
        // a directed query after an undirected one (or vice versa) is
        // served from the same cached scan.
        let key = Key {
            path: path.to_path_buf(),
            binary,
            kind: GraphKind::Undirected,
        };
        let current = stamp(path)?;
        {
            let cache = self.meta_cache.read().expect("catalog lock poisoned");
            if let Some((meta, cached)) = cache.get(&key) {
                if *cached == current {
                    return Ok(*meta);
                }
            }
        }
        // Scans run without any lock held: two threads racing on the
        // same cold path may both scan (each counted), and the last
        // insert wins — both computed the same answer from the same
        // stamped file.
        self.stat_scans.fetch_add(1, Ordering::Relaxed);
        let meta = if binary {
            let r = BinaryEdgeReader::open(path)?;
            GraphMeta {
                nodes: r.num_nodes() as u64,
                edges: r.num_edges(),
                weighted: r.is_weighted(),
                file_bytes: current.len,
            }
        } else {
            scan_text_meta(path, current.len)?
        };
        let mut cache = self.meta_cache.write().expect("catalog lock poisoned");
        // The meta cache holds a few fixed-size words per key; bound it
        // all the same so a server stat-ing endless distinct paths
        // cannot grow without limit.
        if cache.len() >= 4 * self.max_entries.load(Ordering::Relaxed) {
            cache.clear();
        }
        cache.insert(key, (meta, current));
        Ok(meta)
    }

    // ----- named session graphs -------------------------------------

    /// The auto-compaction threshold: a mutation whose outstanding delta
    /// logs exceed `ratio × base edges` folds them into a fresh base.
    pub fn set_compact_ratio(&self, ratio: f64) {
        self.compact_ratio_bits
            .store(ratio.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// The configured auto-compaction delta ratio.
    pub fn compact_ratio(&self) -> f64 {
        f64::from_bits(self.compact_ratio_bits.load(Ordering::Relaxed))
    }

    /// Mutations applied to named graphs so far (ops that changed
    /// nothing are not counted).
    pub fn mutations(&self) -> u64 {
        self.mutations.load(Ordering::Relaxed)
    }

    /// Number of named session graphs currently held.
    pub fn named_len(&self) -> usize {
        self.named.read().expect("catalog lock poisoned").len()
    }

    /// Per-graph accounting of every named graph, sorted by name (the
    /// serve mode's `stats` op).
    pub fn named_stats(&self) -> Vec<NamedGraphStats> {
        let graphs: Vec<Arc<NamedGraph>> = {
            let map = self.named.read().expect("catalog lock poisoned");
            map.values().cloned().collect()
        };
        let mut stats: Vec<NamedGraphStats> = graphs.iter().map(|g| g.stats()).collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }

    /// Builds the immutable snapshot of a named graph's current state.
    /// `journal` is the graph's journal `(epoch, position)` at publish.
    fn named_snapshot(
        fingerprint: u64,
        version: u64,
        delta: &DeltaGraph,
        journal: (u64, u64),
    ) -> Arc<CatalogEntry> {
        let list = delta.materialize();
        let hash = content_hash(&list);
        let mut entry = CatalogEntry::from_list(list, 0, fingerprint);
        entry.version = version;
        entry.content_hash = hash;
        entry.journal_epoch = journal.0;
        entry.journal_pos = journal.1;
        Arc::new(entry)
    }

    /// Creates a named mutable graph (optionally seeded with edges) and
    /// returns its first snapshot. Fails with
    /// [`EngineError::GraphExists`] if the name is taken. Creating
    /// beyond the catalog bound evicts the least-recently-used named
    /// graph — named graphs have no backing file, so eviction is data
    /// loss and a later mutation against the evicted name fails with a
    /// typed error instead of silently dropping the delta.
    pub fn create_named(
        &self,
        name: &str,
        kind: GraphKind,
        edges: &[(u32, u32)],
    ) -> EngineResult<MutationOutcome> {
        if name.is_empty() {
            return Err(EngineError::InvalidQuery(
                "graph name must not be empty".into(),
            ));
        }
        // Cheap early rejection before the O(m) seed build; the
        // authoritative duplicate check re-runs under the write lock
        // below (two racing creates still resolve to one winner).
        if self
            .named
            .read()
            .expect("catalog lock poisoned")
            .contains_key(name)
        {
            return Err(EngineError::GraphExists {
                name: name.to_string(),
            });
        }
        let mut delta = DeltaGraph::new_empty(kind);
        let applied = delta.add_edges(edges)? as u64;
        let compacted = delta.maybe_compact(self.compact_ratio());
        let delta_edges = delta.delta_edges() as u64;
        let fingerprint = fnv1a(name.bytes());
        let version = self.version_counter.fetch_add(1, Ordering::Relaxed) + 1;
        // The seed edges are part of the v1 base; the journal starts
        // empty at epoch 1 (epoch 0 is reserved for file/memory
        // entries, which have no journal at all).
        let snapshot = Self::named_snapshot(fingerprint, version, &delta, (1, 0));
        let outcome = MutationOutcome {
            fingerprint,
            version,
            changed: true,
            applied,
            nodes: snapshot.meta.nodes,
            edges: snapshot.meta.edges,
            delta_edges,
            compacted,
        };
        let mut map = self.named.write().expect("catalog lock poisoned");
        if map.contains_key(name) {
            return Err(EngineError::GraphExists {
                name: name.to_string(),
            });
        }
        // Durable create: reset the graph's directory and write the
        // create record **before** the name is published in the map, so
        // a crash in between recovers to "the graph does not exist" —
        // exactly the pre-op state of an unacknowledged create. This
        // runs under the map write lock (creates are rare; the I/O is
        // one small record) so two racing creates can never both wipe
        // and write the same directory; no other lock is acquired.
        let wal = match self.durability.get() {
            Some(d) => {
                let mut w = d.create_graph_wal(name)?;
                w.append(
                    version,
                    &SessionOp::Create {
                        kind,
                        edges: Cow::Borrowed(edges),
                    },
                    &delta,
                )?;
                Some(w)
            }
            None => None,
        };
        let graph = Arc::new(NamedGraph {
            name: name.to_string(),
            fingerprint,
            state: Mutex::new(delta),
            snapshot: RwLock::new(snapshot),
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed) + 1),
            cum_delta: AtomicU64::new(applied),
            warm_hits: AtomicU64::new(0),
            warm_fallbacks: AtomicU64::new(0),
            journal: Mutex::new(Journal {
                epoch: 1,
                ops: Vec::new(),
            }),
            incremental_hits: AtomicU64::new(0),
            incremental_fallbacks: AtomicU64::new(0),
            wal: Mutex::new(wal),
            replayed_ops: 0,
            dropped_tail_records: 0,
        });
        if map.len() >= self.max_entries.load(Ordering::Relaxed) {
            self.evict_lru_named(&mut map);
        }
        map.insert(name.to_string(), graph);
        Ok(outcome)
    }

    /// Looks a named graph up, returning the handle and its current
    /// snapshot (and touching the LRU clock). `None` if the name was
    /// never created or has been evicted.
    pub fn get_named(&self, name: &str) -> Option<(Arc<NamedGraph>, Arc<CatalogEntry>)> {
        let graph = {
            let map = self.named.read().expect("catalog lock poisoned");
            map.get(name).cloned()
        }?;
        graph.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let snapshot = graph.snapshot();
        Some((graph, snapshot))
    }

    /// Applies one mutation to a named graph, atomically publishing a
    /// new versioned snapshot. Concurrent mutations on the same graph
    /// serialize on its mutex; queries keep reading the old snapshot
    /// `Arc` until the swap and the new one after — never a torn state.
    ///
    /// **Eviction race:** if the graph is evicted (or evicted and
    /// re-created) between lookup and publication, the delta must not be
    /// silently dropped. The publication step re-checks, under the map
    /// lock, that the map still holds *this* graph object; if not, the
    /// op fails with [`EngineError::StaleGraph`] and no live state was
    /// changed (the orphaned object the delta was applied to is
    /// unreachable and dies with the last query holding it).
    pub fn mutate_named(&self, name: &str, op: MutateOp<'_>) -> EngineResult<MutationOutcome> {
        let graph = {
            let map = self.named.read().expect("catalog lock poisoned");
            map.get(name).cloned()
        }
        .ok_or_else(|| EngineError::UnknownGraph {
            name: name.to_string(),
        })?;
        graph.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );

        // Apply under the graph's own mutex (mutations serialize per
        // graph; queries are not blocked — they read the snapshot).
        let mut state = graph.state.lock().expect("named graph lock poisoned");
        let (applied, mut compacted) = match op {
            MutateOp::Add(edges) => (state.add_edges(edges)? as u64, false),
            MutateOp::Remove(edges) => (state.remove_edges(edges) as u64, false),
            MutateOp::Compact => {
                let had_delta = state.delta_edges() > 0;
                if had_delta {
                    state.compact();
                }
                (0, had_delta)
            }
        };
        if matches!(op, MutateOp::Add(_) | MutateOp::Remove(_)) && applied > 0 {
            compacted = state.maybe_compact(self.compact_ratio());
        }
        let changed = applied > 0 || compacted;
        // Journal the logical edit (under the state mutex, so journal
        // positions and published versions advance in lockstep). The
        // whole requested batch is recorded — no-op edits replay as
        // no-ops — and only ops that changed content move the position,
        // so `content unchanged ⇒ position unchanged` holds (a pure
        // compact publishes a new version at the same position).
        let journal_mark = {
            let mut journal = graph.journal.lock().expect("named graph lock poisoned");
            if applied > 0 {
                let add = matches!(op, MutateOp::Add(_));
                if let MutateOp::Add(edges) | MutateOp::Remove(edges) = op {
                    if journal.ops.len() + edges.len() > MAX_JOURNAL_OPS {
                        journal.epoch += 1;
                        journal.ops.clear();
                    }
                    journal.ops.extend(edges.iter().map(|&(u, v)| (add, u, v)));
                }
            }
            (journal.epoch, journal.ops.len() as u64)
        };
        let old = graph.snapshot();
        let snapshot = if changed {
            let version = self.version_counter.fetch_add(1, Ordering::Relaxed) + 1;
            // Durability: append **before** publish, still under the
            // state mutex. A crash after the append replays to exactly
            // this version on restart (post-op); a crash before it
            // recovers the previous version (pre-op) — never a hybrid.
            // The wal guard is a leaf: nothing else is acquired while
            // it is held. On an append error the op is reported failed
            // while the in-memory delta already holds it — the next
            // successful mutation's record covers both (records carry
            // the full requested batch; set semantics make replaying a
            // partially-acknowledged batch converge to the same graph).
            {
                let mut wal = graph.wal.lock().expect("named graph lock poisoned");
                if let Some(w) = wal.as_mut() {
                    let rec = match op {
                        MutateOp::Add(edges) => SessionOp::Add(Cow::Borrowed(edges)),
                        MutateOp::Remove(edges) => SessionOp::Remove(Cow::Borrowed(edges)),
                        MutateOp::Compact => SessionOp::Compact,
                    };
                    w.append(version, &rec, &state)?;
                }
            }
            let snapshot = Self::named_snapshot(graph.fingerprint, version, &state, journal_mark);
            *graph.snapshot.write().expect("named graph lock poisoned") = snapshot.clone();
            graph.cum_delta.fetch_add(applied, Ordering::Relaxed);
            self.mutations.fetch_add(1, Ordering::Relaxed);
            snapshot
        } else {
            old
        };
        let delta_edges = state.delta_edges() as u64;
        // Keep the state mutex held through the publication check: a
        // concurrent mutation on the same graph cannot interleave, so
        // "the map still points at this object" really does mean this
        // op's snapshot is the published one.
        let still_live = {
            let map = self.named.read().expect("catalog lock poisoned");
            map.get(name).is_some_and(|g| Arc::ptr_eq(g, &graph))
        };
        drop(state);
        if !still_live {
            return Err(EngineError::StaleGraph {
                name: name.to_string(),
            });
        }
        Ok(MutationOutcome {
            fingerprint: graph.fingerprint,
            version: snapshot.version,
            changed,
            applied,
            nodes: snapshot.meta.nodes,
            edges: snapshot.meta.edges,
            delta_edges,
            compacted,
        })
    }

    /// Opens a data directory, making every named session graph durable:
    /// existing graphs are recovered (snapshot first, then WAL replay,
    /// torn tails dropped by checksum) and inserted into the catalog at
    /// the exact versions they crashed at, the version counter is
    /// raised past the highest recovered version (versions never
    /// regress across restarts — the result cache and warm seeds assume
    /// it), and every graph created afterwards gets its own WAL.
    ///
    /// Call once, at startup, before serving; a second call fails. The
    /// serve layer passes a **per-shard** subdirectory so no two engines
    /// share files. `fsync_every` = 0 disables explicit fsync;
    /// `snapshot_every` is clamped ≥ 1.
    pub fn open_data_dir(
        &self,
        dir: &Path,
        fsync_every: u64,
        snapshot_every: u64,
    ) -> EngineResult<RecoveryStats> {
        if self.durability.get().is_some() {
            return Err(EngineError::Persistence(
                "data dir already open for this catalog".into(),
            ));
        }
        let durability = Durability::open(dir, fsync_every, snapshot_every.max(1))?;
        let recovered = durability.recover(self.compact_ratio())?;
        let mut stats = RecoveryStats::default();
        {
            let mut map = self.named.write().expect("catalog lock poisoned");
            for g in recovered {
                stats.graphs += 1;
                stats.replayed_ops += g.replayed_ops;
                stats.dropped_tail_records += g.dropped_tail_records;
                stats.max_version = stats.max_version.max(g.version);
                let fingerprint = fnv1a(g.name.bytes());
                // Fresh journal at epoch 1 (same as a new create): any
                // incremental seed from the previous process is gone
                // with that process, so nothing can hold positions into
                // the discarded journal.
                let snapshot = Self::named_snapshot(fingerprint, g.version, &g.state, (1, 0));
                let graph = Arc::new(NamedGraph {
                    name: g.name.clone(),
                    fingerprint,
                    state: Mutex::new(g.state),
                    snapshot: RwLock::new(snapshot),
                    last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed) + 1),
                    cum_delta: AtomicU64::new(0),
                    warm_hits: AtomicU64::new(0),
                    warm_fallbacks: AtomicU64::new(0),
                    journal: Mutex::new(Journal {
                        epoch: 1,
                        ops: Vec::new(),
                    }),
                    incremental_hits: AtomicU64::new(0),
                    incremental_fallbacks: AtomicU64::new(0),
                    wal: Mutex::new(Some(g.wal)),
                    replayed_ops: g.replayed_ops,
                    dropped_tail_records: g.dropped_tail_records,
                });
                map.insert(g.name, graph);
            }
            let bound = self.max_entries.load(Ordering::Relaxed);
            while map.len() > bound {
                self.evict_lru_named(&mut map);
            }
        }
        self.version_counter
            .fetch_max(stats.max_version, Ordering::Relaxed);
        self.replayed_ops
            .fetch_add(stats.replayed_ops, Ordering::Relaxed);
        self.dropped_tail_records
            .fetch_add(stats.dropped_tail_records, Ordering::Relaxed);
        self.durability.set(durability).map_err(|_| {
            EngineError::Persistence("data dir already open for this catalog".into())
        })?;
        Ok(stats)
    }

    /// Whether this catalog persists sessions (a data dir is open).
    pub fn is_durable(&self) -> bool {
        self.durability.get().is_some()
    }

    /// `(replayed_ops, dropped_tail_records)` totals from startup
    /// recovery — the serve `stats` op's flat recovery counters.
    pub fn recovery_counters(&self) -> (u64, u64) {
        (
            self.replayed_ops.load(Ordering::Relaxed),
            self.dropped_tail_records.load(Ordering::Relaxed),
        )
    }
}

/// The load sequence: read, orient, canonicalize, fingerprint. Runs at
/// most once per `(key, stamp)` thanks to the slot's `OnceLock`.
///
/// The parse and the fingerprint are two separate reads of the file, so
/// an edit landing between them would pair one version's edges with the
/// other version's hash. The stamp is re-taken afterwards to detect
/// that: a changed stamp marks the entry `cacheable = false`, so it can
/// still answer queries (some consistent-enough version of the file)
/// but its reports never enter the result cache under a fingerprint
/// that may describe different bytes.
fn load_entry(
    path: &Path,
    binary: bool,
    kind: GraphKind,
    before: FileStamp,
) -> GraphResult<Arc<CatalogEntry>> {
    let mut list = if binary {
        read_binary(path)?
    } else {
        read_text(path, kind)?
    };
    // As-stored accounting of exactly the bytes just read — the same
    // numbers `stat` reports for this file version (`read_text` and
    // `scan_text_meta` share the `max id + 1` / any-weight rules; the
    // binary reader takes both from the header).
    let stored_meta = GraphMeta {
        nodes: list.num_nodes as u64,
        edges: list.num_edges() as u64,
        weighted: list.is_weighted(),
        file_bytes: before.len,
    };
    list.kind = kind;
    list.canonicalize();
    let fingerprint = fingerprint_file(path)?;
    let after = stamp(path)?;
    let mut entry = CatalogEntry::from_list(list, before.len, fingerprint);
    entry.stored_meta = stored_meta;
    entry.cacheable = after == before;
    Ok(Arc::new(entry))
}

/// One O(1)-memory pass over a text edge list: node count (`max id + 1`,
/// the same rule as `read_text`/`open_auto`), edge count, weightedness.
fn scan_text_meta(path: &Path, file_bytes: u64) -> GraphResult<GraphMeta> {
    let reader = BufReader::new(File::open(path).map_err(GraphError::Io)?);
    let mut max_id = 0u32;
    let mut edges = 0u64;
    let mut weighted = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(GraphError::Io)?;
        if let Some((u, v, w)) = parse_edge_line(&line, idx as u64 + 1)? {
            max_id = max_id.max(u).max(v);
            edges += 1;
            weighted |= w.is_some();
        }
    }
    Ok(GraphMeta {
        nodes: if edges == 0 { 0 } else { max_id as u64 + 1 },
        edges,
        weighted,
        file_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dsg_engine_catalog_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn loads_once_and_serves_hits() {
        let path = fixture("hits.txt", "0 1\n1 2\n2 0\n");
        let cat = GraphCatalog::new();
        let (a, hit_a) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        let (b, hit_b) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        assert!(!hit_a && hit_b);
        assert_eq!(cat.stats().loads, 1);
        assert_eq!(cat.stats().hits, 1);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(Arc::ptr_eq(&a, &b));
        // The CSR is built once and shared.
        assert!(Arc::ptr_eq(&a.csr_undirected(), &b.csr_undirected()));
    }

    #[test]
    fn orientations_are_distinct_entries() {
        let path = fixture("orient.txt", "0 1\n1 0\n");
        let cat = GraphCatalog::new();
        let (und, _) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        let (dir, _) = cat.get_or_load(&path, false, GraphKind::Directed).unwrap();
        assert_eq!(cat.stats().loads, 2);
        // Canonicalization dedupes the undirected pair but keeps both arcs.
        assert_eq!(und.list.num_edges(), 1);
        assert_eq!(dir.list.num_edges(), 2);
    }

    #[test]
    fn changed_file_is_reloaded() {
        let path = fixture("reload.txt", "0 1\n");
        let cat = GraphCatalog::new();
        let (a, _) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        // Rewrite with different content (and different length, so the
        // stamp check cannot miss it even at mtime granularity).
        std::fs::write(&path, "0 1\n1 2\n").unwrap();
        let (b, hit) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        assert!(!hit);
        assert_eq!(cat.stats().loads, 2);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(b.list.num_edges(), 2);
    }

    #[test]
    fn stat_is_identical_hot_and_cold() {
        // A duplicate pair: 2 edges as stored, 1 after canonicalization.
        // Planning must see the stored counts whether or not the graph
        // is loaded, or hot serve plans would diverge from cold one-shot
        // plans.
        let path = fixture("hotcold.txt", "0 1\n1 0\n");
        let cat = GraphCatalog::new();
        let cold = cat.stat(&path, false).unwrap();
        assert_eq!(cold.edges, 2);
        let (entry, _) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        assert_eq!(entry.list.num_edges(), 1, "canonicalization dedupes");
        let hot = cat.stat(&path, false).unwrap();
        assert_eq!(cold, hot, "stat must not depend on catalog state");
    }

    #[test]
    fn lru_eviction_bounds_the_catalog() {
        let cat = GraphCatalog::new();
        cat.set_max_entries(2);
        let a = fixture("lru_a.txt", "0 1\n");
        let b = fixture("lru_b.txt", "0 1\n1 2\n");
        let c = fixture("lru_c.txt", "0 1\n1 2\n2 3\n");
        cat.get_or_load(&a, false, GraphKind::Undirected).unwrap();
        cat.get_or_load(&b, false, GraphKind::Undirected).unwrap();
        // Touch `a` so `b` is the least recently used, then overflow.
        cat.get_or_load(&a, false, GraphKind::Undirected).unwrap();
        cat.get_or_load(&c, false, GraphKind::Undirected).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.stats().evictions, 1);
        // `a` survived (recently used), `b` was evicted and reloads.
        cat.get_or_load(&a, false, GraphKind::Undirected).unwrap();
        assert_eq!(cat.stats().loads, 3, "a still cached");
        cat.get_or_load(&b, false, GraphKind::Undirected).unwrap();
        assert_eq!(cat.stats().loads, 4, "b had to reload");
    }

    #[test]
    fn stat_matches_loaded_meta_without_loading() {
        let path = fixture("stat.txt", "# comment\n0 1\n1 2 2.5\n");
        let cat = GraphCatalog::new();
        let meta = cat.stat(&path, false).unwrap();
        assert_eq!(meta.nodes, 3);
        assert_eq!(meta.edges, 2);
        assert!(meta.weighted);
        assert_eq!(cat.stats().loads, 0);
        assert_eq!(cat.stats().stat_scans, 1);
        // A second stat is served from the cache.
        cat.stat(&path, false).unwrap();
        assert_eq!(cat.stats().stat_scans, 1);
    }

    #[test]
    fn concurrent_cold_requests_load_exactly_once() {
        // The single-flight contract: many threads racing on the same
        // cold graph trigger one load, everyone shares the same Arc.
        let mut body = String::new();
        for u in 0..40u32 {
            for v in (u + 1)..40 {
                body.push_str(&format!("{u} {v}\n"));
            }
        }
        let path = fixture("singleflight.txt", &body);
        let cat = GraphCatalog::new();
        let threads = 8;
        let barrier = std::sync::Barrier::new(threads);
        let entries: Vec<Arc<CatalogEntry>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        cat.get_or_load(&path, false, GraphKind::Undirected)
                            .unwrap()
                            .0
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cat.stats().loads, 1, "single-flight: exactly one load");
        assert_eq!(cat.stats().hits, threads as u64 - 1);
        for e in &entries[1..] {
            assert!(Arc::ptr_eq(&entries[0], e), "one shared snapshot");
        }
    }

    #[test]
    fn failed_loads_are_not_cached_and_are_retried() {
        let path = fixture("badload.txt", "0 1\nnot an edge\n");
        let cat = GraphCatalog::new();
        let err = match cat.get_or_load(&path, false, GraphKind::Undirected) {
            Err(e) => e,
            Ok(_) => panic!("loading a malformed file must fail"),
        };
        assert!(matches!(err, GraphError::Parse { .. }), "{err}");
        assert_eq!(cat.len(), 0, "failed slots are dropped");
        // Fixing the file makes the next request succeed.
        std::fs::write(&path, "0 1\n1 2\n").unwrap();
        let (entry, hit) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        assert!(!hit);
        assert_eq!(entry.list.num_edges(), 2);
    }

    #[test]
    fn named_graph_versions_and_snapshots() {
        let cat = GraphCatalog::new();
        let created = cat
            .create_named("g", GraphKind::Undirected, &[(0, 1), (1, 2)])
            .unwrap();
        assert_eq!(created.version, 1);
        assert_eq!(created.edges, 2);
        assert!(created.changed);
        let (_, snap1) = cat.get_named("g").unwrap();
        assert_eq!(snap1.version, 1);
        assert_eq!(snap1.list.num_edges(), 2);

        // A held snapshot is immutable across mutations.
        let out = cat.mutate_named("g", MutateOp::Add(&[(0, 2)])).unwrap();
        assert_eq!(out.version, 2);
        assert_eq!(out.applied, 1);
        assert_eq!(out.edges, 3);
        assert_eq!(snap1.list.num_edges(), 2, "old snapshot untouched");
        let (_, snap2) = cat.get_named("g").unwrap();
        assert_eq!(snap2.list.num_edges(), 3);
        assert_ne!(snap1.content_hash, snap2.content_hash);

        // No-op mutations do not bump the version.
        let noop = cat.mutate_named("g", MutateOp::Add(&[(0, 1)])).unwrap();
        assert_eq!(noop.version, 2);
        assert!(!noop.changed);
        assert_eq!(cat.mutations(), 1, "no-ops are not mutations");

        // Add-then-remove round trip restores the content hash (the
        // warm-restart replay trigger) at a higher version.
        cat.mutate_named("g", MutateOp::Remove(&[(0, 2)])).unwrap();
        let (_, snap3) = cat.get_named("g").unwrap();
        assert!(snap3.version > snap2.version);
        assert_eq!(snap3.content_hash, snap1.content_hash);

        // Unknown/duplicate names are typed errors.
        assert!(matches!(
            cat.mutate_named("missing", MutateOp::Compact),
            Err(EngineError::UnknownGraph { .. })
        ));
        assert!(matches!(
            cat.create_named("g", GraphKind::Undirected, &[]),
            Err(EngineError::GraphExists { .. })
        ));
    }

    #[test]
    fn named_graphs_auto_compact_past_the_ratio() {
        let cat = GraphCatalog::new();
        cat.set_compact_ratio(0.5);
        cat.create_named(
            "g",
            GraphKind::Undirected,
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        )
        .unwrap();
        // A small delta stays in the logs...
        let out = cat.mutate_named("g", MutateOp::Add(&[(0, 2)])).unwrap();
        assert!(!out.compacted);
        assert_eq!(out.delta_edges, 1);
        // ...but crossing ratio x base folds them.
        let out = cat
            .mutate_named("g", MutateOp::Add(&[(0, 3), (0, 4)]))
            .unwrap();
        assert!(out.compacted, "3 delta edges > 0.5 x 4 base edges");
        assert_eq!(out.delta_edges, 0);
        let stats = &cat.named_stats()[0];
        // Two compactions: the seeded create itself (4 delta edges over
        // an empty base) plus the ratio-crossing add above.
        assert_eq!(stats.compactions, 2);
        assert_eq!(stats.edges, 7);
    }

    #[test]
    fn versions_are_never_reused_across_recreation() {
        let cat = GraphCatalog::new();
        cat.set_max_entries(1);
        cat.create_named("a", GraphKind::Undirected, &[(0, 1)])
            .unwrap();
        cat.mutate_named("a", MutateOp::Add(&[(1, 2)])).unwrap();
        // Evict `a` by creating `b`, then re-create `a`: its first
        // version must be beyond every version the old `a` ever had.
        cat.create_named("b", GraphKind::Undirected, &[]).unwrap();
        assert!(cat.get_named("a").is_none(), "a was evicted");
        let recreated = cat.create_named("a", GraphKind::Undirected, &[]).unwrap();
        assert!(recreated.version > 2, "got {}", recreated.version);
    }

    #[test]
    fn eviction_racing_mutation_never_silently_drops_the_delta() {
        // The PR-5 companion to the single-flight test: 8 threads mutate
        // one named graph while the main thread evicts it mid-flight by
        // overflowing the bound. Every add_edges call must either (a)
        // succeed — its edge is in the final graph reachable under the
        // name at the moment of success — or (b) fail with a typed
        // stale/unknown-graph error. What must never happen is an Ok
        // whose edge is missing from the graph the op applied to.
        let threads = 8u32;
        for round in 0..8 {
            let cat = GraphCatalog::new();
            cat.set_max_entries(2);
            cat.create_named("target", GraphKind::Undirected, &[(0, 1)])
                .unwrap();
            let barrier = std::sync::Barrier::new(threads as usize + 1);
            let results: Vec<Result<u32, EngineError>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|i| {
                        let (cat, barrier) = (&cat, &barrier);
                        s.spawn(move || {
                            barrier.wait();
                            // Distinct edge per thread, identifiable in
                            // the survivor graph.
                            let edge = (100 + i, 200 + i);
                            cat.mutate_named("target", MutateOp::Add(&[edge]))
                                .map(|out| {
                                    assert!(out.changed);
                                    i
                                })
                        })
                    })
                    .collect();
                barrier.wait();
                // Race the mutators: evict "target" by overflowing the
                // 2-graph bound with fresh names.
                for j in 0..3 {
                    let _ = cat.create_named(
                        &format!("filler_{round}_{j}"),
                        GraphKind::Undirected,
                        &[],
                    );
                }
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            // Whatever survived under the name (possibly nothing) tells
            // us which successes must be visible.
            let survivor = cat.get_named("target").map(|(_, e)| e);
            for result in results {
                match result {
                    Ok(i) => {
                        if let Some(entry) = &survivor {
                            assert!(
                                entry.list.edges.contains(&(100 + i, 200 + i)),
                                "round {round}: thread {i} reported success but its edge \
                                 is missing from the live graph"
                            );
                        }
                        // If the whole graph was evicted afterwards, the
                        // op still applied to the then-live entry; the
                        // loss is the (documented) whole-graph eviction,
                        // not a silent per-delta drop.
                    }
                    Err(EngineError::StaleGraph { .. } | EngineError::UnknownGraph { .. }) => {}
                    Err(other) => panic!("round {round}: untyped failure: {other}"),
                }
            }
        }
    }

    #[test]
    fn eviction_never_invalidates_a_held_snapshot() {
        let cat = GraphCatalog::new();
        cat.set_max_entries(1);
        let a = fixture("held_a.txt", "0 1\n1 2\n");
        let b = fixture("held_b.txt", "0 1\n");
        let (held, _) = cat.get_or_load(&a, false, GraphKind::Undirected).unwrap();
        let csr = held.csr_undirected();
        // Loading `b` evicts `a` from the map...
        cat.get_or_load(&b, false, GraphKind::Undirected).unwrap();
        assert_eq!(cat.stats().evictions, 1);
        // ...but the held snapshot (and its CSR) is untouched.
        assert_eq!(held.list.num_edges(), 2);
        assert_eq!(csr.num_nodes(), 3);
    }
}
