//! The graph catalog: load and fingerprint each graph **once**, serve
//! many queries from it.
//!
//! Every one-shot CLI invocation used to re-read and re-canonicalize the
//! edge file; the catalog is what makes the long-running serve mode
//! amortize that. An entry caches the canonicalized [`EdgeList`] plus
//! lazily-built CSR snapshots (undirected and directed), keyed by
//! `(path, format, orientation)` — the same file parsed as directed and
//! as undirected canonicalizes differently, so the orientations are
//! distinct entries. A cheap `(file length, mtime)` check revalidates
//! entries on every hit; a changed file is transparently reloaded and
//! re-fingerprinted.
//!
//! [`GraphCatalog::stat`] answers the planner's question — how big is
//! this graph? — *without* materializing: the binary header or a text
//! validation scan (O(1) memory), cached per path.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::SystemTime;

use dsg_graph::io::{read_binary, read_text, BinaryEdgeReader};
use dsg_graph::stream::parse_edge_line;
use dsg_graph::{CsrDirected, CsrUndirected, EdgeList, GraphKind, Result as GraphResult};

use crate::planner::GraphMeta;

/// A loaded, canonicalized graph with lazily-built CSR snapshots.
pub struct CatalogEntry {
    /// The canonicalized edge list (exactly what the one-shot CLI built).
    pub list: EdgeList,
    /// FNV-1a fingerprint of the raw file bytes at load time (0 for
    /// memory-sourced entries).
    pub fingerprint: u64,
    /// Size/weightedness metadata of the loaded graph.
    pub meta: GraphMeta,
    csr_undirected: OnceLock<Arc<CsrUndirected>>,
    csr_directed: OnceLock<Arc<CsrDirected>>,
}

impl CatalogEntry {
    /// Wraps an already-canonicalized list (memory sources, tests).
    pub fn from_list(list: EdgeList, file_bytes: u64, fingerprint: u64) -> Self {
        let meta = GraphMeta {
            nodes: list.num_nodes as u64,
            edges: list.num_edges() as u64,
            weighted: list.is_weighted(),
            file_bytes,
        };
        CatalogEntry {
            list,
            fingerprint,
            meta,
            csr_undirected: OnceLock::new(),
            csr_directed: OnceLock::new(),
        }
    }

    /// The undirected CSR snapshot, built on first use and cached.
    pub fn csr_undirected(&self) -> Arc<CsrUndirected> {
        self.csr_undirected
            .get_or_init(|| Arc::new(CsrUndirected::from_edge_list(&self.list)))
            .clone()
    }

    /// The directed CSR snapshot, built on first use and cached.
    pub fn csr_directed(&self) -> Arc<CsrDirected> {
        self.csr_directed
            .get_or_init(|| Arc::new(CsrDirected::from_edge_list(&self.list)))
            .clone()
    }
}

/// Cache key: one entry per `(path, format, orientation)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    path: PathBuf,
    binary: bool,
    kind: GraphKind,
}

/// `(len, mtime)` snapshot used to revalidate cached entries cheaply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FileStamp {
    len: u64,
    mtime: Option<SystemTime>,
}

fn stamp(path: &Path) -> GraphResult<FileStamp> {
    let md = std::fs::metadata(path).map_err(dsg_graph::GraphError::Io)?;
    Ok(FileStamp {
        len: md.len(),
        mtime: md.modified().ok(),
    })
}

/// FNV-1a over the raw file bytes.
fn fingerprint_file(path: &Path) -> GraphResult<u64> {
    let mut f = File::open(path).map_err(dsg_graph::GraphError::Io)?;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf).map_err(dsg_graph::GraphError::Io)?;
        if n == 0 {
            break;
        }
        for &b in &buf[..n] {
            hash = (hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    Ok(hash)
}

/// Load/hit counters, surfaced by the serve mode's `stats` op and
/// asserted by the catalog tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Number of times a file was actually read and canonicalized.
    pub loads: u64,
    /// Number of queries answered from a cached entry.
    pub hits: u64,
    /// Number of meta-only stat scans performed.
    pub stat_scans: u64,
    /// Number of entries evicted to respect [`GraphCatalog::max_entries`].
    pub evictions: u64,
}

/// Default bound on cached graphs (see [`GraphCatalog::set_max_entries`]).
pub const DEFAULT_MAX_ENTRIES: usize = 32;

/// A cached entry plus its revalidation stamp and LRU clock reading.
struct Cached {
    entry: Arc<CatalogEntry>,
    stamp: FileStamp,
    last_used: u64,
}

/// The catalog itself. Not thread-safe by design — the engine owns one
/// and the serve loop is sequential; wrap in a mutex to share.
pub struct GraphCatalog {
    entries: HashMap<Key, Cached>,
    meta_cache: HashMap<Key, (GraphMeta, FileStamp)>,
    stats: CatalogStats,
    clock: u64,
    max_entries: usize,
}

impl Default for GraphCatalog {
    fn default() -> Self {
        GraphCatalog {
            entries: HashMap::new(),
            meta_cache: HashMap::new(),
            stats: CatalogStats::default(),
            clock: 0,
            max_entries: DEFAULT_MAX_ENTRIES,
        }
    }
}

impl GraphCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the number of cached graphs: loading beyond the bound
    /// evicts the least-recently-used entry, so a long-running server
    /// queried over many distinct files cannot grow without limit
    /// (evicted graphs transparently reload on their next query). The
    /// bound is clamped to at least 1; the default is
    /// [`DEFAULT_MAX_ENTRIES`].
    pub fn set_max_entries(&mut self, max_entries: usize) {
        self.max_entries = max_entries.max(1);
        while self.entries.len() > self.max_entries {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, c)| c.last_used)
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&key);
            self.stats.evictions += 1;
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CatalogStats {
        self.stats
    }

    /// Number of distinct graphs currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no graph is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.meta_cache.clear();
    }

    /// Returns the cached graph for `(path, binary, kind)`, loading,
    /// canonicalizing, and fingerprinting it on first use — exactly the
    /// sequence the one-shot CLI performed, so results are identical.
    /// The second return is `true` on a cache hit.
    pub fn get_or_load(
        &mut self,
        path: &Path,
        binary: bool,
        kind: GraphKind,
    ) -> GraphResult<(Arc<CatalogEntry>, bool)> {
        let key = Key {
            path: path.to_path_buf(),
            binary,
            kind,
        };
        let current = stamp(path)?;
        self.clock += 1;
        if let Some(cached) = self.entries.get_mut(&key) {
            if cached.stamp == current {
                cached.last_used = self.clock;
                self.stats.hits += 1;
                return Ok((cached.entry.clone(), true));
            }
        }
        let mut list = if binary {
            read_binary(path)?
        } else {
            read_text(path, kind)?
        };
        list.kind = kind;
        list.canonicalize();
        let fingerprint = fingerprint_file(path)?;
        let entry = Arc::new(CatalogEntry::from_list(list, current.len, fingerprint));
        self.stats.loads += 1;
        // Replacing a stale entry never needs an eviction; a genuinely
        // new key beyond the bound pushes out the least-recently-used.
        if !self.entries.contains_key(&key) && self.entries.len() >= self.max_entries {
            self.evict_lru();
        }
        self.entries.insert(
            key,
            Cached {
                entry: entry.clone(),
                stamp: current,
                last_used: self.clock,
            },
        );
        Ok((entry, false))
    }

    /// Size metadata for planning, **without** materializing the graph:
    /// binary header, or a text validation scan with O(1) memory. Cached
    /// per `(path, format, orientation)` and revalidated by file stamp.
    ///
    /// The counts always describe the file **as stored** — never the
    /// canonicalized in-memory entry — so a plan is a pure function of
    /// the file's content and the policy, independent of what the
    /// catalog happens to hold. (A loaded entry's canonicalized edge
    /// count can be smaller; consulting it here would make the same
    /// query plan differently hot vs cold, and serve-mode results could
    /// then diverge from one-shot runs.)
    pub fn stat(&mut self, path: &Path, binary: bool) -> GraphResult<GraphMeta> {
        // Node/edge counts and weightedness do not depend on how the
        // edges will be oriented, so there is no orientation parameter:
        // a directed query after an undirected one (or vice versa) is
        // served from the same cached scan.
        let key = Key {
            path: path.to_path_buf(),
            binary,
            kind: GraphKind::Undirected,
        };
        let current = stamp(path)?;
        if let Some((meta, cached)) = self.meta_cache.get(&key) {
            if *cached == current {
                return Ok(*meta);
            }
        }
        self.stats.stat_scans += 1;
        let meta = if binary {
            let r = BinaryEdgeReader::open(path)?;
            GraphMeta {
                nodes: r.num_nodes() as u64,
                edges: r.num_edges(),
                weighted: r.is_weighted(),
                file_bytes: current.len,
            }
        } else {
            scan_text_meta(path, current.len)?
        };
        // The meta cache holds a few fixed-size words per key; bound it
        // all the same so a server stat-ing endless distinct paths
        // cannot grow without limit.
        if self.meta_cache.len() >= 4 * self.max_entries {
            self.meta_cache.clear();
        }
        self.meta_cache.insert(key, (meta, current));
        Ok(meta)
    }
}

/// One O(1)-memory pass over a text edge list: node count (`max id + 1`,
/// the same rule as `read_text`/`open_auto`), edge count, weightedness.
fn scan_text_meta(path: &Path, file_bytes: u64) -> GraphResult<GraphMeta> {
    let reader = BufReader::new(File::open(path).map_err(dsg_graph::GraphError::Io)?);
    let mut max_id = 0u32;
    let mut edges = 0u64;
    let mut weighted = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(dsg_graph::GraphError::Io)?;
        if let Some((u, v, w)) = parse_edge_line(&line, idx as u64 + 1)? {
            max_id = max_id.max(u).max(v);
            edges += 1;
            weighted |= w.is_some();
        }
    }
    Ok(GraphMeta {
        nodes: if edges == 0 { 0 } else { max_id as u64 + 1 },
        edges,
        weighted,
        file_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dsg_engine_catalog_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn loads_once_and_serves_hits() {
        let path = fixture("hits.txt", "0 1\n1 2\n2 0\n");
        let mut cat = GraphCatalog::new();
        let (a, hit_a) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        let (b, hit_b) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        assert!(!hit_a && hit_b);
        assert_eq!(cat.stats().loads, 1);
        assert_eq!(cat.stats().hits, 1);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(Arc::ptr_eq(&a, &b));
        // The CSR is built once and shared.
        assert!(Arc::ptr_eq(&a.csr_undirected(), &b.csr_undirected()));
    }

    #[test]
    fn orientations_are_distinct_entries() {
        let path = fixture("orient.txt", "0 1\n1 0\n");
        let mut cat = GraphCatalog::new();
        let (und, _) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        let (dir, _) = cat.get_or_load(&path, false, GraphKind::Directed).unwrap();
        assert_eq!(cat.stats().loads, 2);
        // Canonicalization dedupes the undirected pair but keeps both arcs.
        assert_eq!(und.list.num_edges(), 1);
        assert_eq!(dir.list.num_edges(), 2);
    }

    #[test]
    fn changed_file_is_reloaded() {
        let path = fixture("reload.txt", "0 1\n");
        let mut cat = GraphCatalog::new();
        let (a, _) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        // Rewrite with different content (and different length, so the
        // stamp check cannot miss it even at mtime granularity).
        std::fs::write(&path, "0 1\n1 2\n").unwrap();
        let (b, hit) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        assert!(!hit);
        assert_eq!(cat.stats().loads, 2);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(b.list.num_edges(), 2);
    }

    #[test]
    fn stat_is_identical_hot_and_cold() {
        // A duplicate pair: 2 edges as stored, 1 after canonicalization.
        // Planning must see the stored counts whether or not the graph
        // is loaded, or hot serve plans would diverge from cold one-shot
        // plans.
        let path = fixture("hotcold.txt", "0 1\n1 0\n");
        let mut cat = GraphCatalog::new();
        let cold = cat.stat(&path, false).unwrap();
        assert_eq!(cold.edges, 2);
        let (entry, _) = cat
            .get_or_load(&path, false, GraphKind::Undirected)
            .unwrap();
        assert_eq!(entry.list.num_edges(), 1, "canonicalization dedupes");
        let hot = cat.stat(&path, false).unwrap();
        assert_eq!(cold, hot, "stat must not depend on catalog state");
    }

    #[test]
    fn lru_eviction_bounds_the_catalog() {
        let mut cat = GraphCatalog::new();
        cat.set_max_entries(2);
        let a = fixture("lru_a.txt", "0 1\n");
        let b = fixture("lru_b.txt", "0 1\n1 2\n");
        let c = fixture("lru_c.txt", "0 1\n1 2\n2 3\n");
        cat.get_or_load(&a, false, GraphKind::Undirected).unwrap();
        cat.get_or_load(&b, false, GraphKind::Undirected).unwrap();
        // Touch `a` so `b` is the least recently used, then overflow.
        cat.get_or_load(&a, false, GraphKind::Undirected).unwrap();
        cat.get_or_load(&c, false, GraphKind::Undirected).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.stats().evictions, 1);
        // `a` survived (recently used), `b` was evicted and reloads.
        cat.get_or_load(&a, false, GraphKind::Undirected).unwrap();
        assert_eq!(cat.stats().loads, 3, "a still cached");
        cat.get_or_load(&b, false, GraphKind::Undirected).unwrap();
        assert_eq!(cat.stats().loads, 4, "b had to reload");
    }

    #[test]
    fn stat_matches_loaded_meta_without_loading() {
        let path = fixture("stat.txt", "# comment\n0 1\n1 2 2.5\n");
        let mut cat = GraphCatalog::new();
        let meta = cat.stat(&path, false).unwrap();
        assert_eq!(meta.nodes, 3);
        assert_eq!(meta.edges, 2);
        assert!(meta.weighted);
        assert_eq!(cat.stats().loads, 0);
        assert_eq!(cat.stats().stat_scans, 1);
        // A second stat is served from the cache.
        cat.stat(&path, false).unwrap();
        assert_eq!(cat.stats().stat_scans, 1);
    }
}
