//! Sharded serving: N independent engines behind one socket.
//!
//! With `ServeOptions::shards > 1` the Unix-socket server splits into a
//! **front router** and N **engine shards**:
//!
//! ```text
//!                        ┌──────────────┐
//!   accept thread ──────▶│ router worker│──┐
//!   (one, shared)        │ event loops  │  │ bounded per-shard queue
//!                        │ (all conn    │  ▼
//!                        │  I/O lives   │ ┌─────────────────────────┐
//!                        │  here)       │ │ shard 0: Engine+catalog │
//!                        │              │ │ + result cache + warm/  │
//!                        │  hash-route  │ │ incremental state, own  │
//!                        │  by graph    │ │ executor pool           │
//!                        │  identity ───┼▶├─────────────────────────┤
//!                        │              │ │ shard 1: …              │
//!                        └──────▲───────┘ └───────────┬─────────────┘
//!                               └── completion mailbox┘
//! ```
//!
//! * Each shard owns a full [`Engine`] — its own [`GraphCatalog`],
//!   [`ResultCache`], and warm-seed/incremental state — served by its
//!   own executor pool. Shards share **nothing**: no lock is ever taken
//!   by more than one shard, so one shard's slow query or contended
//!   session never stalls another shard's throughput.
//! * The routing rule is pure and stable: FNV-1a over the request's
//!   graph identity (`"g:" + name` for session graphs, `"f:" + path`
//!   for file graphs), mod the shard count. Every `create_graph`,
//!   mutation, and query for the same named graph therefore lands on
//!   the same shard, which is what keeps all per-session invariants
//!   (version monotonicity, warm restarts, incremental re-peeling) of
//!   the single-engine server valid per-shard, unchanged.
//! * The router owns every connection and its buffers. Requests cross
//!   to a shard over a bounded queue (`ShardQueue`); replies come
//!   back pre-encoded through a per-router-worker completion mailbox.
//!   A full queue parks the *connection* (the job is retried once the
//!   shard drains), never the router thread — backpressure is
//!   per-connection, exactly like the write high-water mark.
//! * Dispatch is **serial per connection**: one request in flight at a
//!   time, so responses come back in request order on every connection
//!   and a 1-shard and an N-shard server answer the same single-client
//!   transcript with byte-identical response *content* (`elapsed_ms`
//!   differs per run; `loads` counts per-shard catalog loads).
//! * `stats` and `shutdown` never reach a shard: the router answers
//!   `stats` by scatter/gathering every shard's counters into the flat
//!   single-engine schema (fields summed, `named` arrays concatenated
//!   in shard order) plus a trailing `"shards"` per-shard breakdown
//!   array, and `shutdown` latches the global stop flag directly.
//!
//! [`GraphCatalog`]: crate::GraphCatalog
//! [`ResultCache`]: crate::ResultCache

use std::collections::VecDeque;
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use crate::minijson::{self, Value};
use crate::readiness::{poll_fds, wake_pair, PollFd, WakeReceiver, POLLIN, POLLOUT};
use crate::report::JsonBuilder;
use crate::serve::{
    accept_next, error_response, handle_fields, ConnGate, Connection, LineOutcome, ServeMetrics,
    ServeOptions, ServeSummary, WireMode, READ_CHUNK,
};
use crate::{Engine, ResourcePolicy};

/// Bound of each shard's request queue. Small on purpose: the queue is
/// a handoff buffer, not a backlog — a shard that falls this far behind
/// should push back on its connections, not absorb unbounded work.
pub(crate) const SHARD_QUEUE_CAP: usize = 256;

/// Picks the shard serving a request, from the request's graph
/// identity: the session-graph `name` if present, else the `file` path,
/// else shard 0 (identity-free requests have no affinity to honor).
///
/// The hash is FNV-1a over a tagged key (`"g:" + name` / `"f:" + path`)
/// so a file named like a session graph cannot collide with it. The
/// function is pure — the same request routes to the same shard across
/// restarts, which is what pins a named graph's whole session (create,
/// mutations, queries) to one engine.
pub fn routing_shard(graph: Option<&str>, file: Option<&str>, shards: usize) -> usize {
    let shards = shards.max(1);
    let (tag, key) = match (graph, file) {
        (Some(name), _) => (b'g', name),
        (None, Some(path)) => (b'f', path),
        (None, None) => return 0,
    };
    let mut hash: u64 = 0xcbf29ce484222325;
    for &byte in [tag, b':'].iter().chain(key.as_bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    (hash % shards as u64) as usize
}

/// One request crossing from the router to a shard. `worker`/`slot`/
/// `gen` address the owning connection so the completion finds its way
/// back (and is dropped if the connection died and its slot was
/// reused — the generation check).
struct ShardJob {
    worker: usize,
    slot: usize,
    gen: u64,
    fields: Vec<(String, Value)>,
    /// Opcode-carried op for binary requests; JSONL requests resolve
    /// the op from their fields, exactly like [`handle_fields`].
    op: Option<&'static str>,
    /// Encode the reply as a binary frame rather than a JSONL line.
    binary: bool,
}

/// A finished job's pre-encoded reply, homed to `(slot, gen)` on the
/// router worker that owns the connection.
struct Completion {
    slot: usize,
    gen: u64,
    bytes: Vec<u8>,
    shutdown: bool,
}

struct QueueState {
    jobs: VecDeque<ShardJob>,
    /// Router workers that hit the bound and parked a connection; the
    /// executor wakes them as soon as it pops (capacity freed).
    stalled: Vec<usize>,
}

/// The bounded SPSC-style handoff queue in front of one shard. The
/// router side never blocks: a push against a full queue fails and the
/// connection parks. The executor side blocks on `ready` until a job
/// or shutdown arrives.
struct ShardQueue {
    backlog: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

impl ShardQueue {
    fn new(cap: usize) -> Self {
        ShardQueue {
            backlog: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                stalled: Vec::new(),
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Nonblocking push. On a full queue the job comes back to the
    /// caller (which parks its connection) and `worker` is registered
    /// for a wake once the executor frees a slot.
    fn try_push(&self, job: ShardJob, worker: usize) -> Result<(), ShardJob> {
        let mut state = self.backlog.lock().expect("shard queue poisoned");
        if state.jobs.len() >= self.cap {
            if !state.stalled.contains(&worker) {
                state.stalled.push(worker);
            }
            return Err(job);
        }
        state.jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once shutdown latches and the queue is
    /// drained. Also returns the stalled router workers to wake now
    /// that a slot is free.
    fn pop(&self, metrics: &ServeMetrics) -> Option<(ShardJob, Vec<usize>)> {
        let mut state = self.backlog.lock().expect("shard queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                let stalled = std::mem::take(&mut state.stalled);
                return Some((job, stalled));
            }
            if metrics.shutdown_requested() {
                return None;
            }
            state = self.ready.wait(state).expect("shard queue poisoned");
        }
    }

    /// Wakes every executor parked in [`ShardQueue::pop`] so it can
    /// observe the shutdown latch. Taking the mutex first makes the
    /// wake race-free against a concurrent check-then-wait.
    fn poke(&self) {
        let _state = self.backlog.lock().expect("shard queue poisoned");
        self.ready.notify_all();
    }

    /// Test-only: returns a popped job to the head of the queue (an
    /// executor raced a just-raised [`HoldGate`]). May transiently
    /// exceed `cap` by the one job being returned; order is preserved.
    #[cfg(test)]
    fn push_front(&self, job: ShardJob) {
        let mut state = self.backlog.lock().expect("shard queue poisoned");
        state.jobs.push_front(job);
        self.ready.notify_one();
    }
}

/// Test-only brake on one shard's executors: while held, the shard
/// pops nothing — used to prove queue backpressure ordering and that
/// other shards keep making progress (shard isolation).
#[cfg(test)]
pub(crate) struct HoldGate {
    held: Mutex<bool>,
    released: Condvar,
}

#[cfg(test)]
impl HoldGate {
    fn new() -> Self {
        HoldGate {
            held: Mutex::new(false),
            released: Condvar::new(),
        }
    }

    pub(crate) fn hold(&self) {
        *self.held.lock().expect("hold gate poisoned") = true;
    }

    pub(crate) fn release(&self) {
        *self.held.lock().expect("hold gate poisoned") = false;
        self.released.notify_all();
    }

    fn is_held(&self) -> bool {
        *self.held.lock().expect("hold gate poisoned")
    }

    fn wait(&self, metrics: &ServeMetrics) {
        let mut held = self.held.lock().expect("hold gate poisoned");
        while *held && !metrics.shutdown_requested() {
            let (guard, _) = self
                .released
                .wait_timeout(held, std::time::Duration::from_millis(25))
                .expect("hold gate poisoned");
            held = guard;
        }
    }
}

/// Everything per-shard: the engines, their queues, per-shard serve
/// metrics (queries/mutations/errors executed there), and the routed
/// counter (requests the router sent there).
pub(crate) struct ShardRuntime {
    engines: Vec<Engine>,
    queues: Vec<ShardQueue>,
    shard_metrics: Vec<ServeMetrics>,
    routed: Vec<AtomicU64>,
    #[cfg(test)]
    holds: Vec<HoldGate>,
}

impl ShardRuntime {
    /// Builds `shards` engines, each tuned like `template` (the engine
    /// the caller configured via CLI flags before serving). With a data
    /// dir in `options`, each shard opens its own `shard-<i>`
    /// subdirectory — WAL and snapshot files are as shard-private as
    /// the locks are, so durability adds no cross-shard contention.
    pub(crate) fn new(
        template: &Engine,
        options: &ServeOptions,
        queue_cap: usize,
    ) -> std::io::Result<Self> {
        let shards = options.shards.max(1);
        let engines = (0..shards)
            .map(|i| shard_engine(template, options, i))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ShardRuntime {
            engines,
            queues: (0..shards).map(|_| ShardQueue::new(queue_cap)).collect(),
            shard_metrics: (0..shards).map(|_| ServeMetrics::new()).collect(),
            routed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            #[cfg(test)]
            holds: (0..shards).map(|_| HoldGate::new()).collect(),
        })
    }

    #[cfg(test)]
    pub(crate) fn hold(&self, shard: usize) -> &HoldGate {
        &self.holds[shard]
    }
}

/// A fresh engine stamped with `template`'s tuning — every knob the
/// serve CLI exposes is copied so an N-shard server behaves like N
/// independently configured 1-shard servers. Tuning is copied before
/// the data dir opens so recovery replays under the configured
/// compaction ratio.
fn shard_engine(
    template: &Engine,
    options: &ServeOptions,
    index: usize,
) -> std::io::Result<Engine> {
    let engine = Engine::new();
    engine
        .catalog()
        .set_max_entries(template.catalog().max_entries());
    engine
        .catalog()
        .set_compact_ratio(template.catalog().compact_ratio());
    engine.results().set_budget(template.results().budget());
    engine.set_warm_threshold(template.warm_threshold());
    engine.set_incremental_threshold(template.incremental_threshold());
    engine.set_mapreduce_spill(template.mapreduce_spill());
    if let Some(dir) = &options.data_dir {
        // Graphs recover on the shard whose directory they were written
        // to; restarting with a different `--shards` count strands them
        // on dirs the router no longer hashes to (documented — shard
        // rebalancing is a ROADMAP item).
        engine
            .catalog()
            .open_data_dir(
                &dir.join(format!("shard-{index}")),
                options.fsync_every,
                options.snapshot_every,
            )
            .map_err(|e| std::io::Error::other(e.to_string()))?;
    }
    Ok(engine)
}

/// One router worker's shared mailboxes: accepted connections in,
/// completions back from the shards. One waker covers both.
struct RouterSlot {
    arrivals: Mutex<Vec<UnixStream>>,
    completions: Mutex<Vec<Completion>>,
    waker: crate::readiness::Waker,
}

/// Everything the accept thread, router workers, and executors share
/// besides the runtime and metrics.
struct RouterShared {
    slots: Vec<RouterSlot>,
    accept_waker: crate::readiness::Waker,
    gate: ConnGate,
}

impl RouterShared {
    /// Wakes every parked thread — router loops, the accept thread, the
    /// gate, and each shard's executors — once shutdown latches.
    fn wake_all(&self, runtime: &ShardRuntime) {
        for slot in &self.slots {
            slot.waker.wake();
        }
        self.accept_waker.wake();
        self.gate.poke();
        for queue in &runtime.queues {
            queue.poke();
        }
    }
}

/// A queued piece of work extracted from a connection's read buffer,
/// dispatched strictly in order.
enum PendingItem {
    /// A request still to be routed (or answered inline).
    Req {
        op: Option<&'static str>,
        fields: Vec<(String, Value)>,
    },
    /// A per-request decode error: the reply is fixed, the stream stays
    /// synchronized (pre-encoded for the connection's wire mode).
    BadReq { bytes: Vec<u8> },
    /// Frame-level damage: emit the reply, then the connection closes
    /// (its input was already discarded at extraction).
    Poison { bytes: Vec<u8> },
}

/// One connection owned by a router worker. `gen` disambiguates slab
/// slot reuse; `parked` holds a job bounced off a full shard queue.
struct RouterConn {
    conn: Connection,
    gen: u64,
    pending: VecDeque<PendingItem>,
    parked: Option<(usize, ShardJob)>,
    in_flight: bool,
}

impl RouterConn {
    /// Read more bytes only when the connection could act on them:
    /// not while a request is in flight, parked, or queued — that is
    /// the per-connection backpressure that bounds router memory.
    fn wants_read(&self) -> bool {
        !self.conn.dead
            && !self.conn.eof
            && !self.conn.backlogged()
            && !self.in_flight
            && self.parked.is_none()
            && self.pending.is_empty()
    }

    /// Nothing left to do or deliver: safe to drop once seen dead.
    fn idle(&self) -> bool {
        !self.in_flight && self.parked.is_none() && self.pending.is_empty()
    }
}

/// Serves a bound listener in sharded mode; the entry point
/// `serve_unix` takes when `options.shards > 1`. `template` only
/// donates tuning — all queries run on the per-shard engines.
pub(crate) fn run_sharded_pool(
    template: &Engine,
    policy: &ResourcePolicy,
    listener: &UnixListener,
    options: &ServeOptions,
    metrics: &ServeMetrics,
) -> std::io::Result<ServeSummary> {
    let runtime = ShardRuntime::new(template, options, SHARD_QUEUE_CAP)?;
    run_router(&runtime, policy, listener, options, metrics)?;
    Ok(sharded_summary(&runtime, metrics))
}

/// Folds the per-shard counters into the flat [`ServeSummary`]: global
/// connection accounting from the router metrics plus op counts and
/// incremental stats summed across shards.
pub(crate) fn sharded_summary(runtime: &ShardRuntime, metrics: &ServeMetrics) -> ServeSummary {
    let mut summary = metrics.summary();
    for shard in &runtime.shard_metrics {
        let (queries, mutations, errors) = shard.op_counts();
        summary.queries += queries;
        summary.mutations += mutations;
        summary.errors += errors;
    }
    for engine in &runtime.engines {
        let inc = engine.incremental_stats();
        summary.incremental_hits += inc.hits;
        summary.incremental_fallbacks += inc.fallbacks;
    }
    summary
}

/// The accept thread + router event loops + per-shard executor pools,
/// all under one scope. Mirrors `run_pool`'s lifecycle exactly: the
/// accept loop ends on shutdown or error, latches the stop flag, wakes
/// everyone, and the scope join is the drain.
pub(crate) fn run_router(
    runtime: &ShardRuntime,
    policy: &ResourcePolicy,
    listener: &UnixListener,
    options: &ServeOptions,
    metrics: &ServeMetrics,
) -> std::io::Result<()> {
    let workers = options.workers.max(1);
    listener.set_nonblocking(true)?;
    let (accept_waker, accept_rx) = wake_pair()?;
    let mut slots = Vec::with_capacity(workers);
    let mut receivers = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (waker, rx) = wake_pair()?;
        slots.push(RouterSlot {
            arrivals: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            waker,
        });
        receivers.push(rx);
    }
    let shared = RouterShared {
        slots,
        accept_waker,
        gate: ConnGate::new(options.max_connections),
    };
    std::thread::scope(|s| {
        for (index, rx) in receivers.into_iter().enumerate() {
            let shared = &shared;
            s.spawn(move || router_event_loop(runtime, policy, metrics, shared, index, rx));
        }
        for shard in 0..runtime.engines.len() {
            for _ in 0..workers {
                let shared = &shared;
                s.spawn(move || executor_loop(runtime, shard, policy, metrics, shared));
            }
        }
        let mut next_worker = 0usize;
        let accept_result = loop {
            if !shared.gate.acquire(metrics) {
                break Ok(());
            }
            match accept_next(listener, &accept_rx, metrics) {
                Ok(Some(conn)) => {
                    let slot = &shared.slots[next_worker % shared.slots.len()];
                    next_worker = next_worker.wrapping_add(1);
                    slot.arrivals.lock().expect("arrivals poisoned").push(conn);
                    slot.waker.wake();
                }
                Ok(None) => {
                    shared.gate.release();
                    break Ok(());
                }
                Err(e) => {
                    shared.gate.release();
                    break Err(e);
                }
            }
        };
        metrics.request_shutdown();
        shared.wake_all(runtime);
        accept_result
    })
}

/// One shard's executor: pop, run against **this shard's** engine and
/// metrics only (the whole isolation invariant is visible right here),
/// encode, mail the completion home.
fn executor_loop(
    runtime: &ShardRuntime,
    shard: usize,
    policy: &ResourcePolicy,
    metrics: &ServeMetrics,
    shared: &RouterShared,
) {
    // Not a `while let`: the cfg(test) executor brake must run before
    // every pop, inside the loop body.
    #[allow(clippy::while_let_loop)]
    loop {
        #[cfg(test)]
        runtime.holds[shard].wait(metrics);
        let Some((job, stalled)) = runtime.queues[shard].pop(metrics) else {
            break;
        };
        // The brake can be raised while this executor was already parked
        // inside `pop` — the pre-pop wait above saw it open. Running the
        // job anyway would let a "held" shard answer, so put it back
        // (front: order is sacred) and wait the gate out.
        #[cfg(test)]
        if runtime.holds[shard].is_held() && !metrics.shutdown_requested() {
            runtime.queues[shard].push_front(job);
            for worker in stalled {
                shared.slots[worker].waker.wake();
            }
            runtime.holds[shard].wait(metrics);
            continue;
        }
        let (response, outcome) = handle_fields(
            &runtime.engines[shard],
            policy,
            &runtime.shard_metrics[shard],
            &job.fields,
            job.op,
        );
        let mut bytes = Vec::with_capacity(response.len() + 16);
        encode_response(job.binary, &response, &mut bytes);
        let completion = Completion {
            slot: job.slot,
            gen: job.gen,
            bytes,
            shutdown: matches!(outcome, LineOutcome::Shutdown),
        };
        let home = &shared.slots[job.worker];
        home.completions
            .lock()
            .expect("completion mailbox poisoned")
            .push(completion);
        home.waker.wake();
        // Capacity freed: revive router workers whose connections
        // parked against this queue's bound.
        for worker in stalled {
            shared.slots[worker].waker.wake();
        }
    }
}

fn encode_response(binary: bool, response: &str, out: &mut Vec<u8>) {
    if binary {
        crate::frame::encode_reply(response, out);
    } else {
        out.extend_from_slice(response.as_bytes());
        out.push(b'\n');
    }
}

/// Borrow bundle for the router's per-connection work.
struct RouterCtx<'a> {
    runtime: &'a ShardRuntime,
    global: &'a ServeMetrics,
    shared: &'a RouterShared,
    worker: usize,
}

/// One router worker: owns a slab of connections, multiplexes their
/// sockets with `poll(2)`, extracts requests, routes them, and splices
/// completed replies back into the right write buffer. No engine work
/// happens on this thread — a router turn is pure I/O plus hashing.
fn router_event_loop(
    runtime: &ShardRuntime,
    policy: &ResourcePolicy,
    metrics: &ServeMetrics,
    shared: &RouterShared,
    index: usize,
    wake_rx: WakeReceiver,
) {
    let _ = policy; // engine work (and its policy) lives on the executors
    let ctx = RouterCtx {
        runtime,
        global: metrics,
        shared,
        worker: index,
    };
    let mut conns: Vec<Option<RouterConn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut gen_counter = 0u64;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_slots: Vec<usize> = Vec::new();
    loop {
        if metrics.shutdown_requested() {
            break;
        }
        // Adopt newly assigned connections into free slab slots.
        let adopted: Vec<_> = {
            let mut arrivals = shared.slots[index]
                .arrivals
                .lock()
                .expect("arrivals poisoned");
            arrivals.drain(..).collect()
        };
        for stream in adopted {
            match stream.set_nonblocking(true) {
                Ok(()) => {
                    metrics.connection_opened();
                    gen_counter += 1;
                    let rc = RouterConn {
                        conn: Connection::new(stream),
                        gen: gen_counter,
                        pending: VecDeque::new(),
                        parked: None,
                        in_flight: false,
                    };
                    match free.pop() {
                        Some(slot) => conns[slot] = Some(rc),
                        None => conns.push(Some(rc)),
                    }
                }
                Err(_) => shared.gate.release(),
            }
        }
        // Poll only connections that can act on readiness. A connection
        // awaiting a shard (in flight or parked) with nothing to write
        // is deliberately absent — its wake arrives via the completion
        // mailbox, and polling its fd would busy-spin on POLLHUP if the
        // client hung up mid-request.
        fds.clear();
        fd_slots.clear();
        fds.push(PollFd::new(wake_rx.fd(), POLLIN));
        for (slot, entry) in conns.iter().enumerate() {
            let Some(rc) = entry else { continue };
            let mut events = 0i16;
            if rc.wants_read() {
                events |= POLLIN;
            }
            if rc.conn.wants_write() {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd::new(rc.conn.stream.as_raw_fd(), events));
                fd_slots.push(slot);
            }
        }
        if poll_fds(&mut fds, -1).is_err() {
            metrics.request_shutdown();
            shared.wake_all(runtime);
            break;
        }
        if fds[0].ready(POLLIN) {
            wake_rx.drain();
        }
        let mut saw_shutdown = false;
        // Splice completed replies home first, so the service pass
        // below can flush them and dispatch each connection's next
        // request in the same turn.
        let mut touched: Vec<usize> = Vec::new();
        apply_completions(&ctx, &mut conns, &mut touched, &mut saw_shutdown);
        for (pfd, &slot) in fds[1..].iter().zip(&fd_slots) {
            if pfd.ready(POLLIN | POLLOUT | crate::readiness::POLLERR | crate::readiness::POLLHUP)
                && !touched.contains(&slot)
            {
                touched.push(slot);
            }
        }
        // Parked connections get a turn every wake: the executor that
        // freed queue capacity woke this loop, and the retry lives in
        // the dispatch path.
        for (slot, entry) in conns.iter().enumerate() {
            if let Some(rc) = entry {
                if rc.parked.is_some() && !touched.contains(&slot) {
                    touched.push(slot);
                }
            }
        }
        for &slot in &touched {
            let Some(rc) = conns[slot].as_mut() else {
                continue;
            };
            service_conn(&ctx, rc, slot, &mut saw_shutdown);
            if saw_shutdown {
                break;
            }
        }
        for (slot, entry) in conns.iter_mut().enumerate() {
            let prune = match entry {
                Some(rc) => rc.conn.dead && !rc.in_flight,
                None => false,
            };
            if prune {
                *entry = None;
                free.push(slot);
                metrics.connection_closed();
                shared.gate.release();
            }
        }
        if saw_shutdown {
            shared.wake_all(runtime);
            break;
        }
    }
    // Shutdown drain: deliver any replies already mailed back, then one
    // best-effort flush per connection — never blocking on a slow
    // client, mirroring the single-engine pool's drain.
    let mut touched = Vec::new();
    let mut saw = false;
    apply_completions(&ctx, &mut conns, &mut touched, &mut saw);
    for rc in conns.iter_mut().flatten() {
        if !rc.conn.dead {
            rc.conn.flush();
        }
        metrics.connection_closed();
        shared.gate.release();
    }
}

/// Drains this worker's completion mailbox into the owning
/// connections' write buffers (generation-checked, so a reply for a
/// dead, reclaimed slot is dropped on the floor).
fn apply_completions(
    ctx: &RouterCtx<'_>,
    conns: &mut [Option<RouterConn>],
    touched: &mut Vec<usize>,
    saw_shutdown: &mut bool,
) {
    let completions: Vec<Completion> = {
        let mut mailbox = ctx.shared.slots[ctx.worker]
            .completions
            .lock()
            .expect("completion mailbox poisoned");
        mailbox.drain(..).collect()
    };
    for completion in completions {
        if completion.shutdown {
            // Defensive: shards never see shutdown ops (the router
            // answers them inline), but honor the latch if one slips
            // through a future op.
            *saw_shutdown = true;
        }
        let Some(rc) = conns.get_mut(completion.slot).and_then(Option::as_mut) else {
            continue;
        };
        if rc.gen != completion.gen {
            continue;
        }
        rc.conn.wbuf.extend_from_slice(&completion.bytes);
        rc.in_flight = false;
        if !touched.contains(&completion.slot) {
            touched.push(completion.slot);
        }
    }
}

/// One connection's service turn: read, dispatch in strict order
/// (parked retry → pending items → fresh extraction), flush. The
/// backlog-retry dance mirrors `Connection::service`.
fn service_conn(ctx: &RouterCtx<'_>, rc: &mut RouterConn, slot: usize, saw_shutdown: &mut bool) {
    loop {
        let was_backlogged = rc.conn.backlogged();
        if rc.wants_read() {
            rc.conn.fill_rbuf();
        }
        let progressed = dispatch(ctx, rc, slot, saw_shutdown);
        if rc.conn.wants_write() {
            rc.conn.flush();
        }
        if rc.conn.dead || *saw_shutdown {
            break;
        }
        if was_backlogged && !rc.conn.backlogged() {
            continue;
        }
        if !progressed {
            break;
        }
    }
    if !rc.conn.dead && rc.conn.eof && rc.conn.pending_write() == 0 && rc.idle() {
        rc.conn.dead = true;
    }
}

/// Advances one connection as far as the serial-dispatch rule allows.
/// Returns whether anything moved.
fn dispatch(
    ctx: &RouterCtx<'_>,
    rc: &mut RouterConn,
    slot: usize,
    saw_shutdown: &mut bool,
) -> bool {
    let mut progressed = false;
    loop {
        if rc.conn.dead || *saw_shutdown {
            return progressed;
        }
        // Retry a job bounced off a full shard queue before anything
        // else — order is sacred.
        if let Some((shard, job)) = rc.parked.take() {
            match ctx.runtime.queues[shard].try_push(job, ctx.worker) {
                Ok(()) => {
                    ctx.runtime.routed[shard].fetch_add(1, Ordering::Relaxed);
                    rc.in_flight = true;
                    progressed = true;
                }
                Err(job) => {
                    rc.parked = Some((shard, job));
                    return progressed;
                }
            }
        }
        if rc.in_flight || rc.conn.backlogged() {
            return progressed;
        }
        if let Some(item) = rc.pending.pop_front() {
            progressed = true;
            match item {
                PendingItem::Req { op, fields } => {
                    dispatch_request(ctx, rc, slot, op, fields, saw_shutdown);
                }
                PendingItem::BadReq { bytes } => rc.conn.wbuf.extend_from_slice(&bytes),
                PendingItem::Poison { bytes } => rc.conn.wbuf.extend_from_slice(&bytes),
            }
            continue;
        }
        if !extract_one(ctx, rc) {
            return progressed;
        }
        progressed = true;
    }
}

/// Routes one request: `stats`/`shutdown` are answered inline by the
/// router (they concern the whole server, not one shard); everything
/// else is homed to its shard by [`routing_shard`].
fn dispatch_request(
    ctx: &RouterCtx<'_>,
    rc: &mut RouterConn,
    slot: usize,
    op: Option<&'static str>,
    fields: Vec<(String, Value)>,
    saw_shutdown: &mut bool,
) {
    let binary = matches!(rc.conn.mode, WireMode::Binary);
    let op_name = op.unwrap_or_else(|| {
        match minijson::get(&fields, "op").and_then(Value::as_str) {
            Some("stats") => "stats",
            Some("shutdown") => "shutdown",
            // Routed ops keep their own name via the fields; only the
            // two inline ops need resolving here.
            _ => "routed",
        }
    });
    match op_name {
        "shutdown" => {
            ctx.global.request_shutdown();
            let mut j = JsonBuilder::new();
            begin_envelope(&mut j, &fields);
            j.raw_field("ok", "true");
            j.raw_field("bye", "true");
            let response = j.finish();
            encode_response(binary, &response, &mut rc.conn.wbuf);
            // Requests after a shutdown go unanswered, exactly like the
            // single-engine loop leaves later lines unread.
            rc.pending.clear();
            rc.conn.rpos = rc.conn.rbuf.len();
            *saw_shutdown = true;
        }
        "stats" => {
            let response = merged_stats(ctx.runtime, ctx.global, &fields);
            encode_response(binary, &response, &mut rc.conn.wbuf);
        }
        _ => {
            let graph = minijson::get(&fields, "graph").and_then(Value::as_str);
            let file = minijson::get(&fields, "file").and_then(Value::as_str);
            let shard = routing_shard(graph, file, ctx.runtime.engines.len());
            let job = ShardJob {
                worker: ctx.worker,
                slot,
                gen: rc.gen,
                fields,
                op,
                binary,
            };
            match ctx.runtime.queues[shard].try_push(job, ctx.worker) {
                Ok(()) => {
                    ctx.runtime.routed[shard].fetch_add(1, Ordering::Relaxed);
                    rc.in_flight = true;
                }
                Err(job) => rc.parked = Some((shard, job)),
            }
        }
    }
}

/// Starts a response envelope with the request's echoed `id`, exactly
/// like [`handle_fields`].
fn begin_envelope(j: &mut JsonBuilder, fields: &[(String, Value)]) {
    match minijson::get(fields, "id") {
        Some(v) => j.value_field("id", v),
        None => j.raw_field("id", "null"),
    }
}

/// Scatter/gathers every shard's counters into the single-engine
/// `stats` schema — same fields, same order, values summed, `named`
/// arrays concatenated in shard order — plus a trailing `"shards"`
/// breakdown array. The per-shard rows are the observable proof of
/// isolation: each shard's loads/queries/mutations moved only when
/// requests routed to it.
fn merged_stats(
    runtime: &ShardRuntime,
    metrics: &ServeMetrics,
    fields: &[(String, Value)],
) -> String {
    let mut loads = 0u64;
    let mut hits = 0u64;
    let mut stat_scans = 0u64;
    let mut evictions = 0u64;
    let mut graphs = 0usize;
    let mut result_hits = 0u64;
    let mut result_misses = 0u64;
    let mut result_insertions = 0u64;
    let mut result_evictions = 0u64;
    let mut result_entries = 0u64;
    let mut result_bytes = 0u64;
    let mut mutations = 0u64;
    let mut graphs_named = 0usize;
    let mut warm_hits = 0u64;
    let mut warm_fallbacks = 0u64;
    let mut incremental_hits = 0u64;
    let mut incremental_fallbacks = 0u64;
    let mut replayed_ops = 0u64;
    let mut dropped_tail_records = 0u64;
    let mut named: Vec<String> = Vec::new();
    let mut breakdown: Vec<String> = Vec::new();
    for (index, engine) in runtime.engines.iter().enumerate() {
        let stats = engine.catalog().stats();
        let results = engine.results().stats();
        let warm = engine.warm_stats();
        let inc = engine.incremental_stats();
        loads += stats.loads;
        hits += stats.hits;
        stat_scans += stats.stat_scans;
        evictions += stats.evictions;
        graphs += engine.catalog().len();
        result_hits += results.hits;
        result_misses += results.misses;
        result_insertions += results.insertions;
        result_evictions += results.evictions;
        result_entries += results.entries;
        result_bytes += results.bytes;
        mutations += engine.catalog().mutations();
        graphs_named += engine.catalog().named_len();
        warm_hits += warm.hits;
        warm_fallbacks += warm.fallbacks;
        incremental_hits += inc.hits;
        incremental_fallbacks += inc.fallbacks;
        let (shard_replayed, shard_dropped) = engine.catalog().recovery_counters();
        replayed_ops += shard_replayed;
        dropped_tail_records += shard_dropped;
        for g in engine.catalog().named_stats() {
            let mut item = JsonBuilder::new();
            item.str_field("name", &g.name);
            item.num_field("version", g.version as f64);
            item.num_field("nodes", g.nodes as f64);
            item.num_field("edges", g.edges as f64);
            item.num_field("delta_edges", g.delta_edges as f64);
            item.num_field("compactions", g.compactions as f64);
            item.num_field("warm_hits", g.warm_hits as f64);
            item.num_field("warm_fallbacks", g.warm_fallbacks as f64);
            item.num_field("incremental_hits", g.incremental_hits as f64);
            item.num_field("incremental_fallbacks", g.incremental_fallbacks as f64);
            item.num_field("wal_bytes", g.wal_bytes as f64);
            item.num_field("snapshot_version", g.snapshot_version as f64);
            item.num_field("last_fsync", g.last_fsync as f64);
            item.num_field("replayed_ops", g.replayed_ops as f64);
            item.num_field("dropped_tail_records", g.dropped_tail_records as f64);
            named.push(item.finish());
        }
        let (shard_queries, shard_mutations, shard_errors) =
            runtime.shard_metrics[index].op_counts();
        let mut row = JsonBuilder::new();
        row.num_field("shard", index as f64);
        row.num_field(
            "routed",
            runtime.routed[index].load(Ordering::Relaxed) as f64,
        );
        row.num_field("queries", shard_queries as f64);
        row.num_field("mutations", shard_mutations as f64);
        row.num_field("errors", shard_errors as f64);
        row.num_field("loads", stats.loads as f64);
        row.num_field("graphs", engine.catalog().len() as f64);
        row.num_field("graphs_named", engine.catalog().named_len() as f64);
        breakdown.push(row.finish());
    }
    let mut j = JsonBuilder::new();
    begin_envelope(&mut j, fields);
    j.raw_field("ok", "true");
    j.num_field("loads", loads as f64);
    j.num_field("hits", hits as f64);
    j.num_field("stat_scans", stat_scans as f64);
    j.num_field("evictions", evictions as f64);
    j.num_field("graphs", graphs as f64);
    j.num_field("result_hits", result_hits as f64);
    j.num_field("result_misses", result_misses as f64);
    j.num_field("result_insertions", result_insertions as f64);
    j.num_field("result_evictions", result_evictions as f64);
    j.num_field("result_entries", result_entries as f64);
    j.num_field("result_bytes", result_bytes as f64);
    j.num_field("conn_active", metrics.active_connections() as f64);
    j.num_field("conn_peak", metrics.peak_connections() as f64);
    j.num_field("mutations", mutations as f64);
    j.num_field("graphs_named", graphs_named as f64);
    j.num_field("warm_hits", warm_hits as f64);
    j.num_field("warm_fallbacks", warm_fallbacks as f64);
    j.num_field("incremental_hits", incremental_hits as f64);
    j.num_field("incremental_fallbacks", incremental_fallbacks as f64);
    j.num_field("replayed_ops", replayed_ops as f64);
    j.num_field("dropped_tail_records", dropped_tail_records as f64);
    if !named.is_empty() {
        j.raw_field("named", &format!("[{}]", named.join(",")));
    }
    j.raw_field("shards", &format!("[{}]", breakdown.join(",")));
    j.finish()
}

/// Extracts one unit of input from the read buffer into `pending`:
/// one JSONL line, one binary frame (a batch frame queues all its
/// items at once — they were sent together). Returns `false` when
/// nothing complete is buffered.
fn extract_one(ctx: &RouterCtx<'_>, rc: &mut RouterConn) -> bool {
    if rc.conn.rpos >= rc.conn.rbuf.len() {
        if rc.conn.rpos > 0 {
            rc.conn.rbuf.clear();
            rc.conn.rpos = 0;
        }
        return false;
    }
    if matches!(rc.conn.mode, WireMode::Undetected) {
        rc.conn.mode = if rc.conn.rbuf[rc.conn.rpos] == crate::frame::MAGIC {
            WireMode::Binary
        } else {
            WireMode::Jsonl
        };
    }
    let handled = if matches!(rc.conn.mode, WireMode::Binary) {
        extract_frame(ctx, rc)
    } else {
        extract_jsonl(ctx, rc)
    };
    if handled && rc.conn.rpos >= READ_CHUNK {
        rc.conn.rbuf.drain(..rc.conn.rpos);
        rc.conn.rpos = 0;
    }
    handled
}

/// Queues one JSONL request (or its parse-error reply), if a complete
/// line is buffered.
fn extract_jsonl(ctx: &RouterCtx<'_>, rc: &mut RouterConn) -> bool {
    let conn = &mut rc.conn;
    let Some(nl) = conn.rbuf[conn.rpos..].iter().position(|&b| b == b'\n') else {
        return false;
    };
    let start = conn.rpos;
    conn.rpos = start + nl + 1;
    let raw = &conn.rbuf[start..start + nl];
    let lossy;
    let text = match std::str::from_utf8(raw) {
        Ok(text) => text,
        Err(_) => {
            lossy = String::from_utf8_lossy(raw).into_owned();
            &lossy
        }
    };
    if text.trim().is_empty() {
        return true;
    }
    match minijson::parse_object(text) {
        Ok(fields) => rc.pending.push_back(PendingItem::Req { op: None, fields }),
        Err(e) => {
            ctx.global.record_error();
            let mut bytes = Vec::new();
            encode_response(false, &error_response("null", &e.to_string()), &mut bytes);
            rc.pending.push_back(PendingItem::BadReq { bytes });
        }
    }
    true
}

/// Queues one binary frame's request(s), if a complete frame is
/// buffered. Framing damage poisons the connection: its reply is
/// queued (order preserved behind earlier requests) and the remaining
/// input is discarded now.
fn extract_frame(ctx: &RouterCtx<'_>, rc: &mut RouterConn) -> bool {
    use crate::frame::{self, FrameError, Opcode};

    let conn = &mut rc.conn;
    let decoded = match frame::decode_frame(&conn.rbuf[conn.rpos..], frame::DEFAULT_MAX_FRAME) {
        Ok(None) => return false,
        Ok(Some(decoded)) => decoded,
        Err(e) => {
            poison(ctx, rc, &e.to_string());
            return true;
        }
    };
    let (opcode, payload, consumed) = decoded;
    let mut scratch = minijson::FieldScratch::new();
    let mut items: Vec<PendingItem> = Vec::new();
    let mut damage: Option<String> = None;
    match opcode {
        Opcode::Reply => {
            damage = Some(FrameError::Misplaced("a client must not send reply frames").to_string());
        }
        Opcode::Batch => {
            for item in frame::batch_items(payload) {
                match item {
                    Ok((op, body)) => items.push(decode_item(ctx, op, body, &mut scratch)),
                    Err(e) => {
                        damage = Some(e.to_string());
                        break;
                    }
                }
            }
        }
        op => items.push(decode_item(ctx, op, payload, &mut scratch)),
    }
    conn.rpos += consumed;
    rc.pending.extend(items);
    if let Some(message) = damage {
        poison(ctx, rc, &message);
    }
    true
}

/// Decodes one binary request payload into a pending item — a routed
/// request, or its per-request typed error (frame boundary intact, so
/// the stream stays synchronized).
fn decode_item(
    ctx: &RouterCtx<'_>,
    opcode: crate::frame::Opcode,
    payload: &[u8],
    scratch: &mut minijson::FieldScratch,
) -> PendingItem {
    match crate::frame::decode_request_payload(payload, scratch) {
        Ok(()) => PendingItem::Req {
            op: Some(opcode.op_name()),
            fields: scratch.fields().to_vec(),
        },
        Err(e) => {
            ctx.global.record_error();
            let mut bytes = Vec::new();
            crate::frame::encode_reply(&error_response("null", &e.to_string()), &mut bytes);
            PendingItem::BadReq { bytes }
        }
    }
}

/// Frame-level damage: queue one typed error reply (ordered behind
/// earlier requests), discard all remaining input, and let the
/// connection close once everything queued has drained.
fn poison(ctx: &RouterCtx<'_>, rc: &mut RouterConn, message: &str) {
    ctx.global.record_error();
    let mut bytes = Vec::new();
    crate::frame::encode_reply(&error_response("null", message), &mut bytes);
    rc.pending.push_back(PendingItem::Poison { bytes });
    rc.conn.rpos = rc.conn.rbuf.len();
    rc.conn.eof = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::path::{Path, PathBuf};
    use std::time::Duration;

    fn sock_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dsg_shard_{name}_{}.sock", std::process::id()))
    }

    fn fixture(name: &str, content: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("dsg_shard_{name}_{}", std::process::id()));
        std::fs::write(&path, content).expect("fixture write");
        path
    }

    fn connect_retry(path: &Path) -> UnixStream {
        for _ in 0..200 {
            if let Ok(stream) = UnixStream::connect(path) {
                return stream;
            }
            // Test-only: wait for the router thread to bind its socket.
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("server socket {} never came up", path.display());
    }

    fn spawn_server(sock: PathBuf, options: ServeOptions) -> std::thread::JoinHandle<ServeSummary> {
        std::thread::spawn(move || {
            let engine = Engine::new();
            crate::serve::serve_unix(&engine, &ResourcePolicy::default(), &sock, &options)
                .expect("serve_unix failed")
        })
    }

    /// Sends every request line, then reads exactly `expect` response
    /// lines.
    fn exchange(stream: &mut UnixStream, requests: &str, expect: usize) -> Vec<String> {
        stream.write_all(requests.as_bytes()).expect("send");
        read_lines(stream, expect)
    }

    fn read_lines(stream: &mut UnixStream, expect: usize) -> Vec<String> {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        (0..expect)
            .map(|_| {
                let mut line = String::new();
                assert!(reader.read_line(&mut line).expect("read") > 0, "early EOF");
                line.trim_end().to_string()
            })
            .collect()
    }

    /// `None` (timeout) when the server sent nothing within `wait`.
    fn try_read_line(stream: &UnixStream, wait: Duration) -> Option<String> {
        stream.set_read_timeout(Some(wait)).expect("timeout");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        let got = match reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                None
            }
            Err(e) => panic!("read failed: {e}"),
        };
        stream.set_read_timeout(None).expect("timeout");
        got
    }

    /// Drops `"key":<value>` (with its leading comma) from a response
    /// line — for the two run-dependent fields, `elapsed_ms` and the
    /// per-engine `loads` counter.
    fn strip_field(line: &str, key: &str) -> String {
        let pat = format!(",\"{key}\":");
        match line.find(&pat) {
            None => line.to_string(),
            Some(start) => {
                let rest = &line[start + pat.len()..];
                let end = rest.find([',', '}']).expect("unterminated field");
                format!("{}{}", &line[..start], &rest[end..])
            }
        }
    }

    fn strip_run_dependent(line: &str) -> String {
        strip_field(&strip_field(line, "elapsed_ms"), "loads")
    }

    #[test]
    fn routing_is_deterministic_and_tagged() {
        // Precomputed FNV-1a values: h("g:alpha") = 13295628215524255688,
        // h("g:beta") = 25966380842540422, h("f:/tmp/a.txt") =
        // 587426745370860717, h("f:g:alpha") = 344651217429707284.
        // A restart (or another process) recomputes the same hash — the
        // function is pure, which is the whole determinism story.
        assert_eq!(routing_shard(Some("alpha"), None, 2), 0);
        assert_eq!(routing_shard(Some("alpha"), None, 4), 0);
        assert_eq!(routing_shard(Some("alpha"), None, 8), 0);
        assert_eq!(routing_shard(Some("beta"), None, 4), 2);
        assert_eq!(routing_shard(Some("beta"), None, 8), 6);
        assert_eq!(routing_shard(None, Some("/tmp/a.txt"), 2), 1);
        assert_eq!(routing_shard(None, Some("/tmp/a.txt"), 8), 5);
        // The graph name wins when both identities are present (the
        // serve layer rejects that request anyway; routing must still
        // be total), and the g:/f: tags keep a file named like a
        // session graph on its own routing key.
        assert_eq!(
            routing_shard(Some("alpha"), Some("/tmp/a.txt"), 8),
            routing_shard(Some("alpha"), None, 8)
        );
        assert_eq!(routing_shard(None, Some("g:alpha"), 8), 4);
        // Identity-free requests (and the degenerate shard counts)
        // pin to shard 0.
        assert_eq!(routing_shard(None, None, 8), 0);
        assert_eq!(routing_shard(Some("anything"), None, 1), 0);
        assert_eq!(routing_shard(Some("anything"), None, 0), 0);
    }

    #[test]
    fn sharded_transcript_is_byte_identical_to_single_shard() {
        let a = fixture("parity_a.txt", "0 1\n0 2\n1 2\n2 3\n");
        let b = fixture("parity_b.txt", "0 1\n1 2\n2 3\n3 4\n4 0\n");
        let requests = format!(
            concat!(
                "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{a}\"}}\n",
                "{{\"id\":2,\"algorithm\":\"charikar\",\"file\":\"{a}\"}}\n",
                "{{\"id\":3,\"algorithm\":\"approx\",\"file\":\"{b}\"}}\n",
                "{{\"id\":4,\"algorithm\":\"approx\",\"file\":\"{a}\"}}\n",
                "{{\"id\":5,\"op\":\"create_graph\",\"graph\":\"pg\",\"edges\":\"0 1, 1 2, 0 2\"}}\n",
                "{{\"id\":6,\"algorithm\":\"approx\",\"graph\":\"pg\"}}\n",
                "{{\"id\":7,\"op\":\"add_edges\",\"graph\":\"pg\",\"edges\":\"2 3\"}}\n",
                "{{\"id\":8,\"algorithm\":\"approx\",\"graph\":\"pg\"}}\n",
                "{{\"id\":9,\"op\":\"shutdown\"}}\n",
            ),
            a = a.display(),
            b = b.display(),
        );
        let mut transcripts = Vec::new();
        for shards in [1usize, 4] {
            let sock = sock_path(&format!("parity{shards}"));
            let server = spawn_server(
                sock.clone(),
                ServeOptions {
                    workers: 2,
                    max_connections: 8,
                    shards,
                    ..ServeOptions::default()
                },
            );
            let mut conn = connect_retry(&sock);
            let lines = exchange(&mut conn, &requests, 9);
            server.join().expect("server panicked");
            transcripts.push(
                lines
                    .iter()
                    .map(|l| strip_run_dependent(l))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(
            transcripts[0], transcripts[1],
            "4-shard responses must be byte-identical to 1-shard (minus elapsed_ms/loads)"
        );
        // And they carried real results, not errors.
        assert!(transcripts[0].iter().all(|l| l.contains("\"ok\":true")));
    }

    #[test]
    fn binary_and_batched_requests_flow_through_the_router() {
        let a = fixture("bin_a.txt", "0 1\n0 2\n1 2\n");
        let sock = sock_path("binary");
        let server = spawn_server(
            sock.clone(),
            ServeOptions {
                workers: 2,
                max_connections: 8,
                shards: 2,
                ..ServeOptions::default()
            },
        );
        connect_retry(&sock);
        let mut requests = String::new();
        for id in 1..=6 {
            requests.push_str(&format!(
                "{{\"id\":{id},\"algorithm\":\"approx\",\"file\":\"{}\"}}\n",
                a.display()
            ));
        }
        requests.push_str("{\"id\":7,\"op\":\"stats\"}\n");
        requests.push_str("{\"id\":8,\"op\":\"shutdown\"}\n");
        let mut out = Vec::new();
        let stats = crate::serve::client_unix_opts(
            &sock,
            std::io::Cursor::new(requests),
            &mut out,
            &crate::serve::ClientOptions {
                binary: true,
                pipeline: 4,
            },
        )
        .expect("binary client failed");
        server.join().expect("server panicked");
        assert_eq!(stats.exchanges, 8);
        let lines: Vec<&str> = std::str::from_utf8(&out).expect("utf8").lines().collect();
        assert_eq!(lines.len(), 8);
        // Replies in request order, all ok, stats merged from 2 shards.
        for (index, line) in lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"id\":{}", index + 1)),
                "out of order: {line}"
            );
            assert!(line.contains("\"ok\":true"), "not ok: {line}");
        }
        assert!(lines[6].contains("\"shards\":[{\"shard\":0,"));
    }

    #[test]
    fn stats_merge_sums_shards_and_keeps_the_flat_field_order() {
        let sock = sock_path("stats");
        let server = spawn_server(
            sock.clone(),
            ServeOptions {
                workers: 2,
                max_connections: 8,
                shards: 2,
                ..ServeOptions::default()
            },
        );
        let mut conn = connect_retry(&sock);
        // "a" routes to shard 1 and "b" to shard 0 of 2 (FNV-1a above),
        // so this session exercises both engines.
        assert_eq!(routing_shard(Some("a"), None, 2), 1);
        assert_eq!(routing_shard(Some("b"), None, 2), 0);
        let lines = exchange(
            &mut conn,
            concat!(
                "{\"id\":1,\"op\":\"create_graph\",\"graph\":\"a\",\"edges\":\"0 1, 1 2\"}\n",
                "{\"id\":2,\"op\":\"create_graph\",\"graph\":\"b\",\"edges\":\"0 1\"}\n",
                "{\"id\":3,\"op\":\"add_edges\",\"graph\":\"a\",\"edges\":\"2 0\"}\n",
                "{\"id\":4,\"algorithm\":\"approx\",\"graph\":\"a\"}\n",
                "{\"id\":5,\"algorithm\":\"approx\",\"graph\":\"b\"}\n",
                "{\"id\":6,\"op\":\"stats\"}\n",
                "{\"id\":7,\"op\":\"shutdown\"}\n",
            ),
            7,
        );
        server.join().expect("server panicked");
        let stats = &lines[5];
        // Counters summed across both engines.
        assert!(stats.contains("\"graphs_named\":2"), "{stats}");
        assert!(stats.contains("\"mutations\":1"), "{stats}");
        assert!(stats.contains("\"result_misses\":2"), "{stats}");
        // Named arrays concatenated in shard order: b (shard 0) first.
        let named_b = stats.find("\"name\":\"b\"").expect("named b");
        let named_a = stats.find("\"name\":\"a\"").expect("named a");
        assert!(named_b < named_a, "{stats}");
        // Per-shard breakdown proves the routing split: shard 0 ran b's
        // create + query, shard 1 ran a's create + add + query.
        assert!(
            stats.contains("{\"shard\":0,\"routed\":2,\"queries\":1,\"mutations\":1,\"errors\":0,"),
            "{stats}"
        );
        assert!(
            stats.contains("{\"shard\":1,\"routed\":3,\"queries\":1,\"mutations\":2,\"errors\":0,"),
            "{stats}"
        );
        // The flat prefix keeps the exact single-engine field order, so
        // existing stats consumers parse a sharded server unchanged.
        let order = [
            "\"ok\":",
            "\"loads\":",
            "\"hits\":",
            "\"stat_scans\":",
            "\"evictions\":",
            "\"graphs\":",
            "\"result_hits\":",
            "\"result_misses\":",
            "\"result_insertions\":",
            "\"result_evictions\":",
            "\"result_entries\":",
            "\"result_bytes\":",
            "\"conn_active\":",
            "\"conn_peak\":",
            "\"mutations\":",
            "\"graphs_named\":",
            "\"warm_hits\":",
            "\"warm_fallbacks\":",
            "\"incremental_hits\":",
            "\"incremental_fallbacks\":",
            "\"replayed_ops\":",
            "\"dropped_tail_records\":",
            "\"named\":",
            "\"shards\":",
        ];
        let mut last = 0usize;
        for key in order {
            let at = stats
                .find(key)
                .unwrap_or_else(|| panic!("missing {key} in {stats}"));
            assert!(at > last, "field {key} out of order in {stats}");
            last = at;
        }
    }

    /// Test harness around [`run_router`] directly: tiny queue caps and
    /// the per-shard [`HoldGate`]s are only reachable this way.
    fn with_held_router<F: FnOnce(&ShardRuntime, &Path)>(name: &str, queue_cap: usize, body: F) {
        let sock = sock_path(name);
        let _ = std::fs::remove_file(&sock);
        let listener = UnixListener::bind(&sock).expect("bind");
        let template = Engine::new();
        let options = ServeOptions {
            workers: 1,
            max_connections: 8,
            shards: 2,
            ..ServeOptions::default()
        };
        let runtime = ShardRuntime::new(&template, &options, queue_cap).expect("shard runtime");
        let policy = ResourcePolicy::default();
        let metrics = ServeMetrics::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                run_router(&runtime, &policy, &listener, &options, &metrics).expect("router failed")
            });
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&runtime, &sock)));
            if let Err(panic) = result {
                // A failed body never reached its shutdown op; without
                // one the scope join below waits on the accept loop
                // forever and the captured assertion message is never
                // shown — the failure presents as a silent hang. Release
                // every brake, stop the router, then re-panic.
                for shard in 0..runtime.holds.len() {
                    runtime.hold(shard).release();
                }
                let mut conn = connect_retry(&sock);
                let _ = conn.write_all(b"{\"op\":\"shutdown\"}\n");
                let _ = try_read_line(&conn, Duration::from_secs(5));
                std::panic::resume_unwind(panic);
            }
        });
        let _ = std::fs::remove_file(&sock);
    }

    #[test]
    fn mutations_behind_queue_backpressure_keep_their_order() {
        // Queue cap 1: conn1's job fills shard 1's queue, conn2's job
        // for the same shard bounces and parks. The mutation and query
        // pipelined behind it must still apply in order once the shard
        // drains.
        with_held_router("backpressure", 1, |runtime, sock| {
            assert_eq!(routing_shard(Some("a"), None, 2), 1);
            assert_eq!(routing_shard(Some("c"), None, 2), 1);
            runtime.hold(1).hold();
            let mut conn1 = connect_retry(sock);
            conn1
                .write_all(
                    b"{\"id\":11,\"op\":\"create_graph\",\"graph\":\"a\",\"edges\":\"0 1\"}\n",
                )
                .expect("send");
            // Test-only: give the router time to enqueue conn1's job
            // (fills the cap).
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(Duration::from_millis(100));
            let mut conn2 = connect_retry(sock);
            conn2
                .write_all(
                    concat!(
                        "{\"id\":21,\"op\":\"create_graph\",\"graph\":\"c\",\"edges\":\"0 1\"}\n",
                        "{\"id\":22,\"op\":\"add_edges\",\"graph\":\"c\",\"edges\":\"1 2\"}\n",
                        "{\"id\":23,\"algorithm\":\"charikar\",\"graph\":\"c\"}\n",
                    )
                    .as_bytes(),
                )
                .expect("send");
            // Held shard: nobody gets an answer.
            assert_eq!(try_read_line(&conn2, Duration::from_millis(200)), None);
            runtime.hold(1).release();
            let replies1 = read_lines(&mut conn1, 1);
            assert!(
                replies1[0].starts_with("{\"id\":11,\"ok\":true"),
                "{}",
                replies1[0]
            );
            let replies2 = read_lines(&mut conn2, 3);
            assert!(
                replies2[0].starts_with("{\"id\":21,\"ok\":true"),
                "{}",
                replies2[0]
            );
            assert!(
                replies2[1].starts_with("{\"id\":22,\"ok\":true"),
                "{}",
                replies2[1]
            );
            // The query ran after the mutation it was pipelined behind:
            // it sees all 3 nodes of the mutated graph.
            assert!(
                replies2[2].starts_with("{\"id\":23,\"ok\":true"),
                "{}",
                replies2[2]
            );
            assert!(replies2[2].contains("\"graph_nodes\":3"), "{}", replies2[2]);
            exchange(&mut conn1, "{\"op\":\"shutdown\"}\n", 1);
        });
    }

    #[test]
    fn a_saturated_shard_never_stalls_the_other() {
        with_held_router("barrier", 4, |runtime, sock| {
            assert_eq!(routing_shard(Some("a"), None, 2), 1);
            assert_eq!(routing_shard(Some("b"), None, 2), 0);
            runtime.hold(1).hold();
            let mut conn1 = connect_retry(sock);
            conn1
                .write_all(
                    b"{\"id\":1,\"op\":\"create_graph\",\"graph\":\"a\",\"edges\":\"0 1\"}\n",
                )
                .expect("send");
            // Shard 1 is saturated (its whole executor pool is parked),
            // yet shard 0 answers a different connection immediately —
            // the isolation barrier the shard layer exists for.
            let mut conn2 = connect_retry(sock);
            let replies = exchange(
                &mut conn2,
                "{\"id\":2,\"op\":\"create_graph\",\"graph\":\"b\",\"edges\":\"0 1\"}\n",
                1,
            );
            assert!(
                replies[0].starts_with("{\"id\":2,\"ok\":true"),
                "{}",
                replies[0]
            );
            // conn1 is still waiting on the held shard...
            assert_eq!(try_read_line(&conn1, Duration::from_millis(200)), None);
            runtime.hold(1).release();
            // ...and completes once it drains.
            let replies = read_lines(&mut conn1, 1);
            assert!(
                replies[0].starts_with("{\"id\":1,\"ok\":true"),
                "{}",
                replies[0]
            );
            exchange(&mut conn2, "{\"op\":\"shutdown\"}\n", 1);
        });
    }
}
