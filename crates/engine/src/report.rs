//! The unified [`Report`]: one result shape for every algorithm and
//! backend, replacing the JSON-summary code that was duplicated across
//! the CLI's six algorithm branches.
//!
//! A report carries the raw algorithm result ([`Outcome`]), the plan
//! that produced it, and the cross-cutting accounting (graph size,
//! streaming state bytes, sketch words, shuffle bytes, elapsed time).
//! [`Report::json_object`] renders the one-line machine-readable
//! summary; field names and order match what the pre-engine CLI
//! printed, with the plan (`backend`, `plan`) added after the graph
//! counts.

use dsg_core::charikar::CharikarResult;
use dsg_core::enumerate::Community;
use dsg_core::result::UndirectedRun;
use dsg_core::SweepResult;
use dsg_flow::{ExactDensest, FlowBackend};
use dsg_graph::NodeSet;
use dsg_mapreduce::MrUndirectedResult;

use crate::planner::Plan;
use crate::query::{Algorithm, Query};

/// The raw algorithm result inside a [`Report`].
#[derive(Clone, Debug)]
pub enum Outcome {
    /// An Algorithm 1/2 run (any streaming/CSR/sketched backend).
    Run(UndirectedRun),
    /// An Algorithm 3 `c`-sweep.
    Sweep(SweepResult),
    /// Charikar's greedy peel.
    Charikar(CharikarResult),
    /// The Goldberg max-flow optimum.
    Exact(ExactDensest),
    /// Node-disjoint dense communities.
    Communities(Vec<Community>),
    /// The §5.2 MapReduce driver's result.
    MapReduce(MrUndirectedResult),
}

/// Shuffle accounting of a MapReduce-backed run (summed over rounds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Encoded bytes of every shuffled record.
    pub shuffle_bytes: u64,
    /// Bytes written to spilled disk runs.
    pub spilled_bytes: u64,
    /// Number of sorted runs spilled.
    pub spill_runs: u64,
}

/// The unified result of [`crate::Engine::execute`].
#[derive(Clone, Debug)]
pub struct Report {
    /// The query that ran.
    pub query: Query,
    /// Report label of the source (file path or memory label).
    pub source_label: String,
    /// Nodes in the graph as presented to the algorithm.
    pub graph_nodes: u64,
    /// Edges in the graph as presented to the algorithm.
    pub graph_edges: u64,
    /// The plan that was executed.
    pub plan: Plan,
    /// The algorithm's result.
    pub outcome: Outcome,
    /// Worker-thread count the run used (1 for streamed runs).
    pub threads: usize,
    /// `(sketch_words, exact_words)` for sketched runs.
    pub sketch_words: Option<(u64, u64)>,
    /// Peak O(n) streaming-state bytes for out-of-core runs.
    pub state_bytes: Option<u64>,
    /// Shuffle accounting for MapReduce-backed runs.
    pub shuffle: Option<ShuffleStats>,
    /// `Some(true)` when the graph came from the catalog cache,
    /// `Some(false)` on a fresh load, `None` when no materialized graph
    /// was involved (streamed runs, memory sources).
    pub cache_hit: Option<bool>,
    /// `Some(true)` when the whole report was replayed from the result
    /// cache, `Some(false)` on a computed (and now cached) run, `None`
    /// for runs the result cache does not cover (streamed runs, memory
    /// sources).
    pub result_cache_hit: Option<bool>,
    /// Wall-clock milliseconds of planning + execution.
    pub elapsed_ms: f64,
    /// Memoized `json_object(false)` rendering. Shared across clones:
    /// the result cache's replays of one report all reuse the first
    /// rendering instead of re-walking the outcome per request (the
    /// stable rendering excludes every per-request field, so sharing is
    /// sound even while `cache_hit`/`elapsed_ms` are patched per
    /// replay).
    pub(crate) rendered: std::sync::Arc<std::sync::OnceLock<String>>,
}

impl Report {
    /// Best density found.
    pub fn density(&self) -> f64 {
        match &self.outcome {
            Outcome::Run(r) => r.best_density,
            Outcome::Sweep(s) => s.best.best_density,
            Outcome::Charikar(r) => r.best_density,
            Outcome::Exact(r) => r.density,
            Outcome::Communities(c) => c.first().map_or(0.0, |c| c.density),
            Outcome::MapReduce(r) => r.best_density,
        }
    }

    /// Size of the best node set (|S| + |T| for directed, nodes of the
    /// densest community for enumerate).
    pub fn node_count(&self) -> usize {
        match &self.outcome {
            Outcome::Run(r) => r.best_set.len(),
            Outcome::Sweep(s) => s.best.best_s.len() + s.best.best_t.len(),
            Outcome::Charikar(r) => r.best_set.len(),
            Outcome::Exact(r) => r.set.len(),
            Outcome::Communities(c) => c.first().map_or(0, |c| c.nodes.len()),
            Outcome::MapReduce(r) => r.best_set.len(),
        }
    }

    /// Passes over the edge set, where the notion applies.
    pub fn passes(&self) -> Option<u32> {
        match &self.outcome {
            Outcome::Run(r) => Some(r.passes),
            Outcome::Sweep(s) => Some(s.best.passes),
            Outcome::MapReduce(r) => Some(r.passes),
            Outcome::Charikar(_) | Outcome::Exact(_) | Outcome::Communities(_) => None,
        }
    }

    /// The best undirected node set, where the notion applies.
    pub fn best_set(&self) -> Option<&NodeSet> {
        match &self.outcome {
            Outcome::Run(r) => Some(&r.best_set),
            Outcome::Charikar(r) => Some(&r.best_set),
            Outcome::Exact(r) => Some(&r.set),
            Outcome::MapReduce(r) => Some(&r.best_set),
            Outcome::Sweep(_) | Outcome::Communities(_) => None,
        }
    }

    /// Renders the one-line JSON summary object, `{...}`. Elapsed time
    /// is the only nondeterministic field; the serve mode excludes it
    /// (`include_elapsed = false`) so repeated queries are byte-stable —
    /// and that stable rendering is memoized, so a result-cache replay
    /// serves the same `String` without re-walking the outcome.
    pub fn json_object(&self, include_elapsed: bool) -> String {
        if include_elapsed {
            return self.render_json(true);
        }
        self.json_str().to_string()
    }

    /// The memoized stable rendering (`json_object(false)`) as a
    /// borrow: the serve hot path embeds it into the response envelope
    /// without cloning the string first.
    pub fn json_str(&self) -> &str {
        self.rendered.get_or_init(|| self.render_json(false))
    }

    fn render_json(&self, include_elapsed: bool) -> String {
        let mut j = JsonBuilder::new();
        j.str_field("algorithm", self.query.algorithm.name());
        j.str_field("file", &self.source_label);
        j.num_field("graph_nodes", self.graph_nodes as f64);
        j.num_field("graph_edges", self.graph_edges as f64);
        j.str_field("backend", self.plan.backend.name());
        j.str_field("plan", &self.plan.reasons.join("; "));
        if let Some((words, _)) = self.sketch_words {
            j.num_field("sketch_words", words as f64);
        }
        match &self.query.algorithm {
            Algorithm::Approx { epsilon, .. } => {
                j.num_field("density", self.density());
                j.num_field("nodes", self.node_count() as f64);
                j.num_field("passes", self.passes().unwrap_or(0) as f64);
                j.num_field("epsilon", *epsilon);
                j.num_field("threads", self.threads as f64);
            }
            Algorithm::AtLeastK { k, epsilon } => {
                j.num_field("density", self.density());
                j.num_field("nodes", self.node_count() as f64);
                j.num_field("passes", self.passes().unwrap_or(0) as f64);
                j.num_field("k", *k as f64);
                j.num_field("epsilon", epsilon.max(1e-6));
                j.num_field("threads", self.threads as f64);
            }
            Algorithm::Directed { delta, epsilon } => {
                if let Outcome::Sweep(s) = &self.outcome {
                    j.num_field("density", s.best.best_density);
                    j.num_field("s_nodes", s.best.best_s.len() as f64);
                    j.num_field("t_nodes", s.best.best_t.len() as f64);
                    j.num_field("best_c", s.best.c);
                }
                j.num_field("delta", *delta);
                j.num_field("epsilon", *epsilon);
                j.num_field("threads", self.threads as f64);
            }
            Algorithm::Charikar => {
                j.num_field("density", self.density());
                j.num_field("nodes", self.node_count() as f64);
            }
            Algorithm::Exact { flow } => {
                j.num_field("density", self.density());
                j.num_field("nodes", self.node_count() as f64);
                if let Outcome::Exact(r) = &self.outcome {
                    j.num_field("flow_calls", r.flow_calls as f64);
                }
                j.str_field(
                    "flow_backend",
                    match flow {
                        FlowBackend::Dinic => "dinic",
                        FlowBackend::PushRelabel => "push-relabel",
                    },
                );
            }
            Algorithm::Enumerate { .. } => {
                if let Outcome::Communities(c) = &self.outcome {
                    j.num_field("communities", c.len() as f64);
                    j.num_field("top_density", c.first().map_or(0.0, |c| c.density));
                }
            }
        }
        if let Some(sh) = &self.shuffle {
            j.num_field("shuffle_bytes", sh.shuffle_bytes as f64);
            j.num_field("spilled_bytes", sh.spilled_bytes as f64);
            j.num_field("spill_runs", sh.spill_runs as f64);
        }
        if matches!(
            self.plan.backend,
            crate::planner::Backend::Streamed
                | crate::planner::Backend::Sketched { streamed: true, .. }
        ) {
            j.num_field("stream", 1.0);
            j.num_field("state_bytes", self.state_bytes.unwrap_or(0) as f64);
        }
        if include_elapsed {
            j.num_field("elapsed_ms", self.elapsed_ms);
        }
        j.finish()
    }
}

/// Assembles a one-line JSON object. Keys/values are emitted in
/// insertion order; only JSON-safe primitives are used. Fields append
/// into one growing buffer (no per-field allocations) — this builder
/// runs once per served request, so its churn is wire-path overhead.
pub struct JsonBuilder {
    buf: String,
}

impl JsonBuilder {
    /// An empty object. The buffer is pre-sized for a typical response
    /// envelope so steady-state rendering never reallocates mid-build.
    pub fn new() -> Self {
        let mut buf = String::with_capacity(384);
        buf.push('{');
        JsonBuilder { buf }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(key);
        self.buf.push_str("\":");
    }

    /// Adds an escaped string field.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        escape_json_into(value, &mut self.buf);
        self.buf.push('"');
    }

    /// Adds a numeric field (integers without a decimal point).
    pub fn num_field(&mut self, key: &str, value: f64) {
        self.key(key);
        render_num_into(value, &mut self.buf);
    }

    /// Adds a pre-rendered JSON value (nested object, echoed token).
    pub fn raw_field(&mut self, key: &str, raw: &str) {
        self.key(key);
        self.buf.push_str(raw);
    }

    /// Echoes a parsed request scalar back without rendering it to an
    /// intermediate string first (the serve path echoes the request
    /// `id` this way on every response).
    pub fn value_field(&mut self, key: &str, value: &crate::minijson::Value) {
        use crate::minijson::Value;
        self.key(key);
        match value {
            Value::Str(s) => {
                self.buf.push('"');
                escape_json_into(s, &mut self.buf);
                self.buf.push('"');
            }
            Value::Num(n) => render_num_into(*n, &mut self.buf),
            Value::Bool(b) => self.buf.push_str(if *b { "true" } else { "false" }),
            Value::Null => self.buf.push_str("null"),
        }
    }

    /// Renders `{...}`, consuming the builder (the accumulated buffer
    /// becomes the result — no final copy).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// JSON string escaping shared by the builder and the serve loop.
pub fn escape_json(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    escape_json_into(value, &mut escaped);
    escaped
}

/// [`escape_json`] appending into an existing buffer.
pub fn escape_json_into(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Number rendering of the JSON summary: integral values without a
/// decimal point, everything else via Rust's shortest-roundtrip float
/// formatting.
pub fn render_num(value: f64) -> String {
    let mut out = String::new();
    render_num_into(value, &mut out);
    out
}

/// [`render_num`] appending into an existing buffer.
pub fn render_num_into(value: f64, out: &mut String) {
    use std::fmt::Write;
    if value == value.trunc() && value.abs() < 1e15 {
        let _ = write!(out, "{value:.0}");
    } else {
        let _ = write!(out, "{value}");
    }
}
