//! The unified [`Report`]: one result shape for every algorithm and
//! backend, replacing the JSON-summary code that was duplicated across
//! the CLI's six algorithm branches.
//!
//! A report carries the raw algorithm result ([`Outcome`]), the plan
//! that produced it, and the cross-cutting accounting (graph size,
//! streaming state bytes, sketch words, shuffle bytes, elapsed time).
//! [`Report::json_object`] renders the one-line machine-readable
//! summary; field names and order match what the pre-engine CLI
//! printed, with the plan (`backend`, `plan`) added after the graph
//! counts.

use dsg_core::charikar::CharikarResult;
use dsg_core::enumerate::Community;
use dsg_core::result::UndirectedRun;
use dsg_core::SweepResult;
use dsg_flow::{ExactDensest, FlowBackend};
use dsg_graph::NodeSet;
use dsg_mapreduce::MrUndirectedResult;

use crate::planner::Plan;
use crate::query::{Algorithm, Query};

/// The raw algorithm result inside a [`Report`].
#[derive(Clone, Debug)]
pub enum Outcome {
    /// An Algorithm 1/2 run (any streaming/CSR/sketched backend).
    Run(UndirectedRun),
    /// An Algorithm 3 `c`-sweep.
    Sweep(SweepResult),
    /// Charikar's greedy peel.
    Charikar(CharikarResult),
    /// The Goldberg max-flow optimum.
    Exact(ExactDensest),
    /// Node-disjoint dense communities.
    Communities(Vec<Community>),
    /// The §5.2 MapReduce driver's result.
    MapReduce(MrUndirectedResult),
}

/// Shuffle accounting of a MapReduce-backed run (summed over rounds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Encoded bytes of every shuffled record.
    pub shuffle_bytes: u64,
    /// Bytes written to spilled disk runs.
    pub spilled_bytes: u64,
    /// Number of sorted runs spilled.
    pub spill_runs: u64,
}

/// The unified result of [`crate::Engine::execute`].
#[derive(Clone, Debug)]
pub struct Report {
    /// The query that ran.
    pub query: Query,
    /// Report label of the source (file path or memory label).
    pub source_label: String,
    /// Nodes in the graph as presented to the algorithm.
    pub graph_nodes: u64,
    /// Edges in the graph as presented to the algorithm.
    pub graph_edges: u64,
    /// The plan that was executed.
    pub plan: Plan,
    /// The algorithm's result.
    pub outcome: Outcome,
    /// Worker-thread count the run used (1 for streamed runs).
    pub threads: usize,
    /// `(sketch_words, exact_words)` for sketched runs.
    pub sketch_words: Option<(u64, u64)>,
    /// Peak O(n) streaming-state bytes for out-of-core runs.
    pub state_bytes: Option<u64>,
    /// Shuffle accounting for MapReduce-backed runs.
    pub shuffle: Option<ShuffleStats>,
    /// `Some(true)` when the graph came from the catalog cache,
    /// `Some(false)` on a fresh load, `None` when no materialized graph
    /// was involved (streamed runs, memory sources).
    pub cache_hit: Option<bool>,
    /// `Some(true)` when the whole report was replayed from the result
    /// cache, `Some(false)` on a computed (and now cached) run, `None`
    /// for runs the result cache does not cover (streamed runs, memory
    /// sources).
    pub result_cache_hit: Option<bool>,
    /// Wall-clock milliseconds of planning + execution.
    pub elapsed_ms: f64,
}

impl Report {
    /// Best density found.
    pub fn density(&self) -> f64 {
        match &self.outcome {
            Outcome::Run(r) => r.best_density,
            Outcome::Sweep(s) => s.best.best_density,
            Outcome::Charikar(r) => r.best_density,
            Outcome::Exact(r) => r.density,
            Outcome::Communities(c) => c.first().map_or(0.0, |c| c.density),
            Outcome::MapReduce(r) => r.best_density,
        }
    }

    /// Size of the best node set (|S| + |T| for directed, nodes of the
    /// densest community for enumerate).
    pub fn node_count(&self) -> usize {
        match &self.outcome {
            Outcome::Run(r) => r.best_set.len(),
            Outcome::Sweep(s) => s.best.best_s.len() + s.best.best_t.len(),
            Outcome::Charikar(r) => r.best_set.len(),
            Outcome::Exact(r) => r.set.len(),
            Outcome::Communities(c) => c.first().map_or(0, |c| c.nodes.len()),
            Outcome::MapReduce(r) => r.best_set.len(),
        }
    }

    /// Passes over the edge set, where the notion applies.
    pub fn passes(&self) -> Option<u32> {
        match &self.outcome {
            Outcome::Run(r) => Some(r.passes),
            Outcome::Sweep(s) => Some(s.best.passes),
            Outcome::MapReduce(r) => Some(r.passes),
            Outcome::Charikar(_) | Outcome::Exact(_) | Outcome::Communities(_) => None,
        }
    }

    /// The best undirected node set, where the notion applies.
    pub fn best_set(&self) -> Option<&NodeSet> {
        match &self.outcome {
            Outcome::Run(r) => Some(&r.best_set),
            Outcome::Charikar(r) => Some(&r.best_set),
            Outcome::Exact(r) => Some(&r.set),
            Outcome::MapReduce(r) => Some(&r.best_set),
            Outcome::Sweep(_) | Outcome::Communities(_) => None,
        }
    }

    /// Renders the one-line JSON summary object, `{...}`. Elapsed time
    /// is the only nondeterministic field; the serve mode excludes it
    /// (`include_elapsed = false`) so repeated queries are byte-stable.
    pub fn json_object(&self, include_elapsed: bool) -> String {
        let mut j = JsonBuilder::new();
        j.str_field("algorithm", self.query.algorithm.name());
        j.str_field("file", &self.source_label);
        j.num_field("graph_nodes", self.graph_nodes as f64);
        j.num_field("graph_edges", self.graph_edges as f64);
        j.str_field("backend", self.plan.backend.name());
        j.str_field("plan", &self.plan.reasons.join("; "));
        if let Some((words, _)) = self.sketch_words {
            j.num_field("sketch_words", words as f64);
        }
        match &self.query.algorithm {
            Algorithm::Approx { epsilon, .. } => {
                j.num_field("density", self.density());
                j.num_field("nodes", self.node_count() as f64);
                j.num_field("passes", self.passes().unwrap_or(0) as f64);
                j.num_field("epsilon", *epsilon);
                j.num_field("threads", self.threads as f64);
            }
            Algorithm::AtLeastK { k, epsilon } => {
                j.num_field("density", self.density());
                j.num_field("nodes", self.node_count() as f64);
                j.num_field("passes", self.passes().unwrap_or(0) as f64);
                j.num_field("k", *k as f64);
                j.num_field("epsilon", epsilon.max(1e-6));
                j.num_field("threads", self.threads as f64);
            }
            Algorithm::Directed { delta, epsilon } => {
                if let Outcome::Sweep(s) = &self.outcome {
                    j.num_field("density", s.best.best_density);
                    j.num_field("s_nodes", s.best.best_s.len() as f64);
                    j.num_field("t_nodes", s.best.best_t.len() as f64);
                    j.num_field("best_c", s.best.c);
                }
                j.num_field("delta", *delta);
                j.num_field("epsilon", *epsilon);
                j.num_field("threads", self.threads as f64);
            }
            Algorithm::Charikar => {
                j.num_field("density", self.density());
                j.num_field("nodes", self.node_count() as f64);
            }
            Algorithm::Exact { flow } => {
                j.num_field("density", self.density());
                j.num_field("nodes", self.node_count() as f64);
                if let Outcome::Exact(r) = &self.outcome {
                    j.num_field("flow_calls", r.flow_calls as f64);
                }
                j.str_field(
                    "flow_backend",
                    match flow {
                        FlowBackend::Dinic => "dinic",
                        FlowBackend::PushRelabel => "push-relabel",
                    },
                );
            }
            Algorithm::Enumerate { .. } => {
                if let Outcome::Communities(c) = &self.outcome {
                    j.num_field("communities", c.len() as f64);
                    j.num_field("top_density", c.first().map_or(0.0, |c| c.density));
                }
            }
        }
        if let Some(sh) = &self.shuffle {
            j.num_field("shuffle_bytes", sh.shuffle_bytes as f64);
            j.num_field("spilled_bytes", sh.spilled_bytes as f64);
            j.num_field("spill_runs", sh.spill_runs as f64);
        }
        if matches!(
            self.plan.backend,
            crate::planner::Backend::Streamed
                | crate::planner::Backend::Sketched { streamed: true, .. }
        ) {
            j.num_field("stream", 1.0);
            j.num_field("state_bytes", self.state_bytes.unwrap_or(0) as f64);
        }
        if include_elapsed {
            j.num_field("elapsed_ms", self.elapsed_ms);
        }
        j.finish()
    }
}

/// Assembles a one-line JSON object. Keys/values are emitted in
/// insertion order; only JSON-safe primitives are used.
pub struct JsonBuilder {
    fields: Vec<(String, String)>,
}

impl JsonBuilder {
    /// An empty object.
    pub fn new() -> Self {
        JsonBuilder { fields: Vec::new() }
    }

    /// Adds an escaped string field.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape_json(value))));
    }

    /// Adds a numeric field (integers without a decimal point).
    pub fn num_field(&mut self, key: &str, value: f64) {
        self.fields.push((key.to_string(), render_num(value)));
    }

    /// Adds a pre-rendered JSON value (nested object, echoed token).
    pub fn raw_field(&mut self, key: &str, raw: &str) {
        self.fields.push((key.to_string(), raw.to_string()));
    }

    /// Renders `{...}`.
    pub fn finish(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

impl Default for JsonBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// JSON string escaping shared by the builder and the serve loop.
pub fn escape_json(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped
}

/// Number rendering of the JSON summary: integral values without a
/// decimal point, everything else via Rust's shortest-roundtrip float
/// formatting.
pub fn render_num(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{value:.0}")
    } else {
        format!("{value}")
    }
}
