//! The declarative query surface: what to compute ([`Query`]), over what
//! ([`Source`]), and under which resource constraints ([`ResourcePolicy`]).
//!
//! A query names an algorithm and its parameters but **not** an execution
//! backend — picking in-memory vs parallel vs file-streamed vs sketched
//! (and in-RAM vs spill-to-disk shuffle) is the planner's job, driven by
//! the graph's size and the policy's memory budget. A caller that wants a
//! specific backend anyway (the CLI's `--stream`, a parity experiment)
//! sets [`Query::backend`] and the planner validates the request instead
//! of choosing.

use std::path::PathBuf;

use dsg_flow::FlowBackend;
use dsg_graph::{EdgeList, GraphKind};

/// The algorithm a query runs, with its parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// Algorithm 1 — undirected `(2+2ε)`-approximation. `sketch` replaces
    /// the exact degree oracle with a Count-Sketch of width `b` (§5.1).
    Approx {
        /// Approximation parameter ε (≥ 0).
        epsilon: f64,
        /// Count-Sketch width `b` (`t = 5` rows), if sketched.
        sketch: Option<u32>,
    },
    /// Algorithm 2 — densest subgraph with at least `k` nodes,
    /// `(3+3ε)`-approximation.
    AtLeastK {
        /// Size floor `k` (≥ 1).
        k: usize,
        /// Approximation parameter ε (clamped to ≥ 1e-6 at execution,
        /// exactly as the direct API requires).
        epsilon: f64,
    },
    /// Algorithm 3 — directed density with a `δ`-grid sweep over
    /// `c = |S|/|T|`.
    Directed {
        /// Grid resolution δ (> 1).
        delta: f64,
        /// Approximation parameter ε (≥ 0).
        epsilon: f64,
    },
    /// Charikar's exact greedy peeling (2-approximation, in-memory).
    Charikar,
    /// Goldberg max-flow optimum, with a selectable max-flow solver.
    Exact {
        /// Which max-flow solver backs the binary search.
        flow: FlowBackend,
    },
    /// Node-disjoint dense-community enumeration.
    Enumerate {
        /// ε of each extraction round.
        epsilon: f64,
        /// Stop below this density.
        min_density: f64,
        /// Stop after this many communities.
        max_communities: usize,
    },
}

impl Algorithm {
    /// The CLI / JSON name of the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Approx { .. } => "approx",
            Algorithm::AtLeastK { .. } => "atleast-k",
            Algorithm::Directed { .. } => "directed",
            Algorithm::Charikar => "charikar",
            Algorithm::Exact { .. } => "exact",
            Algorithm::Enumerate { .. } => "enumerate",
        }
    }

    /// Whether the algorithm can run over a multi-pass edge stream with
    /// O(n) state (the paper's semi-streaming model).
    pub fn streamable(&self) -> bool {
        matches!(self, Algorithm::Approx { .. } | Algorithm::AtLeastK { .. })
    }

    /// Whether a parallel CSR peeling backend exists for the algorithm.
    pub fn parallelizable(&self) -> bool {
        matches!(
            self,
            Algorithm::Approx { sketch: None, .. }
                | Algorithm::AtLeastK { .. }
                | Algorithm::Directed { .. }
        )
    }

    /// Whether the MapReduce driver of §5.2 realizes the algorithm.
    pub fn mapreducible(&self) -> bool {
        matches!(self, Algorithm::Approx { sketch: None, .. })
    }
}

/// An explicit backend request, bypassing the planner's choice (the
/// planner still validates it against the algorithm's capabilities).
/// `Hash` because the request is part of the result cache's canonical
/// query key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendRequest {
    /// Force the in-memory path (serial, or parallel if the policy has
    /// more than one thread and the algorithm parallelizes).
    InMemory,
    /// Force the parallel CSR peeling backend.
    Parallel,
    /// Force the out-of-core path: re-read the source per pass, O(n)
    /// state, the edge list never materialized.
    Streamed,
    /// Force the §5.2 MapReduce driver (shuffle placement is still
    /// planned from the budget).
    MapReduce,
}

impl BackendRequest {
    /// CLI spelling of the request (`--backend <value>`).
    pub fn parse(s: &str) -> Option<Option<BackendRequest>> {
        match s {
            "auto" => Some(None),
            "memory" => Some(Some(BackendRequest::InMemory)),
            "parallel" => Some(Some(BackendRequest::Parallel)),
            "stream" => Some(Some(BackendRequest::Streamed)),
            "mapreduce" => Some(Some(BackendRequest::MapReduce)),
            _ => None,
        }
    }
}

/// A densest-subgraph query: the algorithm plus an optional forced
/// backend. Everything else (backend choice, shuffle placement) is
/// derived by the planner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Query {
    /// What to compute.
    pub algorithm: Algorithm,
    /// Explicit backend request (`None` = let the planner choose).
    pub backend: Option<BackendRequest>,
}

impl Query {
    /// A query with planner-chosen backend.
    pub fn new(algorithm: Algorithm) -> Self {
        Query {
            algorithm,
            backend: None,
        }
    }
}

/// Resource constraints the planner must respect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourcePolicy {
    /// Peak working-set budget in bytes (`None` = unbounded: always plan
    /// the in-memory backend).
    pub memory_budget_bytes: Option<u64>,
    /// Worker threads available (1 = serial; > 1 enables the parallel
    /// CSR backend and sizes the MapReduce driver).
    pub threads: usize,
}

impl Default for ResourcePolicy {
    fn default() -> Self {
        ResourcePolicy {
            memory_budget_bytes: None,
            threads: 1,
        }
    }
}

/// Where the graph comes from.
#[derive(Clone, Debug)]
pub enum Source {
    /// An edge-list file on disk (SNAP text or the dsg binary format).
    File {
        /// Path to the edge file.
        path: PathBuf,
        /// `true` for the compact binary format.
        binary: bool,
        /// Parse the file as directed even for undirected algorithms.
        directed_input: bool,
    },
    /// An already-materialized edge list (benchmarks, tests, embedding).
    Memory {
        /// The edge list; canonicalized by the engine before use.
        list: EdgeList,
        /// Label used in reports in place of a file path.
        label: String,
    },
    /// A named mutable session graph held by the engine's catalog
    /// (created via `create_graph`, mutated via `add_edges` /
    /// `remove_edges` / `compact`). Queries run against the graph's
    /// current immutable snapshot; its orientation is fixed at creation
    /// and must match the algorithm's.
    Named {
        /// The session graph's name.
        name: String,
    },
}

impl Source {
    /// A text-file source.
    pub fn text(path: impl Into<PathBuf>) -> Self {
        Source::File {
            path: path.into(),
            binary: false,
            directed_input: false,
        }
    }

    /// A named-session-graph source.
    pub fn named(name: impl Into<String>) -> Self {
        Source::Named { name: name.into() }
    }

    /// The label reports carry for this source (the path, the memory
    /// label, or the session graph name).
    pub fn label(&self) -> String {
        match self {
            Source::File { path, .. } => path.display().to_string(),
            Source::Memory { label, .. } => label.clone(),
            Source::Named { name } => name.clone(),
        }
    }

    /// How the source's edges are to be oriented for `algorithm`:
    /// directed iff the caller said so or the algorithm is directed.
    /// (Named graphs have a fixed orientation; the engine verifies it
    /// against this request.)
    pub fn kind_for(&self, algorithm: &Algorithm) -> GraphKind {
        let directed_input = matches!(
            self,
            Source::File {
                directed_input: true,
                ..
            }
        );
        if directed_input || matches!(algorithm, Algorithm::Directed { .. }) {
            GraphKind::Directed
        } else {
            GraphKind::Undirected
        }
    }
}
