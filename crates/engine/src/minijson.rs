//! A tiny, dependency-free parser for the serve protocol's requests:
//! one **flat** JSON object per line, with string / number / boolean /
//! null values. Nested containers are rejected by design — the request
//! schema is flat, and keeping the grammar small keeps the parser
//! honest: every failure is a typed [`JsonError`] naming the byte
//! position, never a panic (the property suite in
//! `crates/engine/tests/minijson_props.rs` fuzzes that contract), and
//! because containers cannot nest the parser has no recursion at all —
//! arbitrarily deep input cannot overflow the stack.

/// A parse failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the failure was detected.
    pub pos: usize,
    /// What the parser expected or rejected.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string (escapes decoded).
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    /// Re-renders the value as JSON (used to echo request ids verbatim).
    pub fn to_json(&self) -> String {
        match self {
            Value::Str(s) => format!("\"{}\"", crate::report::escape_json(s)),
            Value::Num(n) => crate::report::render_num(*n),
            Value::Bool(b) => b.to_string(),
            Value::Null => "null".to_string(),
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool; numbers 0/1 are accepted too (`"stream":1`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Num(n) if *n == 0.0 => Some(false),
            Value::Num(n) if *n == 1.0 => Some(true),
            _ => None,
        }
    }

    /// The value as a non-negative integer with no fractional part.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// A reusable arena for parsed request fields: the field vector plus a
/// pool of cleared `String` allocations recycled across requests, so a
/// connection's steady-state parsing allocates nothing once the pool is
/// warm. Shared by the JSONL parser ([`parse_object_into`]) and the
/// binary frame decoder (`frame::decode_request_payload`).
#[derive(Debug, Default)]
pub struct FieldScratch {
    fields: Vec<(String, Value)>,
    spare: Vec<String>,
}

impl FieldScratch {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the parsed fields, recycling their string allocations
    /// into the pool.
    pub fn reset(&mut self) {
        for (mut key, value) in self.fields.drain(..) {
            key.clear();
            self.spare.push(key);
            if let Value::Str(mut s) = value {
                s.clear();
                self.spare.push(s);
            }
        }
    }

    /// A cleared string from the pool (fresh when the pool is empty).
    pub fn take_string(&mut self) -> String {
        self.spare.pop().unwrap_or_default()
    }

    /// Appends a parsed field.
    pub fn push_field(&mut self, key: String, value: Value) {
        self.fields.push((key, value));
    }

    /// The fields of the current request, in document order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }
}

/// Parses one flat JSON object into `(key, value)` pairs in document
/// order. Duplicate keys are kept (last one wins at lookup).
pub fn parse_object(input: &str) -> Result<Vec<(String, Value)>, JsonError> {
    let mut scratch = FieldScratch::new();
    parse_object_into(input, &mut scratch)?;
    Ok(std::mem::take(&mut scratch.fields))
}

/// Like [`parse_object`], but parses into `scratch` (cleared first),
/// reusing its string allocations across calls — the serve hot path
/// uses this so steady-state request parsing performs no allocation.
pub fn parse_object_into(input: &str, scratch: &mut FieldScratch) -> Result<(), JsonError> {
    scratch.reset();
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let mut key = scratch.take_string();
            p.parse_string_into(&mut key)?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value(scratch)?;
            scratch.push_field(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(p.err_at(format!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err_at("trailing characters after object".into()));
    }
    Ok(())
}

/// Looks a key up in parsed fields (last occurrence wins).
pub fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err_at(&self, msg: String) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, want: u8) -> Result<(), JsonError> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(self.err_at(format!("expected '{}', got {other:?}", want as char))),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self, scratch: &mut FieldScratch) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'"') => {
                let mut s = scratch.take_string();
                self.parse_string_into(&mut s)?;
                Ok(Value::Str(s))
            }
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b'{' | b'[') => {
                Err(self.err_at("nested objects/arrays are not part of the request schema".into()))
            }
            Some(_) => self.parse_number(),
            None => Err(self.err_at("unexpected end of input".into())),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err_at(format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| self.err_at(e.to_string()))?;
        let n: f64 = raw
            .parse()
            .map_err(|_| self.err_at(format!("bad number '{raw}'")))?;
        if !n.is_finite() {
            return Err(self.err_at(format!("non-finite number '{raw}'")));
        }
        Ok(Value::Num(n))
    }

    fn parse_string_into(&mut self, out: &mut String) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.next() {
                None => return Err(self.err_at("unterminated string".into())),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err_at("truncated \\u escape".into()));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|e| self.err_at(e.to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err_at(format!("bad \\u escape '{hex}'")))?;
                        self.pos += 4;
                        // Surrogates are replaced, not paired — ids and
                        // paths in the request schema are plain text.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(self.err_at(format!("bad escape {other:?}"))),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err_at("raw control character in string".into()))
                }
                Some(b) => {
                    // Re-assemble multi-byte UTF-8: backtrack and take the
                    // full char from the source.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let s = std::str::from_utf8(&self.bytes[self.pos - 1..])
                            .map_err(|e| self.err_at(e.to_string()))?;
                        let c = s
                            .chars()
                            .next()
                            .ok_or_else(|| self.err_at("empty char".into()))?;
                        out.push(c);
                        self.pos += c.len_utf8() - 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let f = parse_object(
            r#"{"op":"query","epsilon":0.5,"k":10,"stream":true,"id":null,"file":"a b.txt"}"#,
        )
        .unwrap();
        assert_eq!(get(&f, "op").unwrap().as_str(), Some("query"));
        assert_eq!(get(&f, "epsilon").unwrap().as_num(), Some(0.5));
        assert_eq!(get(&f, "k").unwrap().as_uint(), Some(10));
        assert_eq!(get(&f, "stream").unwrap().as_bool(), Some(true));
        assert_eq!(get(&f, "id"), Some(&Value::Null));
        assert_eq!(get(&f, "file").unwrap().as_str(), Some("a b.txt"));
        assert_eq!(get(&f, "missing"), None);
    }

    #[test]
    fn rejects_nested_and_trailing() {
        assert!(parse_object(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_object(r#"{"a":[1]}"#).is_err());
        assert!(parse_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_object("not json").is_err());
        assert!(parse_object(r#"{"a":1e999}"#).is_err());
    }

    #[test]
    fn decodes_escapes_and_roundtrips() {
        let f = parse_object(r#"{"s":"line\nbreak \"q\" é"}"#).unwrap();
        assert_eq!(get(&f, "s").unwrap().as_str(), Some("line\nbreak \"q\" é"));
        assert_eq!(Value::Num(3.0).to_json(), "3");
        assert_eq!(Value::Str("a\"b".into()).to_json(), r#""a\"b""#);
        assert_eq!(Value::Bool(false).to_json(), "false");
        assert_eq!(Value::Null.to_json(), "null");
    }

    #[test]
    fn scratch_parsing_matches_fresh_parsing() {
        let lines = [
            r#"{"op":"query","file":"a.txt","epsilon":0.5}"#,
            r#"{"op":"stats","id":7}"#,
            r#"{"op":"query","graph":"g","stream":true,"note":"longer string value here"}"#,
            r#"{}"#,
            r#"{"op":"query","file":"a.txt","epsilon":0.5}"#,
        ];
        let mut scratch = FieldScratch::new();
        for line in lines {
            parse_object_into(line, &mut scratch).unwrap();
            assert_eq!(scratch.fields(), parse_object(line).unwrap().as_slice());
        }
        // A failed parse leaves the scratch reusable.
        assert!(parse_object_into("not json", &mut scratch).is_err());
        parse_object_into(lines[0], &mut scratch).unwrap();
        assert_eq!(scratch.fields(), parse_object(lines[0]).unwrap().as_slice());
    }

    #[test]
    fn empty_object_and_uint_bounds() {
        assert!(parse_object("{}").unwrap().is_empty());
        assert_eq!(Value::Num(1.5).as_uint(), None);
        assert_eq!(Value::Num(-1.0).as_uint(), None);
        assert_eq!(Value::Num(2.0).as_bool(), None);
    }
}
