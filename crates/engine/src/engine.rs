//! [`Engine`] — plan then execute, against a catalog-cached graph.
//!
//! `Engine::execute` is the one entry point behind which every
//! algorithm × backend combination lives. Execution dispatches on the
//! planned [`Backend`] and calls **exactly** the public API the
//! pre-engine CLI called for that combination, so results (density,
//! node set, passes) are byte-identical to direct API calls — the
//! parity suite in `tests/engine.rs` asserts it for every algorithm.
//!
//! The engine is **shareable**: every method takes `&self`, the graph
//! catalog and the result cache are internally synchronized, and
//! `Engine: Send + Sync`, so the serve mode's worker pool executes
//! queries from many connections against one engine concurrently.
//! Two caches sit in front of the compute path:
//!
//! 1. the [`GraphCatalog`] (one single-flight load per graph file), and
//! 2. the [`ResultCache`] (completed reports keyed by
//!    `(file fingerprint, canonical query, effective policy)`), which
//!    replays repeated materialized queries without recomputing —
//!    byte-identically, minus `elapsed_ms`.
//!
//! Streamed (out-of-core) runs and memory sources bypass the result
//! cache: the former exist because memory is scarce, the latter have no
//! file fingerprint to key on.

use std::time::Instant;

use dsg_core::enumerate::EnumerateOptions;
use dsg_core::result::streaming_state_bytes;
use dsg_graph::stream::{BinaryFileStream, EdgeStream, MemoryStream, TextFileStream};
use dsg_graph::EdgeList;
use dsg_mapreduce::{mr_densest_undirected, MapReduceConfig, MrUndirectedResult};
use dsg_sketch::{approx_densest_sketched, try_approx_densest_sketched, SketchParams};

use crate::catalog::{CatalogEntry, GraphCatalog};
use crate::error::{EngineError, Result};
use crate::planner::{self, Backend, GraphMeta, Plan};
use crate::query::{Algorithm, Query, ResourcePolicy, Source};
use crate::report::{Outcome, Report, ShuffleStats};
use crate::result_cache::{CacheKey, ResultCache};

/// The query engine: a [`GraphCatalog`] plus a [`ResultCache`] plus the
/// plan → execute pipeline. Create one (or share one across threads —
/// all methods take `&self`) and feed it queries; repeated queries over
/// the same file hit the catalog instead of reloading, and repeated
/// identical queries hit the result cache instead of recomputing.
#[derive(Default)]
pub struct Engine {
    catalog: GraphCatalog,
    results: ResultCache,
}

impl Engine {
    /// An engine with an empty catalog and a default-budget result cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the catalog (load/hit counters, size, bounds).
    pub fn catalog(&self) -> &GraphCatalog {
        &self.catalog
    }

    /// Read access to the result cache (counters, budget).
    pub fn results(&self) -> &ResultCache {
        &self.results
    }

    /// Size metadata of a source, without materializing file sources.
    /// (Counts are orientation-independent, so no algorithm is needed.)
    pub fn stat(&self, source: &Source) -> Result<GraphMeta> {
        match source {
            Source::File { path, binary, .. } => Ok(self.catalog.stat(path, *binary)?),
            Source::Memory { list, .. } => Ok(GraphMeta {
                nodes: list.num_nodes as u64,
                edges: list.num_edges() as u64,
                weighted: list.is_weighted(),
                file_bytes: 0,
            }),
        }
    }

    /// Plans `query` over `source` under `policy` without executing.
    pub fn plan(&self, source: &Source, query: &Query, policy: &ResourcePolicy) -> Result<Plan> {
        let meta = self.stat(source)?;
        planner::plan(query, &meta, policy)
    }

    /// Plans and executes `query`, returning the unified [`Report`].
    ///
    /// Cost model: planning a cold **text** file costs one extra O(1)-
    /// memory validation scan before execution (binary files read only
    /// the header), and the first materialized load also fingerprints
    /// the file's bytes. Both are per-file one-offs — the scan result
    /// is cached by `(length, mtime)` stamp and the load by the
    /// catalog — so the long-running serve mode amortizes them to zero;
    /// a one-shot CLI run pays one extra sequential read in exchange
    /// for a budget-aware plan. A repeated materialized query over an
    /// unchanged file additionally skips the computation entirely: the
    /// result cache replays the stored report (byte-identical minus
    /// `elapsed_ms`), still re-stamping the file so an edit is never
    /// served stale.
    pub fn execute(
        &self,
        source: &Source,
        query: &Query,
        policy: &ResourcePolicy,
    ) -> Result<Report> {
        let started = Instant::now();
        let meta = self.stat(source)?;
        let plan = planner::plan(query, &meta, policy)?;
        let kind = source.kind_for(&query.algorithm);

        let mut exec = Execution::default();
        let outcome = match plan.backend {
            Backend::Streamed | Backend::Sketched { streamed: true, .. } => {
                self.run_streamed(source, query, &plan, &mut exec)?
            }
            _ => {
                // Materialized path: fetch the graph through the catalog
                // (one single-flight load, many hits) and consult the
                // result cache before computing anything.
                let (entry, cache_key) = match source {
                    Source::File { path, binary, .. } => {
                        let (entry, hit) = self.catalog.get_or_load(path, *binary, kind)?;
                        exec.cache_hit = Some(hit);
                        let key = CacheKey::new(entry.fingerprint, kind, query, policy);
                        if let Some(mut replay) = self.results.lookup(&key, &source.label()) {
                            replay.cache_hit = Some(hit);
                            replay.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                            return Ok(replay);
                        }
                        (entry, Some(key))
                    }
                    // Memory sources bypass the catalog and the result
                    // cache: the caller already holds the list, and
                    // there is no file fingerprint to key on.
                    Source::Memory { list, .. } => {
                        let mut list = list.clone();
                        list.kind = kind;
                        list.canonicalize();
                        (
                            std::sync::Arc::new(CatalogEntry::from_list(list, 0, 0)),
                            None,
                        )
                    }
                };
                let outcome = self.run_on_entry(&entry, query, &plan, &mut exec)?;
                exec.result_cache_hit = cache_key.is_some().then_some(false);
                if let Some(key) = cache_key {
                    let report =
                        assemble_report(source, query, policy, &plan, outcome, exec, started);
                    // Guard against file edits racing the pipeline: if
                    // the edit landed between stat and load, `plan` was
                    // computed from the old version's counts while
                    // `key` fingerprints the new bytes (stored_meta
                    // mismatch); if it landed *inside* the load, the
                    // entry's edges and fingerprint may describe
                    // different versions (`!cacheable`). Caching either
                    // pair would make hot serve results persistently
                    // diverge from cold one-shot runs of the same file.
                    // The report is still returned (the race was always
                    // possible, transiently); it just must not be
                    // replayed.
                    if entry.cacheable && meta == entry.stored_meta {
                        self.results.insert(key, &report);
                    }
                    return Ok(report);
                }
                outcome
            }
        };
        Ok(assemble_report(
            source, query, policy, &plan, outcome, exec, started,
        ))
    }

    /// Out-of-core path: run straight over the source's edge stream,
    /// never materializing the edge list.
    fn run_streamed(
        &self,
        source: &Source,
        query: &Query,
        plan: &Plan,
        exec: &mut Execution,
    ) -> Result<Outcome> {
        let (mut stream, num_edges): (Box<dyn EdgeStream>, u64) = match source {
            Source::File { path, binary, .. } => {
                if *binary {
                    let s = BinaryFileStream::open(path)?;
                    let m = s.num_edges();
                    (Box::new(s), m)
                } else {
                    let s = TextFileStream::open_auto(path)?;
                    let m = s.num_edges();
                    (Box::new(s), m)
                }
            }
            Source::Memory { list, .. } => {
                let m = list.num_edges() as u64;
                (Box::new(MemoryStream::new(list.clone())), m)
            }
        };
        let n = stream.num_nodes() as u64;
        exec.graph_nodes = n;
        exec.graph_edges = num_edges;
        let fail = EngineError::StreamFailed;

        match (query.algorithm, plan.backend) {
            (
                Algorithm::Approx { epsilon, .. },
                Backend::Sketched {
                    width,
                    streamed: true,
                },
            ) => {
                let sk = try_approx_densest_sketched(
                    &mut *stream,
                    epsilon,
                    SketchParams::paper(width, 0),
                )
                .map_err(fail)?;
                exec.sketch_words = Some((sk.sketch_words as u64, sk.exact_words as u64));
                exec.state_bytes = Some(streaming_state_bytes(n, sk.sketch_words as u64));
                Ok(Outcome::Run(sk.run))
            }
            (Algorithm::Approx { epsilon, .. }, _) => {
                let run = dsg_core::undirected::try_approx_densest(&mut *stream, epsilon)
                    .map_err(fail)?;
                exec.state_bytes = Some(streaming_state_bytes(n, n));
                Ok(Outcome::Run(run))
            }
            (Algorithm::AtLeastK { k, epsilon }, _) => {
                let epsilon = epsilon.max(1e-6);
                let run = dsg_core::large::try_approx_densest_at_least_k(&mut *stream, k, epsilon)
                    .map_err(fail)?;
                exec.state_bytes = Some(streaming_state_bytes(n, n));
                Ok(Outcome::Run(run))
            }
            (alg, backend) => Err(EngineError::Unsupported(format!(
                "planner bug: {backend:?} cannot run '{}'",
                alg.name()
            ))),
        }
    }

    /// Dispatches a materialized run over an already-acquired catalog
    /// entry (or a temporary entry for memory sources) on the planned
    /// backend.
    fn run_on_entry(
        &self,
        entry: &CatalogEntry,
        query: &Query,
        plan: &Plan,
        exec: &mut Execution,
    ) -> Result<Outcome> {
        let list = &entry.list;
        exec.graph_nodes = list.num_nodes as u64;
        exec.graph_edges = list.num_edges() as u64;

        match (query.algorithm, plan.backend) {
            (Algorithm::Approx { epsilon, .. }, Backend::InMemorySerial) => Ok(Outcome::Run(
                dsg_core::undirected::approx_densest_csr(&entry.csr_undirected(), epsilon),
            )),
            (Algorithm::Approx { epsilon, .. }, Backend::ParallelCsr { threads }) => Ok(
                Outcome::Run(dsg_core::undirected::approx_densest_csr_parallel(
                    &entry.csr_undirected(),
                    epsilon,
                    threads,
                )),
            ),
            (
                Algorithm::Approx { epsilon, .. },
                Backend::Sketched {
                    width,
                    streamed: false,
                },
            ) => {
                let mut stream = MemoryStream::new(list.clone());
                let sk =
                    approx_densest_sketched(&mut stream, epsilon, SketchParams::paper(width, 0));
                exec.sketch_words = Some((sk.sketch_words as u64, sk.exact_words as u64));
                Ok(Outcome::Run(sk.run))
            }
            (Algorithm::Approx { epsilon, .. }, Backend::MapReduce { workers, shuffle }) => {
                let config = MapReduceConfig {
                    num_workers: workers,
                    num_reducers: workers * 4,
                    combine: true,
                    shuffle: shuffle.to_backend(),
                };
                let splits = mr_edge_splits(list, workers);
                let result = mr_densest_undirected(&config, list.num_nodes, splits, epsilon);
                exec.shuffle = Some(shuffle_stats(&result));
                Ok(Outcome::MapReduce(result))
            }
            (Algorithm::AtLeastK { k, epsilon }, Backend::InMemorySerial) => {
                let mut stream = MemoryStream::new(list.clone());
                Ok(Outcome::Run(dsg_core::large::approx_densest_at_least_k(
                    &mut stream,
                    k,
                    epsilon.max(1e-6),
                )))
            }
            (Algorithm::AtLeastK { k, epsilon }, Backend::ParallelCsr { threads }) => Ok(
                Outcome::Run(dsg_core::large::approx_densest_at_least_k_csr_parallel(
                    &entry.csr_undirected(),
                    k,
                    epsilon.max(1e-6),
                    threads,
                )),
            ),
            (Algorithm::Directed { delta, epsilon }, Backend::InMemorySerial) => {
                Ok(Outcome::Sweep(dsg_core::directed::sweep_c_csr(
                    &entry.csr_directed(),
                    delta,
                    epsilon,
                )))
            }
            (Algorithm::Directed { delta, epsilon }, Backend::ParallelCsr { threads }) => {
                Ok(Outcome::Sweep(dsg_core::directed::sweep_c_csr_parallel(
                    &entry.csr_directed(),
                    delta,
                    epsilon,
                    threads,
                )))
            }
            (Algorithm::Charikar, _) => Ok(Outcome::Charikar(dsg_core::charikar::charikar_peel(
                &entry.csr_undirected(),
            ))),
            (Algorithm::Exact { flow }, _) => Ok(Outcome::Exact(dsg_flow::exact_densest_with(
                &entry.csr_undirected(),
                flow,
            ))),
            (
                Algorithm::Enumerate {
                    epsilon,
                    min_density,
                    max_communities,
                },
                _,
            ) => Ok(Outcome::Communities(
                dsg_core::enumerate::enumerate_dense_subgraphs(
                    &entry.csr_undirected(),
                    EnumerateOptions {
                        epsilon,
                        min_density,
                        max_communities,
                    },
                ),
            )),
            (alg, backend) => Err(EngineError::Unsupported(format!(
                "planner bug: {backend:?} cannot run '{}'",
                alg.name()
            ))),
        }
    }
}

/// Builds the final [`Report`] from the executed plan and accounting.
#[allow(clippy::too_many_arguments)]
fn assemble_report(
    source: &Source,
    query: &Query,
    policy: &ResourcePolicy,
    plan: &Plan,
    outcome: Outcome,
    exec: Execution,
    started: Instant,
) -> Report {
    let threads = match plan.backend {
        Backend::Streamed | Backend::Sketched { streamed: true, .. } => 1,
        Backend::ParallelCsr { threads } => threads,
        Backend::MapReduce { workers, .. } => workers,
        Backend::InMemorySerial
        | Backend::Sketched {
            streamed: false, ..
        } => policy.threads,
    };
    Report {
        query: *query,
        source_label: source.label(),
        graph_nodes: exec.graph_nodes,
        graph_edges: exec.graph_edges,
        plan: plan.clone(),
        outcome,
        threads,
        sketch_words: exec.sketch_words,
        state_bytes: exec.state_bytes,
        shuffle: exec.shuffle,
        cache_hit: exec.cache_hit,
        result_cache_hit: exec.result_cache_hit,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Per-execution accounting threaded through the dispatch helpers.
#[derive(Default)]
struct Execution {
    graph_nodes: u64,
    graph_edges: u64,
    sketch_words: Option<(u64, u64)>,
    state_bytes: Option<u64>,
    shuffle: Option<ShuffleStats>,
    cache_hit: Option<bool>,
    result_cache_hit: Option<bool>,
}

/// Splits a canonical edge list into `parts` contiguous chunks — the
/// deterministic partitioning the MapReduce backend feeds the driver.
/// Public so parity tests construct the identical direct call.
pub fn mr_edge_splits(list: &EdgeList, parts: usize) -> Vec<Vec<(u32, u32)>> {
    let parts = parts.max(1);
    if list.edges.is_empty() {
        return vec![Vec::new()];
    }
    let chunk = list.edges.len().div_ceil(parts);
    list.edges.chunks(chunk).map(|c| c.to_vec()).collect()
}

/// Sums the shuffle accounting over every pass of an MR run.
fn shuffle_stats(result: &MrUndirectedResult) -> ShuffleStats {
    let mut s = ShuffleStats::default();
    for report in &result.reports {
        s.shuffle_bytes += report.rounds.shuffle_bytes;
        s.spilled_bytes += report.rounds.spilled_bytes;
        s.spill_runs += report.rounds.spill_runs;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole point of this PR: one engine shared across a worker
    // pool. Compile-time proof it is thread-safe.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    };

    #[test]
    fn plan_field_of_report_matches_planner() {
        let engine = Engine::new();
        let source = Source::Memory {
            list: dsg_graph::gen::clique(6),
            label: "k6".into(),
        };
        let query = Query::new(Algorithm::Approx {
            epsilon: 0.5,
            sketch: None,
        });
        let policy = ResourcePolicy::default();
        let plan = engine.plan(&source, &query, &policy).unwrap();
        let report = engine.execute(&source, &query, &policy).unwrap();
        assert_eq!(report.plan, plan);
        assert_eq!(
            report.result_cache_hit, None,
            "memory sources bypass the result cache"
        );
    }
}
