//! [`Engine`] — plan then execute, against a catalog-cached graph.
//!
//! `Engine::execute` is the one entry point behind which every
//! algorithm × backend combination lives. Execution dispatches on the
//! planned [`Backend`] and calls **exactly** the public API the
//! pre-engine CLI called for that combination, so results (density,
//! node set, passes) are byte-identical to direct API calls — the
//! parity suite in `tests/engine.rs` asserts it for every algorithm.
//!
//! The engine is **shareable**: every method takes `&self`, the graph
//! catalog and the result cache are internally synchronized, and
//! `Engine: Send + Sync`, so the serve mode's worker pool executes
//! queries from many connections against one engine concurrently.
//! Two caches sit in front of the compute path:
//!
//! 1. the [`GraphCatalog`] (one single-flight load per graph file), and
//! 2. the [`ResultCache`] (completed reports keyed by
//!    `(file fingerprint, canonical query, effective policy)`), which
//!    replays repeated materialized queries without recomputing —
//!    byte-identically, minus `elapsed_ms`.
//!
//! Streamed (out-of-core) runs and memory sources bypass the result
//! cache: the former exist because memory is scarce, the latter have no
//! file fingerprint to key on.
//!
//! ## Mutable sessions and warm restarts
//!
//! Named session graphs ([`Engine::create_graph`] /
//! [`Engine::add_edges`] / [`Engine::remove_edges`] /
//! [`Engine::compact_graph`]) are versioned by the catalog, and their
//! result-cache keys carry the version, so a mutation structurally
//! invalidates every cached result (the engine additionally evicts the
//! stale-version entries eagerly). On top of that sits the
//! **warm-restart path** for the peeling algorithms (`approx`,
//! `atleast-k`, `directed`): the engine remembers, per `(graph, query)`,
//! the last computed report as a *warm seed*. When the same query
//! arrives at a newer version:
//!
//! * **Verified replay** — if the new snapshot's content hash equals the
//!   seed's (a compaction, or mutations that cancelled out), the seed's
//!   dense subgraph is *re-verified* against the current snapshot (its
//!   density recomputed from the CSR and compared) and the stored
//!   report is replayed. Byte-identical to recomputing by construction —
//!   the graph is the same graph.
//! * **Warm re-peel** — if the content changed but the delta since the
//!   seed stays under [`Engine::set_warm_threshold`] (as a fraction of
//!   the current edge count), the kernel re-peels the already-
//!   materialized snapshot (counted as a warm hit: versus the file
//!   world, the session skipped the rewrite → reload → re-canonicalize
//!   → re-fingerprint pipeline; the re-peel itself is bounded by the
//!   same `O(log n)` pass bound as a cold run and executes the
//!   *identical* kernel over the *identical* materialized graph, so
//!   density/set/passes stay byte-identical to cold recompute —
//!   asserted by the parity suite and the `repro mutate` experiment).
//! * **Fallback** — a delta ratio above the threshold is counted as a
//!   warm fallback and runs the plain cold path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dsg_core::enumerate::EnumerateOptions;
use dsg_core::result::streaming_state_bytes;
use dsg_graph::stream::{BinaryFileStream, EdgeStream, MemoryStream, TextFileStream};
use dsg_graph::{EdgeList, GraphKind, NodeSet};
use dsg_mapreduce::{mr_densest_undirected, MapReduceConfig, MrUndirectedResult};
use dsg_sketch::{approx_densest_sketched, try_approx_densest_sketched, SketchParams};

use crate::catalog::{CatalogEntry, GraphCatalog, MutateOp, MutationOutcome, NamedGraph};
use crate::error::{EngineError, Result};
use crate::incremental::{IncSeed, IncrementalDebug, TraceSet};
use crate::planner::{self, Backend, GraphMeta, Plan};
use crate::query::{Algorithm, BackendRequest, Query, ResourcePolicy, Source};
use crate::report::{Outcome, Report, ShuffleStats};
use crate::result_cache::{CacheKey, GraphId, ResultCache};

/// Default warm-restart fallback threshold: delta edges since the seed,
/// as a fraction of the current edge count.
pub const DEFAULT_WARM_THRESHOLD: f64 = 0.25;

/// Default incremental-tier fallback threshold: the affected set may
/// grow to this fraction of the node count before the simulation gives
/// up and the query falls through to the warm/cold paths.
pub const DEFAULT_INCREMENTAL_THRESHOLD: f64 = 0.05;

/// Upper bound on retained warm seeds (the map is cleared wholesale
/// beyond it — seeds are an optimization, not state).
const MAX_WARM_SEEDS: usize = 256;

/// A recovered mutation-journal window: the `(add, u, v)` ops from the
/// seed's base position to the current snapshot, plus the offset of the
/// trace's position within them.
type JournalWindow = (Vec<(bool, u32, u32)>, usize);

/// Warm-restart counters (also kept per graph — see the `stats` op).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Queries served via verified replay or warm re-peel.
    pub hits: u64,
    /// Queries with a seed whose delta ratio forced a cold run.
    pub fallbacks: u64,
}

/// The last computed report for one `(graph, query)` pair, kept so the
/// next version of the graph can warm-restart from it.
struct WarmSeed {
    cum_delta: u64,
    content_hash: u64,
    report: Arc<Report>,
    /// Incremental-tier state: the base snapshot, journal position, and
    /// peel traces the simulator replays deltas against. `None` when
    /// trace capture was off (tier disabled) or the outcome shape has
    /// no trace.
    inc: Option<Arc<IncSeed>>,
}

/// Outcome of [`Engine::execute_serve`].
pub enum ServeReport {
    /// The replay fast path hit and the stored report is returned
    /// shared. Its own replay-bookkeeping fields describe the *cold*
    /// run; for this request the graph was resident (catalog hit) and
    /// the result was replayed (result-cache hit), and `elapsed_ms`
    /// below is fresh.
    Shared {
        /// The cached report; its rendering is byte-identical to the
        /// cold run's.
        report: Arc<Report>,
        /// Wall-clock milliseconds this request spent in the engine.
        elapsed_ms: f64,
    },
    /// Any other path — exactly what [`Engine::execute`] would return
    /// (boxed: the owned report is large and this variant is the cold
    /// path).
    Owned(Box<Report>),
}

/// The query engine: a [`GraphCatalog`] plus a [`ResultCache`] plus the
/// plan → execute pipeline. Create one (or share one across threads —
/// all methods take `&self`) and feed it queries; repeated queries over
/// the same file hit the catalog instead of reloading, and repeated
/// identical queries hit the result cache instead of recomputing.
pub struct Engine {
    catalog: GraphCatalog,
    results: ResultCache,
    seeds: Mutex<HashMap<CacheKey, WarmSeed>>,
    warm_hits: AtomicU64,
    warm_fallbacks: AtomicU64,
    warm_threshold_bits: AtomicU64,
    incremental_hits: AtomicU64,
    incremental_fallbacks: AtomicU64,
    incremental_threshold_bits: AtomicU64,
    /// Debug record of the most recent incremental attempt (a leaf
    /// lock, held only for the copy in/out).
    last_incremental: Mutex<Option<IncrementalDebug>>,
    /// Shard-spill threshold: an unforced `approx` query over at least
    /// this many edges is promoted onto the §5.2 MapReduce substrate,
    /// partitioning its peeling passes across worker threads. 0 = off.
    mapreduce_spill_edges: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            catalog: GraphCatalog::default(),
            results: ResultCache::default(),
            seeds: Mutex::new(HashMap::new()),
            warm_hits: AtomicU64::new(0),
            warm_fallbacks: AtomicU64::new(0),
            warm_threshold_bits: AtomicU64::new(DEFAULT_WARM_THRESHOLD.to_bits()),
            incremental_hits: AtomicU64::new(0),
            incremental_fallbacks: AtomicU64::new(0),
            incremental_threshold_bits: AtomicU64::new(DEFAULT_INCREMENTAL_THRESHOLD.to_bits()),
            last_incremental: Mutex::new(None),
            mapreduce_spill_edges: AtomicU64::new(0),
        }
    }
}

/// The reason string recorded on plans produced by the shard-spill
/// promotion (in place of the planner's "forced MapReduce").
fn spill_reason(edges: u64, threshold: u64) -> String {
    format!("edges {edges} >= shard-spill threshold {threshold} -> MapReduce substrate")
}

impl Engine {
    /// An engine with an empty catalog and a default-budget result cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the catalog (load/hit counters, size, bounds).
    pub fn catalog(&self) -> &GraphCatalog {
        &self.catalog
    }

    /// Read access to the result cache (counters, budget).
    pub fn results(&self) -> &ResultCache {
        &self.results
    }

    /// Warm-restart counters so far.
    pub fn warm_stats(&self) -> WarmStats {
        WarmStats {
            hits: self.warm_hits.load(Ordering::Relaxed),
            fallbacks: self.warm_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Re-bounds the warm-restart fallback: a query whose graph changed
    /// by more than `threshold × current edges` since its seed runs
    /// cold. 0 disables warm re-peels (verified replays of *unchanged*
    /// content still apply).
    pub fn set_warm_threshold(&self, threshold: f64) {
        self.warm_threshold_bits
            .store(threshold.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// The configured warm-restart fallback threshold.
    pub fn warm_threshold(&self) -> f64 {
        f64::from_bits(self.warm_threshold_bits.load(Ordering::Relaxed))
    }

    /// Incremental-tier counters so far.
    pub fn incremental_stats(&self) -> WarmStats {
        WarmStats {
            hits: self.incremental_hits.load(Ordering::Relaxed),
            fallbacks: self.incremental_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Re-bounds the incremental tier: the simulated affected set may
    /// grow to `threshold × nodes` before the tier falls back to the
    /// warm/cold paths. 0 disables the tier entirely (no trace capture,
    /// no attempts).
    pub fn set_incremental_threshold(&self, threshold: f64) {
        self.incremental_threshold_bits
            .store(threshold.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// The configured incremental fallback threshold.
    pub fn incremental_threshold(&self) -> f64 {
        f64::from_bits(self.incremental_threshold_bits.load(Ordering::Relaxed))
    }

    /// Sets the shard-spill threshold: an `approx` query with no forced
    /// backend over an unweighted undirected graph of at least `edges`
    /// edges is promoted onto the MapReduce substrate, so its peeling
    /// passes run partitioned across the policy's worker threads.
    /// `None` (the default) disables the promotion. The rule is a pure
    /// function of `(query, graph meta, threshold)`, so every engine
    /// configured with the same threshold plans the same backend —
    /// shard counts never change plans or bytes.
    pub fn set_mapreduce_spill(&self, edges: Option<u64>) {
        self.mapreduce_spill_edges
            .store(edges.unwrap_or(0), Ordering::Relaxed);
    }

    /// The configured shard-spill threshold (`None` = promotion off).
    pub fn mapreduce_spill(&self) -> Option<u64> {
        match self.mapreduce_spill_edges.load(Ordering::Relaxed) {
            0 => None,
            v => Some(v),
        }
    }

    /// Applies the shard-spill promotion rule: rewrites an eligible
    /// query's backend to MapReduce. Returns the (possibly rewritten)
    /// query plus the fired threshold, which entry points splice into
    /// the plan's reasons in place of "forced MapReduce". Costs one
    /// (stamp-cached) `stat` only when the threshold is set.
    fn spill_query(&self, source: &Source, query: &Query) -> Result<(Query, Option<u64>)> {
        let Some(threshold) = self.mapreduce_spill() else {
            return Ok((*query, None));
        };
        if query.backend.is_some()
            || !query.algorithm.mapreducible()
            || source.kind_for(&query.algorithm) != GraphKind::Undirected
        {
            return Ok((*query, None));
        }
        let meta = self.stat(source)?;
        if meta.weighted || meta.edges < threshold {
            return Ok((*query, None));
        }
        Ok((
            Query {
                algorithm: query.algorithm,
                backend: Some(BackendRequest::MapReduce),
            },
            Some(threshold),
        ))
    }

    /// Debug record of the most recent incremental attempt (`None`
    /// before the first attempt). Affected-set size and passes on a
    /// hit; the static fallback reason otherwise.
    pub fn last_incremental(&self) -> Option<IncrementalDebug> {
        *self
            .last_incremental
            .lock()
            .expect("incremental debug lock poisoned")
    }

    /// Creates a named mutable session graph (optionally seeded with
    /// edges). Any cached results or warm seeds left over from an
    /// earlier graph under the same (evicted) name are dropped — the
    /// catalog's never-reused versions already make them unreachable;
    /// this reclaims the bytes.
    pub fn create_graph(
        &self,
        name: &str,
        kind: GraphKind,
        edges: &[(u32, u32)],
    ) -> Result<MutationOutcome> {
        let outcome = self.catalog.create_named(name, kind, edges)?;
        self.results
            .evict_stale_versions(outcome.fingerprint, outcome.version);
        self.drop_seeds(outcome.fingerprint);
        Ok(outcome)
    }

    /// Adds a batch of edges to a named graph (set semantics), bumping
    /// its version and eagerly evicting the old version's cached
    /// results.
    pub fn add_edges(&self, name: &str, edges: &[(u32, u32)]) -> Result<MutationOutcome> {
        self.mutate_graph(name, MutateOp::Add(edges))
    }

    /// Removes a batch of edges from a named graph.
    pub fn remove_edges(&self, name: &str, edges: &[(u32, u32)]) -> Result<MutationOutcome> {
        self.mutate_graph(name, MutateOp::Remove(edges))
    }

    /// Folds a named graph's delta logs into a fresh base now.
    pub fn compact_graph(&self, name: &str) -> Result<MutationOutcome> {
        self.mutate_graph(name, MutateOp::Compact)
    }

    /// Applies one mutation op, with eager stale-version eviction.
    pub fn mutate_graph(&self, name: &str, op: MutateOp<'_>) -> Result<MutationOutcome> {
        let outcome = self.catalog.mutate_named(name, op)?;
        if outcome.changed {
            self.results
                .evict_stale_versions(outcome.fingerprint, outcome.version);
        }
        Ok(outcome)
    }

    /// Drops every warm seed of the named graph `fingerprint`.
    fn drop_seeds(&self, fingerprint: u64) {
        let mut seeds = self.seeds.lock().expect("warm seed lock poisoned");
        seeds.retain(|k, _| k.graph().fingerprint != fingerprint);
    }

    /// Size metadata of a source, without materializing file sources.
    /// (Counts are orientation-independent, so no algorithm is needed.)
    pub fn stat(&self, source: &Source) -> Result<GraphMeta> {
        match source {
            Source::File { path, binary, .. } => Ok(self.catalog.stat(path, *binary)?),
            Source::Memory { list, .. } => Ok(GraphMeta {
                nodes: list.num_nodes as u64,
                edges: list.num_edges() as u64,
                weighted: list.is_weighted(),
                file_bytes: 0,
            }),
            Source::Named { name } => {
                let (_, entry) = self
                    .catalog
                    .get_named(name)
                    .ok_or_else(|| EngineError::UnknownGraph { name: name.clone() })?;
                Ok(entry.meta)
            }
        }
    }

    /// Plans `query` over `source` under `policy` without executing.
    pub fn plan(&self, source: &Source, query: &Query, policy: &ResourcePolicy) -> Result<Plan> {
        let (query, promoted) = self.spill_query(source, query)?;
        let meta = self.stat(source)?;
        let mut plan = planner::plan(&query, &meta, policy)?;
        if let Some(threshold) = promoted {
            plan.reasons[0] = spill_reason(meta.edges, threshold);
        }
        Ok(plan)
    }

    /// Plans and executes `query`, returning the unified [`Report`].
    ///
    /// Cost model: planning a cold **text** file costs one extra O(1)-
    /// memory validation scan before execution (binary files read only
    /// the header), and the first materialized load also fingerprints
    /// the file's bytes. Both are per-file one-offs — the scan result
    /// is cached by `(length, mtime)` stamp and the load by the
    /// catalog — so the long-running serve mode amortizes them to zero;
    /// a one-shot CLI run pays one extra sequential read in exchange
    /// for a budget-aware plan. A repeated materialized query over an
    /// unchanged file additionally skips the computation entirely: the
    /// result cache replays the stored report (byte-identical minus
    /// `elapsed_ms`), still re-stamping the file so an edit is never
    /// served stale.
    pub fn execute(
        &self,
        source: &Source,
        query: &Query,
        policy: &ResourcePolicy,
    ) -> Result<Report> {
        let started = Instant::now();
        let (query, promoted) = self.spill_query(source, query)?;
        let query = &query;
        let kind = source.kind_for(&query.algorithm);
        // Replay fast path: when the file's graph is already resident
        // and fresh and the result cache holds this exact
        // (fingerprint, query, policy) result, skip planning entirely.
        // Sound because the planner is deterministic in (query, meta,
        // policy) and both meta and the cache key derive from the same
        // stamped file — a hit proves the cached run's plan is the plan
        // this request would get. This keeps the steady-state serve
        // path free of the planner's per-request reason-string
        // allocations and the second metadata stat.
        let mut replay_checked = false;
        if let Source::File { path, binary, .. } = source {
            if let Some(entry) = self.catalog.peek(path, *binary, kind) {
                let key = CacheKey::new(GraphId::file(entry.fingerprint), kind, query, policy);
                if let Some(mut replay) = self.results.lookup(&key, &source.label()) {
                    self.catalog.record_hit();
                    replay.cache_hit = Some(true);
                    replay.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                    return Ok(replay);
                }
                // A definitive miss: the slow path below must not
                // consult (and count) the result cache a second time.
                replay_checked = true;
            }
        }
        self.execute_slow(
            source,
            query,
            policy,
            started,
            kind,
            replay_checked,
            promoted,
        )
    }

    /// Serve-loop variant of [`execute`](Self::execute): on the replay
    /// fast path the stored report is returned **shared** (an `Arc`
    /// straight out of the result cache) instead of deep-cloned and
    /// patched — the steady-state serve path then costs one stat, two
    /// map probes, and zero report allocations. The shared report's own
    /// `cache_hit`/`result_cache_hit`/`elapsed_ms` fields describe the
    /// *cold* run; this request's values (both hits true, fresh
    /// elapsed) ride alongside in [`ServeReport::Shared`], and the
    /// reply envelope is assembled from those. Everything off the fast
    /// path behaves exactly like `execute`.
    pub fn execute_serve(
        &self,
        source: &Source,
        query: &Query,
        policy: &ResourcePolicy,
    ) -> Result<ServeReport> {
        let started = Instant::now();
        let (query, promoted) = self.spill_query(source, query)?;
        let query = &query;
        let kind = source.kind_for(&query.algorithm);
        if let Source::File { path, binary, .. } = source {
            if let Some(entry) = self.catalog.peek(path, *binary, kind) {
                let key = CacheKey::new(GraphId::file(entry.fingerprint), kind, query, policy);
                // Borrow the label when the path is UTF-8 (always, in
                // practice) — `Source::label` allocates.
                let label_owned;
                let label: &str = match path.to_str() {
                    Some(s) => s,
                    None => {
                        label_owned = source.label();
                        &label_owned
                    }
                };
                if let Some(report) = self.results.lookup_shared(&key, label) {
                    self.catalog.record_hit();
                    return Ok(ServeReport::Shared {
                        report,
                        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
                    });
                }
                // Definitive miss — don't re-count it below.
                return self
                    .execute_slow(source, query, policy, started, kind, true, promoted)
                    .map(|r| ServeReport::Owned(Box::new(r)));
            }
        }
        self.execute_slow(source, query, policy, started, kind, false, promoted)
            .map(|r| ServeReport::Owned(Box::new(r)))
    }

    /// The general execution path — everything past the replay fast
    /// path. `replay_checked` records whether the caller already took a
    /// definitive result-cache miss for this request (so it is not
    /// counted twice); `promoted` carries the fired shard-spill
    /// threshold when the caller rewrote the query's backend.
    #[allow(clippy::too_many_arguments)]
    fn execute_slow(
        &self,
        source: &Source,
        query: &Query,
        policy: &ResourcePolicy,
        started: Instant,
        kind: GraphKind,
        replay_checked: bool,
        promoted: Option<u64>,
    ) -> Result<Report> {
        // A named source resolves its snapshot exactly once, up front:
        // the plan, the cache key, and the execution then all describe
        // the same version even while mutations land concurrently.
        let named_ctx = match source {
            Source::Named { name } => {
                let (graph, entry) = self
                    .catalog
                    .get_named(name)
                    .ok_or_else(|| EngineError::UnknownGraph { name: name.clone() })?;
                if entry.list.kind != kind {
                    return Err(EngineError::Unsupported(format!(
                        "graph '{name}' is {}, but '{}' needs a {} graph",
                        kind_name(entry.list.kind),
                        query.algorithm.name(),
                        kind_name(kind),
                    )));
                }
                Some((graph, entry))
            }
            _ => None,
        };
        let meta = match &named_ctx {
            Some((_, entry)) => entry.meta,
            None => self.stat(source)?,
        };
        let mut plan = planner::plan(query, &meta, policy)?;
        if let Some(threshold) = promoted {
            plan.reasons[0] = spill_reason(meta.edges, threshold);
        }
        let plan = plan;

        let mut exec = Execution::default();
        let outcome = match plan.backend {
            Backend::Streamed | Backend::Sketched { streamed: true, .. } => {
                let named_entry = named_ctx.as_ref().map(|(_, entry)| entry.clone());
                self.run_streamed(source, named_entry, query, &plan, &mut exec)?
            }
            _ => {
                // Materialized path: fetch the graph through the catalog
                // (one single-flight load, many hits) and consult the
                // result cache before computing anything.
                let (entry, cache_key, warm_ctx) = match source {
                    Source::File { path, binary, .. } => {
                        let (entry, hit) = self.catalog.get_or_load(path, *binary, kind)?;
                        exec.cache_hit = Some(hit);
                        let key =
                            CacheKey::new(GraphId::file(entry.fingerprint), kind, query, policy);
                        if !replay_checked {
                            if let Some(mut replay) = self.results.lookup(&key, &source.label()) {
                                replay.cache_hit = Some(hit);
                                replay.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                                return Ok(replay);
                            }
                        }
                        (entry, Some(key), None)
                    }
                    // Memory sources bypass the catalog and the result
                    // cache: the caller already holds the list, and
                    // there is no file fingerprint to key on.
                    Source::Memory { list, .. } => {
                        let mut list = list.clone();
                        list.kind = kind;
                        list.canonicalize();
                        (Arc::new(CatalogEntry::from_list(list, 0, 0)), None, None)
                    }
                    Source::Named { .. } => {
                        let (graph, entry) = named_ctx.clone().expect("resolved above");
                        let id = GraphId::named(graph.fingerprint(), entry.version);
                        let key = CacheKey::new(id, kind, query, policy);
                        if let Some(mut replay) = self.results.lookup(&key, &source.label()) {
                            replay.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                            return Ok(replay);
                        }
                        // Warm restart: consult the seed left by the
                        // previous version of this exact query.
                        let warm_ctx = if warm_eligible(query, &plan) {
                            let seed_key = key.versionless();
                            let (decision, inc) = self.warm_decision(&seed_key, &graph, &entry);
                            if let WarmDecision::Replay(stored) = decision {
                                graph.record_warm_hit();
                                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                                let mut report = (*stored).clone();
                                if report.source_label != source.label() {
                                    // The label is rendered; do not
                                    // share the seed's memoized
                                    // rendering under another name.
                                    report.rendered = Default::default();
                                }
                                report.source_label = source.label();
                                report.cache_hit = None;
                                report.result_cache_hit = Some(false);
                                // Future repeats of this exact query
                                // at this version replay from the
                                // result cache directly.
                                self.results.insert(key, &report);
                                report.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                                return Ok(report);
                            }
                            // Incremental tier — between verified replay
                            // and warm re-peel: replay the journal delta
                            // through the trace simulator and answer
                            // from the affected region only.
                            if let Some(inc) = inc {
                                if let Some(report) = self.try_incremental(
                                    &inc, &graph, &entry, &seed_key, &key, source, query, policy,
                                    &plan, started,
                                ) {
                                    return Ok(report);
                                }
                            }
                            match decision {
                                WarmDecision::Warm => {
                                    graph.record_warm_hit();
                                    self.warm_hits.fetch_add(1, Ordering::Relaxed);
                                }
                                WarmDecision::Fallback => {
                                    graph.record_warm_fallback();
                                    self.warm_fallbacks.fetch_add(1, Ordering::Relaxed);
                                }
                                WarmDecision::Cold | WarmDecision::Replay(_) => {}
                            }
                            Some((graph, seed_key))
                        } else {
                            None
                        };
                        (entry, Some(key), warm_ctx)
                    }
                };
                // Capture peel traces when this run will seed the
                // incremental tier (costs one extra live scan per pass).
                let want_trace = warm_ctx.is_some() && self.incremental_threshold() > 0.0;
                let (outcome, traces) =
                    self.run_on_entry(&entry, query, &plan, &mut exec, want_trace)?;
                exec.result_cache_hit = cache_key.is_some().then_some(false);
                if let Some(key) = cache_key {
                    let report =
                        assemble_report(source, query, policy, &plan, outcome, exec, started);
                    // Guard against file edits racing the pipeline: if
                    // the edit landed between stat and load, `plan` was
                    // computed from the old version's counts while
                    // `key` fingerprints the new bytes (stored_meta
                    // mismatch); if it landed *inside* the load, the
                    // entry's edges and fingerprint may describe
                    // different versions (`!cacheable`). Caching either
                    // pair would make hot serve results persistently
                    // diverge from cold one-shot runs of the same file.
                    // The report is still returned (the race was always
                    // possible, transiently); it just must not be
                    // replayed. (Named snapshots are immune: the plan
                    // and the run used one snapshot fetched up front.)
                    if entry.cacheable && meta == entry.stored_meta {
                        self.results.insert(key, &report);
                    }
                    if let Some((graph, seed_key)) = warm_ctx {
                        // A fresh full run re-bases the incremental
                        // seed: this snapshot becomes the base.
                        let inc = traces.map(|t| {
                            Arc::new(IncSeed {
                                base: entry.clone(),
                                cur_pos: entry.journal_pos,
                                traces: t,
                            })
                        });
                        self.store_seed(seed_key, &graph, &entry, &report, inc);
                    }
                    return Ok(report);
                }
                outcome
            }
        };
        Ok(assemble_report(
            source, query, policy, &plan, outcome, exec, started,
        ))
    }

    /// Decides how a named-graph query relates to its warm seed — see
    /// the module docs for the three-way contract. The seed lock is
    /// held only for the map lookup (a few clones of `Copy` fields and
    /// an `Arc`); the candidate re-verification — which may build the
    /// snapshot's CSR — runs after it is released, so concurrent
    /// named-graph queries never serialize on a CSR build.
    /// The second value is the incremental-tier seed to try *before*
    /// acting on a `Warm`/`Fallback` decision (`None` on replay/cold —
    /// replay already answered, cold has nothing to simulate from).
    fn warm_decision(
        &self,
        seed_key: &CacheKey,
        graph: &NamedGraph,
        entry: &CatalogEntry,
    ) -> (WarmDecision, Option<Arc<IncSeed>>) {
        let seed = {
            let seeds = self.seeds.lock().expect("warm seed lock poisoned");
            match seeds.get(seed_key) {
                Some(seed) => WarmSeed {
                    cum_delta: seed.cum_delta,
                    content_hash: seed.content_hash,
                    report: seed.report.clone(),
                    inc: seed.inc.clone(),
                },
                None => return (WarmDecision::Cold, None),
            }
        };
        if seed.content_hash == entry.content_hash {
            // Candidate re-verification: the seed's dense subgraph is
            // re-scored against the current snapshot's CSR before the
            // stored report is trusted. A mismatch (a content-hash
            // collision, in practice unreachable) falls through to a
            // cold run rather than ever replaying an unverified result.
            if verify_candidate(&seed.report, entry) {
                return (WarmDecision::Replay(seed.report), None);
            }
            return (WarmDecision::Cold, None);
        }
        let delta = graph.cum_delta().saturating_sub(seed.cum_delta);
        let ratio = delta as f64 / entry.meta.edges.max(1) as f64;
        let decision = if ratio <= self.warm_threshold() {
            WarmDecision::Warm
        } else {
            WarmDecision::Fallback
        };
        (decision, seed.inc)
    }

    /// Stores the completed report as the warm seed of its
    /// `(graph, query)` pair (peeling outcomes only). The deep report
    /// clone happens before the lock; the critical section is map
    /// operations only.
    fn store_seed(
        &self,
        seed_key: CacheKey,
        graph: &NamedGraph,
        entry: &CatalogEntry,
        report: &Report,
        inc: Option<Arc<IncSeed>>,
    ) {
        if !matches!(report.outcome, Outcome::Run(_) | Outcome::Sweep(_)) {
            return;
        }
        let stored = Arc::new(report.clone());
        let mut seeds = self.seeds.lock().expect("warm seed lock poisoned");
        if seeds.len() >= MAX_WARM_SEEDS && !seeds.contains_key(&seed_key) {
            seeds.clear();
        }
        seeds.insert(
            seed_key,
            WarmSeed {
                cum_delta: graph.cum_delta(),
                content_hash: entry.content_hash,
                report: stored,
                inc,
            },
        );
    }

    /// Recovers the journal window `base.journal_pos..entry.journal_pos`
    /// plus the offset of the trace's position within it, or the reason
    /// the seed's window is unusable.
    fn incremental_ops(
        &self,
        inc: &IncSeed,
        graph: &NamedGraph,
        entry: &CatalogEntry,
    ) -> std::result::Result<JournalWindow, &'static str> {
        if entry.journal_epoch != inc.base.journal_epoch {
            return Err("journal epoch changed since the base snapshot");
        }
        let base_pos = inc.base.journal_pos;
        if inc.cur_pos < base_pos || entry.journal_pos < inc.cur_pos {
            return Err("journal window is not monotone");
        }
        // Stitching cost grows with the whole window back to the base;
        // past this bound a warm re-peel (which stores a fresh base) is
        // the better deal.
        let total = (entry.journal_pos - base_pos) as usize;
        if total > 64.max(entry.meta.edges as usize / 2) {
            return Err("base snapshot too stale");
        }
        let ops = graph
            .journal_ops(inc.base.journal_epoch, base_pos, entry.journal_pos)
            .ok_or("journal moved past the base snapshot")?;
        Ok((ops, (inc.cur_pos - base_pos) as usize))
    }

    /// The incremental tier: journal replay → trace simulation →
    /// re-score verification → report. `Some(report)` is a verified hit
    /// (already cached and re-seeded); `None` is a fallback — counters
    /// and the debug record are updated either way. Weighted snapshots
    /// and a disabled tier bail out without counting an attempt.
    #[allow(clippy::too_many_arguments)]
    fn try_incremental(
        &self,
        inc: &Arc<IncSeed>,
        graph: &Arc<NamedGraph>,
        entry: &Arc<CatalogEntry>,
        seed_key: &CacheKey,
        key: &CacheKey,
        source: &Source,
        query: &Query,
        policy: &ResourcePolicy,
        plan: &Plan,
        started: Instant,
    ) -> Option<Report> {
        let threshold = self.incremental_threshold();
        if threshold <= 0.0 || entry.list.is_weighted() {
            return None;
        }
        let budget = crate::incremental::sim_budget(threshold, entry.list.num_nodes as usize);
        let result = self
            .incremental_ops(inc, graph, entry)
            .map_err(dsg_core::incremental::SimFallback::from)
            .and_then(|(ops, cur_off)| {
                crate::incremental::attempt(inc, &ops, cur_off, entry, query, threshold)
            });
        match result {
            Ok(out) => {
                graph.record_incremental_hit();
                self.incremental_hits.fetch_add(1, Ordering::Relaxed);
                *self
                    .last_incremental
                    .lock()
                    .expect("incremental debug lock poisoned") = Some(IncrementalDebug {
                    affected: out.affected,
                    passes: out.passes,
                    budget,
                    reason: None,
                });
                let exec = Execution {
                    graph_nodes: entry.list.num_nodes as u64,
                    graph_edges: entry.list.num_edges() as u64,
                    result_cache_hit: Some(false),
                    ..Default::default()
                };
                let report =
                    assemble_report(source, query, policy, plan, out.outcome, exec, started);
                self.results.insert(key.clone(), &report);
                // Advance the seed in place: same base, new journal
                // position, the refreshed traces.
                self.store_seed(
                    seed_key.clone(),
                    graph,
                    entry,
                    &report,
                    Some(Arc::new(IncSeed {
                        base: inc.base.clone(),
                        cur_pos: entry.journal_pos,
                        traces: out.traces,
                    })),
                );
                Some(report)
            }
            Err(fb) => {
                graph.record_incremental_fallback();
                self.incremental_fallbacks.fetch_add(1, Ordering::Relaxed);
                *self
                    .last_incremental
                    .lock()
                    .expect("incremental debug lock poisoned") = Some(IncrementalDebug {
                    affected: fb.affected,
                    passes: 0,
                    budget,
                    reason: Some(fb.reason),
                });
                None
            }
        }
    }

    /// Out-of-core path: run straight over the source's edge stream,
    /// never materializing the edge list. Named graphs stream the
    /// snapshot `execute` already resolved (`named_entry`), like memory
    /// sources — never a re-fetched one, so the plan and the stream
    /// always describe the same version even under concurrent
    /// mutations or eviction.
    fn run_streamed(
        &self,
        source: &Source,
        named_entry: Option<Arc<CatalogEntry>>,
        query: &Query,
        plan: &Plan,
        exec: &mut Execution,
    ) -> Result<Outcome> {
        let (mut stream, num_edges): (Box<dyn EdgeStream>, u64) = match source {
            Source::File { path, binary, .. } => {
                if *binary {
                    let s = BinaryFileStream::open(path)?;
                    let m = s.num_edges();
                    (Box::new(s), m)
                } else {
                    let s = TextFileStream::open_auto(path)?;
                    let m = s.num_edges();
                    (Box::new(s), m)
                }
            }
            Source::Memory { list, .. } => {
                let m = list.num_edges() as u64;
                (Box::new(MemoryStream::new(list.clone())), m)
            }
            Source::Named { .. } => {
                let entry = named_entry.expect("execute resolves named sources up front");
                let m = entry.list.num_edges() as u64;
                (Box::new(MemoryStream::new(entry.list.clone())), m)
            }
        };
        let n = stream.num_nodes() as u64;
        exec.graph_nodes = n;
        exec.graph_edges = num_edges;
        let fail = EngineError::StreamFailed;

        match (query.algorithm, plan.backend) {
            (
                Algorithm::Approx { epsilon, .. },
                Backend::Sketched {
                    width,
                    streamed: true,
                },
            ) => {
                let sk = try_approx_densest_sketched(
                    &mut *stream,
                    epsilon,
                    SketchParams::paper(width, 0),
                )
                .map_err(fail)?;
                exec.sketch_words = Some((sk.sketch_words as u64, sk.exact_words as u64));
                exec.state_bytes = Some(streaming_state_bytes(n, sk.sketch_words as u64));
                Ok(Outcome::Run(sk.run))
            }
            (Algorithm::Approx { epsilon, .. }, _) => {
                let run = dsg_core::undirected::try_approx_densest(&mut *stream, epsilon)
                    .map_err(fail)?;
                exec.state_bytes = Some(streaming_state_bytes(n, n));
                Ok(Outcome::Run(run))
            }
            (Algorithm::AtLeastK { k, epsilon }, _) => {
                let epsilon = epsilon.max(1e-6);
                let run = dsg_core::large::try_approx_densest_at_least_k(&mut *stream, k, epsilon)
                    .map_err(fail)?;
                exec.state_bytes = Some(streaming_state_bytes(n, n));
                Ok(Outcome::Run(run))
            }
            (alg, backend) => Err(EngineError::Unsupported(format!(
                "planner bug: {backend:?} cannot run '{}'",
                alg.name()
            ))),
        }
    }

    /// Dispatches a materialized run over an already-acquired catalog
    /// entry (or a temporary entry for memory sources) on the planned
    /// backend. With `want_trace`, the peeling backends capture a
    /// [`PeelTrace`](dsg_core::kernel::PeelTrace) per run — the seed
    /// state of the incremental tier — at a small bookkeeping cost;
    /// the run itself is bit-identical either way.
    fn run_on_entry(
        &self,
        entry: &CatalogEntry,
        query: &Query,
        plan: &Plan,
        exec: &mut Execution,
        want_trace: bool,
    ) -> Result<(Outcome, Option<TraceSet>)> {
        let list = &entry.list;
        exec.graph_nodes = list.num_nodes as u64;
        exec.graph_edges = list.num_edges() as u64;

        let outcome = match (query.algorithm, plan.backend) {
            (
                Algorithm::Approx {
                    epsilon,
                    sketch: None,
                },
                Backend::InMemorySerial,
            ) if want_trace => {
                let (run, trace) = dsg_core::undirected::approx_densest_csr_traced(
                    &entry.csr_undirected(),
                    epsilon,
                );
                return Ok((Outcome::Run(run), Some(TraceSet::Undirected(trace))));
            }
            (
                Algorithm::Approx {
                    epsilon,
                    sketch: None,
                },
                Backend::ParallelCsr { threads },
            ) if want_trace => {
                let (run, trace) = dsg_core::undirected::approx_densest_csr_parallel_traced(
                    &entry.csr_undirected(),
                    epsilon,
                    threads,
                );
                return Ok((Outcome::Run(run), Some(TraceSet::Undirected(trace))));
            }
            (Algorithm::AtLeastK { k, epsilon }, Backend::InMemorySerial) if want_trace => {
                let (run, trace) = dsg_core::large::approx_densest_at_least_k_csr_traced(
                    &entry.csr_undirected(),
                    k,
                    epsilon.max(1e-6),
                );
                return Ok((Outcome::Run(run), Some(TraceSet::Undirected(trace))));
            }
            (Algorithm::AtLeastK { k, epsilon }, Backend::ParallelCsr { threads })
                if want_trace =>
            {
                let (run, trace) = dsg_core::large::approx_densest_at_least_k_csr_parallel_traced(
                    &entry.csr_undirected(),
                    k,
                    epsilon.max(1e-6),
                    threads,
                );
                return Ok((Outcome::Run(run), Some(TraceSet::Undirected(trace))));
            }
            (Algorithm::Directed { delta, epsilon }, Backend::InMemorySerial) if want_trace => {
                let (sweep, traces) =
                    dsg_core::directed::sweep_c_csr_traced(&entry.csr_directed(), delta, epsilon);
                return Ok((Outcome::Sweep(sweep), Some(TraceSet::Directed(traces))));
            }
            (Algorithm::Directed { delta, epsilon }, Backend::ParallelCsr { threads })
                if want_trace =>
            {
                let (sweep, traces) = dsg_core::directed::sweep_c_csr_parallel_traced(
                    &entry.csr_directed(),
                    delta,
                    epsilon,
                    threads,
                );
                return Ok((Outcome::Sweep(sweep), Some(TraceSet::Directed(traces))));
            }
            (Algorithm::Approx { epsilon, .. }, Backend::InMemorySerial) => Ok(Outcome::Run(
                dsg_core::undirected::approx_densest_csr(&entry.csr_undirected(), epsilon),
            )),
            (Algorithm::Approx { epsilon, .. }, Backend::ParallelCsr { threads }) => Ok(
                Outcome::Run(dsg_core::undirected::approx_densest_csr_parallel(
                    &entry.csr_undirected(),
                    epsilon,
                    threads,
                )),
            ),
            (
                Algorithm::Approx { epsilon, .. },
                Backend::Sketched {
                    width,
                    streamed: false,
                },
            ) => {
                let mut stream = MemoryStream::new(list.clone());
                let sk =
                    approx_densest_sketched(&mut stream, epsilon, SketchParams::paper(width, 0));
                exec.sketch_words = Some((sk.sketch_words as u64, sk.exact_words as u64));
                Ok(Outcome::Run(sk.run))
            }
            (Algorithm::Approx { epsilon, .. }, Backend::MapReduce { workers, shuffle }) => {
                let config = MapReduceConfig {
                    num_workers: workers,
                    num_reducers: workers * 4,
                    combine: true,
                    shuffle: shuffle.to_backend(),
                };
                let splits = mr_edge_splits(list, workers);
                let result = mr_densest_undirected(&config, list.num_nodes, splits, epsilon);
                exec.shuffle = Some(shuffle_stats(&result));
                Ok(Outcome::MapReduce(result))
            }
            (Algorithm::AtLeastK { k, epsilon }, Backend::InMemorySerial) => {
                let mut stream = MemoryStream::new(list.clone());
                Ok(Outcome::Run(dsg_core::large::approx_densest_at_least_k(
                    &mut stream,
                    k,
                    epsilon.max(1e-6),
                )))
            }
            (Algorithm::AtLeastK { k, epsilon }, Backend::ParallelCsr { threads }) => Ok(
                Outcome::Run(dsg_core::large::approx_densest_at_least_k_csr_parallel(
                    &entry.csr_undirected(),
                    k,
                    epsilon.max(1e-6),
                    threads,
                )),
            ),
            (Algorithm::Directed { delta, epsilon }, Backend::InMemorySerial) => {
                Ok(Outcome::Sweep(dsg_core::directed::sweep_c_csr(
                    &entry.csr_directed(),
                    delta,
                    epsilon,
                )))
            }
            (Algorithm::Directed { delta, epsilon }, Backend::ParallelCsr { threads }) => {
                Ok(Outcome::Sweep(dsg_core::directed::sweep_c_csr_parallel(
                    &entry.csr_directed(),
                    delta,
                    epsilon,
                    threads,
                )))
            }
            (Algorithm::Charikar, _) => Ok(Outcome::Charikar(dsg_core::charikar::charikar_peel(
                &entry.csr_undirected(),
            ))),
            (Algorithm::Exact { flow }, _) => Ok(Outcome::Exact(dsg_flow::exact_densest_with(
                &entry.csr_undirected(),
                flow,
            ))),
            (
                Algorithm::Enumerate {
                    epsilon,
                    min_density,
                    max_communities,
                },
                _,
            ) => Ok(Outcome::Communities(
                dsg_core::enumerate::enumerate_dense_subgraphs(
                    &entry.csr_undirected(),
                    EnumerateOptions {
                        epsilon,
                        min_density,
                        max_communities,
                    },
                ),
            )),
            (alg, backend) => Err(EngineError::Unsupported(format!(
                "planner bug: {backend:?} cannot run '{}'",
                alg.name()
            ))),
        };
        outcome.map(|o| (o, None))
    }
}

/// How a named-graph query relates to its warm seed.
enum WarmDecision {
    /// Content unchanged and the candidate re-verified: replay the seed.
    Replay(Arc<Report>),
    /// Small delta: warm re-peel (counted as a hit).
    Warm,
    /// Delta ratio above the threshold: cold run (counted).
    Fallback,
    /// No usable seed: plain cold run (not counted).
    Cold,
}

/// Whether the warm-restart machinery applies: the peeling algorithms
/// on a materialized in-memory backend.
fn warm_eligible(query: &Query, plan: &Plan) -> bool {
    let algorithm_ok = matches!(
        query.algorithm,
        Algorithm::Approx { sketch: None, .. }
            | Algorithm::AtLeastK { .. }
            | Algorithm::Directed { .. }
    );
    algorithm_ok
        && matches!(
            plan.backend,
            Backend::InMemorySerial | Backend::ParallelCsr { .. }
        )
}

/// Re-scores a seed report's dense subgraph against the current
/// snapshot: the stored best set's density, recomputed from the CSR,
/// must match the stored density. Used before any verified replay.
fn verify_candidate(report: &Report, entry: &CatalogEntry) -> bool {
    let n = entry.list.num_nodes as usize;
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
    match &report.outcome {
        Outcome::Run(r) => {
            let set = resize_set(&r.best_set, n);
            close(entry.csr_undirected().density_of(&set), r.best_density)
        }
        Outcome::Sweep(s) => {
            let best_s = resize_set(&s.best.best_s, n);
            let best_t = resize_set(&s.best.best_t, n);
            close(
                entry.csr_directed().density_of(&best_s, &best_t),
                s.best.best_density,
            )
        }
        _ => false,
    }
}

/// A copy of `set` over a node universe of `capacity` (seed sets come
/// from an older snapshot whose universe can only be smaller or equal).
fn resize_set(set: &NodeSet, capacity: usize) -> NodeSet {
    if set.capacity() == capacity {
        set.clone()
    } else {
        NodeSet::from_iter(capacity, set.iter())
    }
}

/// Human name of an orientation, for error messages.
fn kind_name(kind: GraphKind) -> &'static str {
    match kind {
        GraphKind::Undirected => "undirected",
        GraphKind::Directed => "directed",
    }
}

/// Builds the final [`Report`] from the executed plan and accounting.
#[allow(clippy::too_many_arguments)]
fn assemble_report(
    source: &Source,
    query: &Query,
    policy: &ResourcePolicy,
    plan: &Plan,
    outcome: Outcome,
    exec: Execution,
    started: Instant,
) -> Report {
    let threads = match plan.backend {
        Backend::Streamed | Backend::Sketched { streamed: true, .. } => 1,
        Backend::ParallelCsr { threads } => threads,
        Backend::MapReduce { workers, .. } => workers,
        Backend::InMemorySerial
        | Backend::Sketched {
            streamed: false, ..
        } => policy.threads,
    };
    Report {
        query: *query,
        source_label: source.label(),
        graph_nodes: exec.graph_nodes,
        graph_edges: exec.graph_edges,
        plan: plan.clone(),
        outcome,
        threads,
        sketch_words: exec.sketch_words,
        state_bytes: exec.state_bytes,
        shuffle: exec.shuffle,
        cache_hit: exec.cache_hit,
        result_cache_hit: exec.result_cache_hit,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        rendered: Default::default(),
    }
}

/// Per-execution accounting threaded through the dispatch helpers.
#[derive(Default)]
struct Execution {
    graph_nodes: u64,
    graph_edges: u64,
    sketch_words: Option<(u64, u64)>,
    state_bytes: Option<u64>,
    shuffle: Option<ShuffleStats>,
    cache_hit: Option<bool>,
    result_cache_hit: Option<bool>,
}

/// Splits a canonical edge list into `parts` contiguous chunks — the
/// deterministic partitioning the MapReduce backend feeds the driver.
/// Public so parity tests construct the identical direct call.
pub fn mr_edge_splits(list: &EdgeList, parts: usize) -> Vec<Vec<(u32, u32)>> {
    let parts = parts.max(1);
    if list.edges.is_empty() {
        return vec![Vec::new()];
    }
    let chunk = list.edges.len().div_ceil(parts);
    list.edges.chunks(chunk).map(|c| c.to_vec()).collect()
}

/// Sums the shuffle accounting over every pass of an MR run.
fn shuffle_stats(result: &MrUndirectedResult) -> ShuffleStats {
    let mut s = ShuffleStats::default();
    for report in &result.reports {
        s.shuffle_bytes += report.rounds.shuffle_bytes;
        s.spilled_bytes += report.rounds.spilled_bytes;
        s.spill_runs += report.rounds.spill_runs;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole point of this PR: one engine shared across a worker
    // pool. Compile-time proof it is thread-safe.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    };

    #[test]
    fn plan_field_of_report_matches_planner() {
        let engine = Engine::new();
        let source = Source::Memory {
            list: dsg_graph::gen::clique(6),
            label: "k6".into(),
        };
        let query = Query::new(Algorithm::Approx {
            epsilon: 0.5,
            sketch: None,
        });
        let policy = ResourcePolicy::default();
        let plan = engine.plan(&source, &query, &policy).unwrap();
        let report = engine.execute(&source, &query, &policy).unwrap();
        assert_eq!(report.plan, plan);
        assert_eq!(
            report.result_cache_hit, None,
            "memory sources bypass the result cache"
        );
    }

    #[test]
    fn shard_spill_promotes_oversized_approx_to_mapreduce() {
        let engine = Engine::new();
        let list = dsg_graph::gen::clique(10); // 45 edges
        let source = Source::Memory {
            list: list.clone(),
            label: "k10".into(),
        };
        let query = Query::new(Algorithm::Approx {
            epsilon: 0.5,
            sketch: None,
        });
        let policy = ResourcePolicy::default();
        let baseline = engine.execute(&source, &query, &policy).unwrap();

        engine.set_mapreduce_spill(Some(40));
        let plan = engine.plan(&source, &query, &policy).unwrap();
        assert!(
            matches!(plan.backend, Backend::MapReduce { .. }),
            "45 edges >= threshold 40 must promote: {plan:?}"
        );
        assert!(
            plan.reasons[0].contains("shard-spill threshold 40"),
            "promotion must be recorded in the plan's reasons: {:?}",
            plan.reasons
        );
        let promoted = engine.execute(&source, &query, &policy).unwrap();
        assert_eq!(promoted.plan, plan);
        assert_eq!(
            promoted.density(),
            baseline.density(),
            "the MapReduce substrate answers with the same density"
        );

        // Under the threshold, or with a forced backend, nothing changes.
        engine.set_mapreduce_spill(Some(46));
        let plan = engine.plan(&source, &query, &policy).unwrap();
        assert!(!matches!(plan.backend, Backend::MapReduce { .. }));
        engine.set_mapreduce_spill(Some(40));
        let forced = Query {
            algorithm: query.algorithm,
            backend: Some(BackendRequest::InMemory),
        };
        let plan = engine.plan(&source, &forced, &policy).unwrap();
        assert!(!matches!(plan.backend, Backend::MapReduce { .. }));
        engine.set_mapreduce_spill(None);
        let plan = engine.plan(&source, &query, &policy).unwrap();
        assert!(!matches!(plan.backend, Backend::MapReduce { .. }));
    }
}
