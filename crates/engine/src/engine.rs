//! [`Engine`] — plan then execute, against a catalog-cached graph.
//!
//! `Engine::execute` is the one entry point behind which every
//! algorithm × backend combination lives. Execution dispatches on the
//! planned [`Backend`] and calls **exactly** the public API the
//! pre-engine CLI called for that combination, so results (density,
//! node set, passes) are byte-identical to direct API calls — the
//! parity suite in `tests/engine.rs` asserts it for every algorithm.

use std::time::Instant;

use dsg_core::enumerate::EnumerateOptions;
use dsg_core::result::streaming_state_bytes;
use dsg_graph::stream::{BinaryFileStream, EdgeStream, MemoryStream, TextFileStream};
use dsg_graph::{EdgeList, GraphKind};
use dsg_mapreduce::{mr_densest_undirected, MapReduceConfig, MrUndirectedResult};
use dsg_sketch::{approx_densest_sketched, try_approx_densest_sketched, SketchParams};

use crate::catalog::{CatalogEntry, GraphCatalog};
use crate::error::{EngineError, Result};
use crate::planner::{self, Backend, GraphMeta, Plan};
use crate::query::{Algorithm, Query, ResourcePolicy, Source};
use crate::report::{Outcome, Report, ShuffleStats};

/// The query engine: a [`GraphCatalog`] plus the plan → execute
/// pipeline. Create one and feed it queries; repeated queries over the
/// same file hit the catalog instead of reloading.
#[derive(Default)]
pub struct Engine {
    catalog: GraphCatalog,
}

impl Engine {
    /// An engine with an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the catalog (load/hit counters, size).
    pub fn catalog(&self) -> &GraphCatalog {
        &self.catalog
    }

    /// Mutable access to the catalog (eviction, pre-warming).
    pub fn catalog_mut(&mut self) -> &mut GraphCatalog {
        &mut self.catalog
    }

    /// Size metadata of a source, without materializing file sources.
    /// (Counts are orientation-independent, so no algorithm is needed.)
    pub fn stat(&mut self, source: &Source) -> Result<GraphMeta> {
        match source {
            Source::File { path, binary, .. } => Ok(self.catalog.stat(path, *binary)?),
            Source::Memory { list, .. } => Ok(GraphMeta {
                nodes: list.num_nodes as u64,
                edges: list.num_edges() as u64,
                weighted: list.is_weighted(),
                file_bytes: 0,
            }),
        }
    }

    /// Plans `query` over `source` under `policy` without executing.
    pub fn plan(
        &mut self,
        source: &Source,
        query: &Query,
        policy: &ResourcePolicy,
    ) -> Result<Plan> {
        let meta = self.stat(source)?;
        planner::plan(query, &meta, policy)
    }

    /// Plans and executes `query`, returning the unified [`Report`].
    ///
    /// Cost model: planning a cold **text** file costs one extra O(1)-
    /// memory validation scan before execution (binary files read only
    /// the header), and the first materialized load also fingerprints
    /// the file's bytes. Both are per-file one-offs — the scan result
    /// is cached by `(length, mtime)` stamp and the load by the
    /// catalog — so the long-running serve mode amortizes them to zero;
    /// a one-shot CLI run pays one extra sequential read in exchange
    /// for a budget-aware plan.
    pub fn execute(
        &mut self,
        source: &Source,
        query: &Query,
        policy: &ResourcePolicy,
    ) -> Result<Report> {
        let started = Instant::now();
        let meta = self.stat(source)?;
        let plan = planner::plan(query, &meta, policy)?;
        let kind = source.kind_for(&query.algorithm);

        let mut exec = Execution::default();
        let outcome = match plan.backend {
            Backend::Streamed | Backend::Sketched { streamed: true, .. } => {
                self.run_streamed(source, query, &plan, &mut exec)?
            }
            _ => self.run_materialized(source, query, &plan, kind, &mut exec)?,
        };

        let threads = match plan.backend {
            Backend::Streamed | Backend::Sketched { streamed: true, .. } => 1,
            Backend::ParallelCsr { threads } => threads,
            Backend::MapReduce { workers, .. } => workers,
            Backend::InMemorySerial
            | Backend::Sketched {
                streamed: false, ..
            } => policy.threads,
        };
        Ok(Report {
            query: *query,
            source_label: source.label(),
            graph_nodes: exec.graph_nodes,
            graph_edges: exec.graph_edges,
            plan,
            outcome,
            threads,
            sketch_words: exec.sketch_words,
            state_bytes: exec.state_bytes,
            shuffle: exec.shuffle,
            cache_hit: exec.cache_hit,
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// Out-of-core path: run straight over the source's edge stream,
    /// never materializing the edge list.
    fn run_streamed(
        &mut self,
        source: &Source,
        query: &Query,
        plan: &Plan,
        exec: &mut Execution,
    ) -> Result<Outcome> {
        let (mut stream, num_edges): (Box<dyn EdgeStream>, u64) = match source {
            Source::File { path, binary, .. } => {
                if *binary {
                    let s = BinaryFileStream::open(path)?;
                    let m = s.num_edges();
                    (Box::new(s), m)
                } else {
                    let s = TextFileStream::open_auto(path)?;
                    let m = s.num_edges();
                    (Box::new(s), m)
                }
            }
            Source::Memory { list, .. } => {
                let m = list.num_edges() as u64;
                (Box::new(MemoryStream::new(list.clone())), m)
            }
        };
        let n = stream.num_nodes() as u64;
        exec.graph_nodes = n;
        exec.graph_edges = num_edges;
        let fail = EngineError::StreamFailed;

        match (query.algorithm, plan.backend) {
            (
                Algorithm::Approx { epsilon, .. },
                Backend::Sketched {
                    width,
                    streamed: true,
                },
            ) => {
                let sk = try_approx_densest_sketched(
                    &mut *stream,
                    epsilon,
                    SketchParams::paper(width, 0),
                )
                .map_err(fail)?;
                exec.sketch_words = Some((sk.sketch_words as u64, sk.exact_words as u64));
                exec.state_bytes = Some(streaming_state_bytes(n, sk.sketch_words as u64));
                Ok(Outcome::Run(sk.run))
            }
            (Algorithm::Approx { epsilon, .. }, _) => {
                let run = dsg_core::undirected::try_approx_densest(&mut *stream, epsilon)
                    .map_err(fail)?;
                exec.state_bytes = Some(streaming_state_bytes(n, n));
                Ok(Outcome::Run(run))
            }
            (Algorithm::AtLeastK { k, epsilon }, _) => {
                let epsilon = epsilon.max(1e-6);
                let run = dsg_core::large::try_approx_densest_at_least_k(&mut *stream, k, epsilon)
                    .map_err(fail)?;
                exec.state_bytes = Some(streaming_state_bytes(n, n));
                Ok(Outcome::Run(run))
            }
            (alg, backend) => Err(EngineError::Unsupported(format!(
                "planner bug: {backend:?} cannot run '{}'",
                alg.name()
            ))),
        }
    }

    /// Materialized path: fetch the graph through the catalog (one load,
    /// many hits) and dispatch on the planned backend.
    fn run_materialized(
        &mut self,
        source: &Source,
        query: &Query,
        plan: &Plan,
        kind: GraphKind,
        exec: &mut Execution,
    ) -> Result<Outcome> {
        // Memory sources bypass the catalog: the caller already holds the
        // list, caching it would only duplicate it.
        let owned = match source {
            Source::File { path, binary, .. } => {
                let (entry, hit) = self.catalog.get_or_load(path, *binary, kind)?;
                exec.cache_hit = Some(hit);
                entry
            }
            Source::Memory { list, .. } => {
                let mut list = list.clone();
                list.kind = kind;
                list.canonicalize();
                std::sync::Arc::new(CatalogEntry::from_list(list, 0, 0))
            }
        };
        let entry: &CatalogEntry = &owned;
        let list = &entry.list;
        exec.graph_nodes = list.num_nodes as u64;
        exec.graph_edges = list.num_edges() as u64;

        match (query.algorithm, plan.backend) {
            (Algorithm::Approx { epsilon, .. }, Backend::InMemorySerial) => Ok(Outcome::Run(
                dsg_core::undirected::approx_densest_csr(&entry.csr_undirected(), epsilon),
            )),
            (Algorithm::Approx { epsilon, .. }, Backend::ParallelCsr { threads }) => Ok(
                Outcome::Run(dsg_core::undirected::approx_densest_csr_parallel(
                    &entry.csr_undirected(),
                    epsilon,
                    threads,
                )),
            ),
            (
                Algorithm::Approx { epsilon, .. },
                Backend::Sketched {
                    width,
                    streamed: false,
                },
            ) => {
                let mut stream = MemoryStream::new(list.clone());
                let sk =
                    approx_densest_sketched(&mut stream, epsilon, SketchParams::paper(width, 0));
                exec.sketch_words = Some((sk.sketch_words as u64, sk.exact_words as u64));
                Ok(Outcome::Run(sk.run))
            }
            (Algorithm::Approx { epsilon, .. }, Backend::MapReduce { workers, shuffle }) => {
                let config = MapReduceConfig {
                    num_workers: workers,
                    num_reducers: workers * 4,
                    combine: true,
                    shuffle: shuffle.to_backend(),
                };
                let splits = mr_edge_splits(list, workers);
                let result = mr_densest_undirected(&config, list.num_nodes, splits, epsilon);
                exec.shuffle = Some(shuffle_stats(&result));
                Ok(Outcome::MapReduce(result))
            }
            (Algorithm::AtLeastK { k, epsilon }, Backend::InMemorySerial) => {
                let mut stream = MemoryStream::new(list.clone());
                Ok(Outcome::Run(dsg_core::large::approx_densest_at_least_k(
                    &mut stream,
                    k,
                    epsilon.max(1e-6),
                )))
            }
            (Algorithm::AtLeastK { k, epsilon }, Backend::ParallelCsr { threads }) => Ok(
                Outcome::Run(dsg_core::large::approx_densest_at_least_k_csr_parallel(
                    &entry.csr_undirected(),
                    k,
                    epsilon.max(1e-6),
                    threads,
                )),
            ),
            (Algorithm::Directed { delta, epsilon }, Backend::InMemorySerial) => {
                Ok(Outcome::Sweep(dsg_core::directed::sweep_c_csr(
                    &entry.csr_directed(),
                    delta,
                    epsilon,
                )))
            }
            (Algorithm::Directed { delta, epsilon }, Backend::ParallelCsr { threads }) => {
                Ok(Outcome::Sweep(dsg_core::directed::sweep_c_csr_parallel(
                    &entry.csr_directed(),
                    delta,
                    epsilon,
                    threads,
                )))
            }
            (Algorithm::Charikar, _) => Ok(Outcome::Charikar(dsg_core::charikar::charikar_peel(
                &entry.csr_undirected(),
            ))),
            (Algorithm::Exact { flow }, _) => Ok(Outcome::Exact(dsg_flow::exact_densest_with(
                &entry.csr_undirected(),
                flow,
            ))),
            (
                Algorithm::Enumerate {
                    epsilon,
                    min_density,
                    max_communities,
                },
                _,
            ) => Ok(Outcome::Communities(
                dsg_core::enumerate::enumerate_dense_subgraphs(
                    &entry.csr_undirected(),
                    EnumerateOptions {
                        epsilon,
                        min_density,
                        max_communities,
                    },
                ),
            )),
            (alg, backend) => Err(EngineError::Unsupported(format!(
                "planner bug: {backend:?} cannot run '{}'",
                alg.name()
            ))),
        }
    }
}

/// Per-execution accounting threaded through the dispatch helpers.
#[derive(Default)]
struct Execution {
    graph_nodes: u64,
    graph_edges: u64,
    sketch_words: Option<(u64, u64)>,
    state_bytes: Option<u64>,
    shuffle: Option<ShuffleStats>,
    cache_hit: Option<bool>,
}

/// Splits a canonical edge list into `parts` contiguous chunks — the
/// deterministic partitioning the MapReduce backend feeds the driver.
/// Public so parity tests construct the identical direct call.
pub fn mr_edge_splits(list: &EdgeList, parts: usize) -> Vec<Vec<(u32, u32)>> {
    let parts = parts.max(1);
    if list.edges.is_empty() {
        return vec![Vec::new()];
    }
    let chunk = list.edges.len().div_ceil(parts);
    list.edges.chunks(chunk).map(|c| c.to_vec()).collect()
}

/// Sums the shuffle accounting over every pass of an MR run.
fn shuffle_stats(result: &MrUndirectedResult) -> ShuffleStats {
    let mut s = ShuffleStats::default();
    for report in &result.reports {
        s.shuffle_bytes += report.rounds.shuffle_bytes;
        s.spilled_bytes += report.rounds.spilled_bytes;
        s.spill_runs += report.rounds.spill_runs;
    }
    s
}
