//! The engine's incremental maintenance tier — journal-replay glue
//! between the core trace simulator ([`dsg_core::incremental`]) and the
//! catalog's named-graph snapshots.
//!
//! A warm seed stores, next to its report, an [`IncSeed`]: the snapshot
//! the last full run was computed on (the *base*), the journal position
//! of the graph its traces describe, and those [`PeelTrace`]s. When the
//! same query arrives at a newer version, the engine recovers the exact
//! edge delta from the mutation journal, seeds the simulator's affected
//! set with the delta's endpoints, and asks for the bit-identical result
//! of a cold run on the new snapshot — touching only the affected
//! region. The base never rebases: successive hits keep stitching
//! longer op windows against the one base CSR until the window grows
//! past a staleness bound and a warm re-peel stores a fresh base.
//!
//! Every success is **verified before it is published**: the reported
//! best set is re-scored against the *materialized* edge list of the
//! current snapshot (an end-to-end check that does not trust the
//! journal replay), exactly like the verified-replay tier re-scores its
//! candidate. A mismatch is a fallback, never a wrong answer.

use std::collections::HashMap;
use std::sync::Arc;

use dsg_core::directed::{DirectedRun, SweepResult};
use dsg_core::incremental::{
    simulate, AffectedAdjacency, IncPolicy, SimFallback, SimLimits, SimSuccess,
};
use dsg_core::kernel::PeelTrace;
use dsg_core::result::{DirectedPassStats, PassStats, UndirectedRun};
use dsg_graph::{density, CsrDirected, CsrUndirected, GraphKind};

use crate::catalog::CatalogEntry;
use crate::query::{Algorithm, Query};
use crate::report::Outcome;

/// Per-seed state of the incremental tier, stored inside a warm seed.
pub(crate) struct IncSeed {
    /// Snapshot the journal replay bases on: adjacency queries answer
    /// from its CSR plus the op window.
    pub base: Arc<CatalogEntry>,
    /// Journal position of the graph the traces describe. Starts at
    /// `base.journal_pos` and advances on every incremental hit.
    pub cur_pos: u64,
    /// The traces of the last (full or simulated) run.
    pub traces: TraceSet,
}

/// One trace per peeling run: undirected policies run once, directed
/// sweeps run once per grid ratio `c`.
pub(crate) enum TraceSet {
    Undirected(PeelTrace),
    Directed(Vec<(f64, PeelTrace)>),
}

/// Debug record of the engine's most recent incremental attempt —
/// surfaced by [`crate::Engine::last_incremental`] so the `repro
/// mutate` experiment can report affected-set sizes and fallback
/// reasons without new wire plumbing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalDebug {
    /// Final affected-set size: `|F|` of the hit, or the probe work
    /// spent before a fallback (0 on a pre-simulation fallback).
    pub affected: usize,
    /// Passes of the simulated run (0 on a fallback).
    pub passes: u32,
    /// The simulator's `max_affected` cap for this attempt (0 when the
    /// attempt never reached the simulator). The early-exit bound
    /// guarantees a threshold fallback reports
    /// `affected <= budget + 1`.
    pub budget: usize,
    /// `None` on a hit, the static fallback reason otherwise.
    pub reason: Option<&'static str>,
}

/// A verified incremental result, ready for report assembly.
pub(crate) struct IncOutcome {
    pub outcome: Outcome,
    /// Refreshed traces describing the new snapshot (the next seed).
    pub traces: TraceSet,
    pub affected: usize,
    pub passes: u32,
}

/// The replay tier's closeness test, reused for the re-score check.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * b.abs().max(1.0)
}

/// Attempts the incremental tier: simulate, verify, assemble. `ops` is
/// the journal window `base.journal_pos..entry.journal_pos` and
/// `cur_off` the offset of the trace's position within it.
pub(crate) fn attempt(
    inc: &IncSeed,
    ops: &[(bool, u32, u32)],
    cur_off: usize,
    entry: &CatalogEntry,
    query: &Query,
    threshold: f64,
) -> Result<IncOutcome, SimFallback> {
    let n_new = entry.list.num_nodes as usize;
    if ops[cur_off..].is_empty() {
        // Content changed without journaled ops: only reachable through
        // bookkeeping drift, so refuse rather than replay nothing.
        return Err("content changed but the journal window is empty".into());
    }
    let limits = SimLimits {
        max_affected: sim_budget(threshold, n_new),
        max_restarts: 64,
    };
    let adj = JournalAdjacency::build(&inc.base, entry.list.kind, ops, cur_off);
    // Affected-set seed: every delta endpoint plus every node id born
    // since the traced run (they have no recorded round to freeze).
    let seed_for = |t_n: u32| -> Vec<u32> {
        let mut s: Vec<u32> = ops[cur_off..]
            .iter()
            .flat_map(|&(_, u, v)| [u, v])
            .filter(|&u| (u as usize) < n_new)
            .collect();
        s.extend(t_n..n_new as u32);
        s.sort_unstable();
        s.dedup();
        s
    };

    match (query.algorithm, &inc.traces) {
        (
            Algorithm::Approx {
                epsilon,
                sketch: None,
            },
            TraceSet::Undirected(trace),
        ) => {
            let policy = IncPolicy::Threshold { epsilon };
            let sim = simulate(policy, trace, n_new, &seed_for(trace.n), &adj, limits)?;
            verify_undirected(&sim, entry)?;
            Ok(assemble_undirected(sim))
        }
        (Algorithm::AtLeastK { k, epsilon }, TraceSet::Undirected(trace)) => {
            let policy = IncPolicy::KFloor {
                k,
                epsilon: epsilon.max(1e-6),
            };
            let sim = simulate(policy, trace, n_new, &seed_for(trace.n), &adj, limits)?;
            verify_undirected(&sim, entry)?;
            Ok(assemble_undirected(sim))
        }
        (Algorithm::Directed { delta, epsilon }, TraceSet::Directed(traces)) => attempt_directed(
            traces, delta, epsilon, n_new, &seed_for, &adj, limits, entry,
        ),
        _ => Err("stored trace does not match the query".into()),
    }
}

/// The simulator's affected-set cap for a graph of `n_new` nodes at the
/// engine's incremental threshold — shared with the debug record so the
/// bench suite can assert the probe-overhead bound against it.
pub(crate) fn sim_budget(threshold: f64, n_new: usize) -> usize {
    ((threshold * n_new as f64) as usize).max(8)
}

/// Directed sweeps simulate one run per grid ratio. The δ-grid is a
/// function of the node count, so the node count must be unchanged —
/// otherwise the new cold run would sweep different ratios than the
/// seed has traces for.
#[allow(clippy::too_many_arguments)]
fn attempt_directed(
    traces: &[(f64, PeelTrace)],
    delta: f64,
    epsilon: f64,
    n_new: usize,
    seed_for: &dyn Fn(u32) -> Vec<u32>,
    adj: &JournalAdjacency,
    limits: SimLimits,
    entry: &CatalogEntry,
) -> Result<IncOutcome, SimFallback> {
    if traces.iter().any(|(_, t)| t.n as usize != n_new) {
        return Err("node count changed (the directed grid depends on it)".into());
    }
    // Regenerate the grid the cold run would sweep and require an exact
    // (bitwise) match with the seed's ratios.
    let n = n_new.max(2) as f64;
    let levels = (n.ln() / delta.ln()).ceil() as i32;
    if traces.len() != (2 * levels + 1) as usize {
        return Err("sweep grid changed since the seed".into());
    }
    let mut sims: Vec<SimSuccess> = Vec::with_capacity(traces.len());
    let mut per_c = Vec::with_capacity(traces.len());
    let mut affected = 0usize;
    for (i, (c, trace)) in traces.iter().enumerate() {
        if delta.powi(i as i32 - levels).to_bits() != c.to_bits() {
            return Err("sweep grid changed since the seed".into());
        }
        let policy = IncPolicy::DirectedSizes { c: *c, epsilon };
        let sim = simulate(policy, trace, n_new, &seed_for(trace.n), adj, limits)?;
        affected = affected.max(sim.affected);
        per_c.push((*c, sim.best_density, sim.passes));
        sims.push(sim);
    }
    // Replicate the sweep's strict-`>` best selection in grid order.
    let mut best_idx = 0usize;
    for (i, sim) in sims.iter().enumerate().skip(1) {
        if sim.best_density > sims[best_idx].best_density {
            best_idx = i;
        }
    }
    verify_directed(&sims[best_idx], entry)?;
    let mut new_traces: Vec<(f64, PeelTrace)> = Vec::with_capacity(traces.len());
    let mut best_run: Option<DirectedRun> = None;
    let mut best_passes = 0u32;
    for (i, sim) in sims.into_iter().enumerate() {
        let SimSuccess {
            trace,
            best_sides,
            best_density,
            passes,
            ..
        } = sim;
        if i == best_idx {
            let stats = trace
                .passes
                .iter()
                .enumerate()
                .map(|(j, p)| DirectedPassStats {
                    pass: (j + 1) as u32,
                    s_size: p.alive[0] as usize,
                    t_size: p.alive[1] as usize,
                    edges: p.total_weight as usize,
                    density: p.density,
                    removed_from_s: p.side == 0,
                    removed: p.removed as usize,
                })
                .collect();
            let mut sides = best_sides.into_iter();
            best_passes = passes;
            best_run = Some(DirectedRun {
                best_s: sides.next().expect("side S"),
                best_t: sides.next().expect("side T"),
                best_density,
                passes,
                c: traces[i].0,
                trace: stats,
            });
        }
        new_traces.push((traces[i].0, trace));
    }
    let best = best_run.expect("best index is in range");
    Ok(IncOutcome {
        outcome: Outcome::Sweep(SweepResult { best, per_c }),
        traces: TraceSet::Directed(new_traces),
        affected,
        passes: best_passes,
    })
}

/// Re-scores the simulated best set against the materialized snapshot.
fn verify_undirected(sim: &SimSuccess, entry: &CatalogEntry) -> Result<(), &'static str> {
    let set = &sim.best_sides[0];
    let mut w = 0u64;
    for &(u, v) in &entry.list.edges {
        if set.contains(u) && set.contains(v) {
            w += 1;
        }
    }
    if close(density::undirected(w as f64, set.len()), sim.best_density) {
        Ok(())
    } else {
        Err("re-score against the snapshot mismatched")
    }
}

/// Re-scores the simulated best `(S, T)` against the materialized
/// snapshot.
fn verify_directed(sim: &SimSuccess, entry: &CatalogEntry) -> Result<(), &'static str> {
    let (s, t) = (&sim.best_sides[0], &sim.best_sides[1]);
    let mut e = 0u64;
    for &(u, v) in &entry.list.edges {
        if s.contains(u) && t.contains(v) {
            e += 1;
        }
    }
    if close(
        density::directed(e as f64, s.len(), t.len()),
        sim.best_density,
    ) {
        Ok(())
    } else {
        Err("re-score against the snapshot mismatched")
    }
}

/// Builds the public run shape from a successful undirected simulation
/// (mirrors `UndirectedRun::from_kernel` field-for-field).
fn assemble_undirected(sim: SimSuccess) -> IncOutcome {
    let SimSuccess {
        trace,
        best_sides,
        best_density,
        best_pass,
        passes,
        affected,
        ..
    } = sim;
    let pass_stats = trace
        .passes
        .iter()
        .enumerate()
        .map(|(i, p)| PassStats {
            pass: (i + 1) as u32,
            nodes: p.alive[0] as usize,
            edge_weight: p.total_weight,
            density: p.density,
            threshold: p.threshold,
            removed: p.removed as usize,
        })
        .collect();
    let run = UndirectedRun {
        best_set: best_sides.into_iter().next().expect("one side"),
        best_density,
        best_pass,
        passes,
        trace: pass_stats,
    };
    IncOutcome {
        outcome: Outcome::Run(run),
        traces: TraceSet::Undirected(trace),
        affected,
        passes,
    }
}

/// What one journal op window says about one touched edge.
struct EdgeState {
    in_base: bool,
    /// Present in the graph the traces describe (base + ops before the
    /// trace's position).
    old: bool,
    /// Present in the current snapshot (base + the whole window).
    new: bool,
}

/// [`AffectedAdjacency`] over the base snapshot's CSR plus the journal
/// op window: last-op-wins presence per touched edge, base adjacency
/// for everything else. O(window) to build, O(deg + touched) per query.
struct JournalAdjacency {
    kind: GraphKind,
    csr_u: Option<Arc<CsrUndirected>>,
    csr_d: Option<Arc<CsrDirected>>,
    states: HashMap<(u32, u32), EdgeState>,
    /// Overlay-born (absent-from-base) edges incident per node: `[0]`
    /// undirected/out-adjacency, `[1]` directed in-adjacency.
    touch: [HashMap<u32, Vec<u32>>; 2],
}

impl JournalAdjacency {
    fn build(
        base: &CatalogEntry,
        kind: GraphKind,
        ops: &[(bool, u32, u32)],
        cur_off: usize,
    ) -> Self {
        let mut states: HashMap<(u32, u32), EdgeState> = HashMap::new();
        for (i, &(add, u, v)) in ops.iter().enumerate() {
            if u == v {
                continue; // self-loops are never stored
            }
            let key = canon(kind, u, v);
            let st = states.entry(key).or_insert_with(|| {
                let in_base = base.list.edges.binary_search(&key).is_ok();
                EdgeState {
                    in_base,
                    old: in_base,
                    new: in_base,
                }
            });
            if i < cur_off {
                st.old = add;
            }
            st.new = add;
        }
        let mut touch: [HashMap<u32, Vec<u32>>; 2] = [HashMap::new(), HashMap::new()];
        for (&(a, b), st) in &states {
            if st.in_base {
                continue; // base adjacency already enumerates it
            }
            touch[0].entry(a).or_default().push(b);
            match kind {
                GraphKind::Undirected => touch[0].entry(b).or_default().push(a),
                GraphKind::Directed => touch[1].entry(b).or_default().push(a),
            }
        }
        let (csr_u, csr_d) = match kind {
            GraphKind::Undirected => (Some(base.csr_undirected()), None),
            GraphKind::Directed => (None, Some(base.csr_directed())),
        };
        JournalAdjacency {
            kind,
            csr_u,
            csr_d,
            states,
            touch,
        }
    }

    fn collect(&self, u: u32, dir: usize, new: bool) -> Vec<u32> {
        let base_nb: &[u32] = match (&self.csr_u, &self.csr_d) {
            (Some(g), _) if (u as usize) < g.num_nodes() => g.neighbors(u),
            (_, Some(g)) if (u as usize) < g.num_nodes() => {
                if dir == 0 {
                    g.out_neighbors(u)
                } else {
                    g.in_neighbors(u)
                }
            }
            _ => &[], // a node born after the base snapshot
        };
        let key_of = |v: u32| match self.kind {
            GraphKind::Undirected => canon(self.kind, u, v),
            GraphKind::Directed if dir == 0 => (u, v),
            GraphKind::Directed => (v, u),
        };
        let mut out = Vec::with_capacity(base_nb.len() + 4);
        for &v in base_nb {
            match self.states.get(&key_of(v)) {
                Some(st) => {
                    if if new { st.new } else { st.old } {
                        out.push(v);
                    }
                }
                None => out.push(v),
            }
        }
        if let Some(list) = self.touch[dir].get(&u) {
            for &v in list {
                let st = &self.states[&key_of(v)];
                if if new { st.new } else { st.old } {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl AffectedAdjacency for JournalAdjacency {
    fn old_neighbors(&self, u: u32, dir: usize) -> Vec<u32> {
        self.collect(u, dir, false)
    }

    fn new_neighbors(&self, u: u32, dir: usize) -> Vec<u32> {
        self.collect(u, dir, true)
    }
}

/// Canonical edge key: `(min, max)` undirected, as-is directed —
/// exactly [`dsg_graph::DeltaGraph`]'s rule.
fn canon(kind: GraphKind, u: u32, v: u32) -> (u32, u32) {
    match kind {
        GraphKind::Undirected if u > v => (v, u),
        _ => (u, v),
    }
}
