//! The binary wire codec of the serve protocol: length-prefixed frames
//! negotiated per connection next to the line-delimited JSONL mode.
//!
//! ## Negotiation
//!
//! The first byte a connection sends picks its transport for the whole
//! session: [`MAGIC`] (`0xD5`, not valid UTF-8 as a JSON opener) selects
//! binary frames, anything else — in practice `{` — selects the JSONL
//! path, so every pre-existing client keeps working unchanged against a
//! server that speaks both.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       1     magic      0xD5
//! 1       1     version    1
//! 2       1     opcode     request kind / 0x81 reply (see [`Opcode`])
//! 3       1     reserved   must be 0
//! 4       4     length     payload bytes, u32 little-endian
//! 8       n     payload
//! ```
//!
//! A **request payload** is a flat field list mirroring the JSONL
//! request object (the `op` key is the opcode, everything else is a
//! tagged field): `[key][type][data]…` where `key` is a registered tag
//! byte (or `0xFF` + u16 length + UTF-8 bytes for unregistered keys) and
//! `type`/`data` encode the same scalar values the JSONL schema allows —
//! null, booleans, f64 little-endian, length-prefixed UTF-8 strings.
//! A **reply payload** is the UTF-8 JSON response object, byte-identical
//! to the line the JSONL path would have written (minus the trailing
//! newline) — the parity smoke tests decode both and compare.
//!
//! A [`Opcode::Batch`] request pipelines N requests in one frame:
//! `[opcode][u32 length][payload]…` — the server answers each item with
//! its own reply frame, in order, without waiting for the client to
//! read between them.
//!
//! ## Hostile input
//!
//! Decoding never panics and never allocates ahead of validation: a
//! length prefix above the frame-size cap is rejected **before** any
//! buffer grows ([`FrameError::Oversized`]), truncated input inside a
//! complete frame's payload is a typed [`FrameError::Truncated`], and a
//! truncated frame *prefix* is reported as "incomplete" (`Ok(None)` from
//! [`decode_frame`]) so stream readers just wait for more bytes. The
//! property suite in `crates/engine/tests/frame_props.rs` fuzzes these
//! contracts the same way `minijson_props.rs` fuzzes the JSON parser.

use crate::minijson::{FieldScratch, Value};

/// First byte of every binary frame; never the first byte of a JSONL
/// request (those start with `{` or whitespace), so one `read` settles
/// the transport.
pub const MAGIC: u8 = 0xD5;

/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;

/// Bytes of the fixed frame header (magic, version, opcode, reserved,
/// u32 length).
pub const HEADER_LEN: usize = 8;

/// Default frame-size cap: a hostile 4-byte length prefix can never
/// make the decoder allocate more than this.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Frame kinds. Requests mirror the JSONL `op` values one-to-one;
/// [`Opcode::Batch`] carries N pipelined requests; [`Opcode::Reply`] is
/// the single response kind (its payload says `ok` or carries the error,
/// exactly like a JSONL response line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Opcode {
    /// A density query (`"op":"query"`).
    Query,
    /// Server counters (`"op":"stats"`).
    Stats,
    /// Graceful shutdown (`"op":"shutdown"`).
    Shutdown,
    /// Create a named session graph (`"op":"create_graph"`).
    CreateGraph,
    /// Add edges to a session graph (`"op":"add_edges"`).
    AddEdges,
    /// Remove edges from a session graph (`"op":"remove_edges"`).
    RemoveEdges,
    /// Compact a session graph's delta log (`"op":"compact"`).
    Compact,
    /// N pipelined requests in one frame.
    Batch,
    /// A response frame (payload = the JSON response object).
    Reply,
}

impl Opcode {
    /// The wire byte.
    pub fn byte(self) -> u8 {
        match self {
            Opcode::Query => 0x01,
            Opcode::Stats => 0x02,
            Opcode::Shutdown => 0x03,
            Opcode::CreateGraph => 0x04,
            Opcode::AddEdges => 0x05,
            Opcode::RemoveEdges => 0x06,
            Opcode::Compact => 0x07,
            Opcode::Batch => 0x0F,
            Opcode::Reply => 0x81,
        }
    }

    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> Option<Opcode> {
        Some(match b {
            0x01 => Opcode::Query,
            0x02 => Opcode::Stats,
            0x03 => Opcode::Shutdown,
            0x04 => Opcode::CreateGraph,
            0x05 => Opcode::AddEdges,
            0x06 => Opcode::RemoveEdges,
            0x07 => Opcode::Compact,
            0x0F => Opcode::Batch,
            0x81 => Opcode::Reply,
            _ => return None,
        })
    }

    /// The JSONL `op` string this opcode mirrors (requests only).
    pub fn op_name(self) -> &'static str {
        match self {
            Opcode::Query => "query",
            Opcode::Stats => "stats",
            Opcode::Shutdown => "shutdown",
            Opcode::CreateGraph => "create_graph",
            Opcode::AddEdges => "add_edges",
            Opcode::RemoveEdges => "remove_edges",
            Opcode::Compact => "compact",
            Opcode::Batch => "batch",
            Opcode::Reply => "reply",
        }
    }

    /// Maps a JSONL `op` string to its request opcode (`batch`/`reply`
    /// are wire-level, not `op` values, and are not mapped).
    pub fn from_op_name(op: &str) -> Option<Opcode> {
        Some(match op {
            "query" => Opcode::Query,
            "stats" => Opcode::Stats,
            "shutdown" => Opcode::Shutdown,
            "create_graph" => Opcode::CreateGraph,
            "add_edges" => Opcode::AddEdges,
            "remove_edges" => Opcode::RemoveEdges,
            "compact" => Opcode::Compact,
            _ => return None,
        })
    }

    /// Whether this opcode may appear as a batch item (plain requests
    /// only: no nested batches, no replies).
    pub fn batchable(self) -> bool {
        !matches!(self, Opcode::Batch | Opcode::Reply)
    }
}

/// A typed decode failure. Every variant names what was rejected and
/// (where it helps) the byte offset, mirroring `minijson::JsonError` —
/// hostile bytes produce one of these, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// First byte was not [`MAGIC`] (the caller should have routed this
    /// connection to the JSONL path).
    BadMagic(u8),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Reserved header byte was nonzero.
    BadReserved(u8),
    /// The length prefix exceeds the frame-size cap; rejected before
    /// any allocation.
    Oversized {
        /// Payload length the header claimed.
        len: u64,
        /// The configured cap.
        cap: u64,
    },
    /// A complete frame's payload ended mid-field.
    Truncated {
        /// Byte offset into the payload at which input ran out.
        at: usize,
        /// What was being decoded.
        what: &'static str,
    },
    /// Unknown field-key tag byte.
    BadFieldKey {
        /// Byte offset into the payload.
        at: usize,
        /// The rejected tag.
        tag: u8,
    },
    /// Unknown value-type byte.
    BadFieldType {
        /// Byte offset into the payload.
        at: usize,
        /// The rejected type byte.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8 {
        /// Byte offset into the payload.
        at: usize,
    },
    /// A numeric field decoded to NaN/∞ (the JSONL schema rejects
    /// non-finite numbers; the binary schema matches).
    NonFinite {
        /// Byte offset into the payload.
        at: usize,
    },
    /// An opcode that cannot appear where it did (a reply sent as a
    /// request, a batch nested inside a batch).
    Misplaced(&'static str),
    /// Encode-side: the `op` string has no opcode.
    UnknownOp(String),
    /// Encode-side: a key or string value exceeds its length prefix.
    TooLong(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02x}"),
            FrameError::BadVersion(v) => {
                write!(f, "unsupported frame version {v} (expected {VERSION})")
            }
            FrameError::BadOpcode(b) => write!(f, "unknown frame opcode 0x{b:02x}"),
            FrameError::BadReserved(b) => write!(f, "nonzero reserved header byte 0x{b:02x}"),
            FrameError::Oversized { len, cap } => {
                write!(f, "frame length {len} exceeds the {cap}-byte cap")
            }
            FrameError::Truncated { at, what } => {
                write!(f, "frame payload truncated at byte {at} (decoding {what})")
            }
            FrameError::BadFieldKey { at, tag } => {
                write!(f, "unknown field-key tag 0x{tag:02x} at byte {at}")
            }
            FrameError::BadFieldType { at, tag } => {
                write!(f, "unknown value-type byte 0x{tag:02x} at byte {at}")
            }
            FrameError::BadUtf8 { at } => write!(f, "invalid UTF-8 in string at byte {at}"),
            FrameError::NonFinite { at } => write!(f, "non-finite number at byte {at}"),
            FrameError::Misplaced(what) => write!(f, "misplaced frame: {what}"),
            FrameError::UnknownOp(op) => write!(f, "op '{op}' has no frame opcode"),
            FrameError::TooLong(what) => write!(f, "{what} exceeds its length prefix"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Registered key tags: the flat request schema's field names, one byte
/// each on the wire. Unregistered keys still travel (tag `0xFF` + the
/// key bytes), so the binary schema is exactly as open as the JSONL one.
const KEYS: &[(u8, &str)] = &[
    (0x01, "id"),
    (0x02, "algorithm"),
    (0x03, "file"),
    (0x04, "graph"),
    (0x05, "epsilon"),
    (0x06, "k"),
    (0x07, "delta"),
    (0x08, "threads"),
    (0x09, "sketch"),
    (0x0A, "stream"),
    (0x0B, "binary"),
    (0x0C, "directed_input"),
    (0x0D, "backend"),
    (0x0E, "memory_budget"),
    (0x0F, "flow_backend"),
    (0x10, "min_density"),
    (0x11, "max_communities"),
    (0x12, "edges"),
    (0x13, "directed"),
];

/// Tag byte announcing an explicit (unregistered) key.
const KEY_OTHER: u8 = 0xFF;

fn key_tag(key: &str) -> Option<u8> {
    KEYS.iter().find(|(_, k)| *k == key).map(|(t, _)| *t)
}

fn key_name(tag: u8) -> Option<&'static str> {
    KEYS.iter().find(|(t, _)| *t == tag).map(|(_, k)| *k)
}

const TYPE_NULL: u8 = 0;
const TYPE_FALSE: u8 = 1;
const TYPE_TRUE: u8 = 2;
const TYPE_NUM: u8 = 3;
const TYPE_STR: u8 = 4;

/// Appends a frame header for `opcode`, returning the offset of the
/// length field; finish with [`end_frame`] once the payload is written.
pub fn begin_frame(opcode: Opcode, out: &mut Vec<u8>) -> usize {
    out.extend_from_slice(&[MAGIC, VERSION, opcode.byte(), 0]);
    let len_at = out.len();
    out.extend_from_slice(&[0; 4]);
    len_at
}

/// Patches the length field of a frame begun at `len_at` to cover every
/// byte appended since.
pub fn end_frame(out: &mut [u8], len_at: usize) {
    let len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes one request payload (no header) from parsed JSONL-style
/// fields; the `op` field itself is skipped — it travels as the opcode.
pub fn encode_request_payload(
    fields: &[(String, Value)],
    out: &mut Vec<u8>,
) -> Result<(), FrameError> {
    for (key, value) in fields {
        if key == "op" {
            continue;
        }
        match key_tag(key) {
            Some(tag) => out.push(tag),
            None => {
                let bytes = key.as_bytes();
                if bytes.len() > u16::MAX as usize {
                    return Err(FrameError::TooLong("field key"));
                }
                out.push(KEY_OTHER);
                out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
        match value {
            Value::Null => out.push(TYPE_NULL),
            Value::Bool(false) => out.push(TYPE_FALSE),
            Value::Bool(true) => out.push(TYPE_TRUE),
            Value::Num(n) => {
                out.push(TYPE_NUM);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Value::Str(s) => {
                let bytes = s.as_bytes();
                if bytes.len() > u32::MAX as usize {
                    return Err(FrameError::TooLong("string value"));
                }
                out.push(TYPE_STR);
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
    }
    Ok(())
}

/// Encodes one complete request frame from parsed JSONL-style fields
/// (`op` picked out of `op_name`). The JSONL request
/// `{"op":"query","file":"g.txt",…}` and
/// `encode_request("query", fields)` describe the same wire request.
pub fn encode_request(
    op_name: &str,
    fields: &[(String, Value)],
    out: &mut Vec<u8>,
) -> Result<(), FrameError> {
    let opcode =
        Opcode::from_op_name(op_name).ok_or_else(|| FrameError::UnknownOp(op_name.to_string()))?;
    let len_at = begin_frame(opcode, out);
    encode_request_payload(fields, out)?;
    end_frame(out, len_at);
    Ok(())
}

/// Appends one item to a batch payload under construction (opcode +
/// u32 length + request payload).
pub fn encode_batch_item(
    op_name: &str,
    fields: &[(String, Value)],
    batch_payload: &mut Vec<u8>,
) -> Result<(), FrameError> {
    let opcode =
        Opcode::from_op_name(op_name).ok_or_else(|| FrameError::UnknownOp(op_name.to_string()))?;
    batch_payload.push(opcode.byte());
    let len_at = batch_payload.len();
    batch_payload.extend_from_slice(&[0; 4]);
    encode_request_payload(fields, batch_payload)?;
    let len = (batch_payload.len() - len_at - 4) as u32;
    batch_payload[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
    Ok(())
}

/// Appends a standalone request frame from an already-encoded payload
/// (see [`encode_request_payload`]) — a pipelining client encodes each
/// request once and reuses the payload bytes across repeats.
pub fn encode_request_from_payload(opcode: Opcode, payload: &[u8], out: &mut Vec<u8>) {
    let len_at = begin_frame(opcode, out);
    out.extend_from_slice(payload);
    end_frame(out, len_at);
}

/// Appends one already-encoded item to a batch payload under
/// construction (the pre-encoded counterpart of [`encode_batch_item`]).
pub fn encode_batch_item_from_payload(opcode: Opcode, payload: &[u8], batch_payload: &mut Vec<u8>) {
    batch_payload.push(opcode.byte());
    batch_payload.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    batch_payload.extend_from_slice(payload);
}

/// Encodes a reply frame wrapping the JSON response object the JSONL
/// path would have written as a line.
pub fn encode_reply(json: &str, out: &mut Vec<u8>) {
    let len_at = begin_frame(Opcode::Reply, out);
    out.extend_from_slice(json.as_bytes());
    end_frame(out, len_at);
}

/// A decoded frame: `(opcode, payload, consumed)`, where `consumed`
/// covers header + payload.
pub type DecodedFrame<'a> = (Opcode, &'a [u8], usize);

/// Tries to decode one frame from the front of `buf`.
///
/// * `Ok(Some((opcode, payload, consumed)))` — a complete frame;
///   `consumed` covers header + payload.
/// * `Ok(None)` — `buf` holds a valid but incomplete prefix; read more.
/// * `Err(_)` — the prefix can never become a valid frame (bad magic /
///   version / opcode, or a length above `cap`); the connection cannot
///   be re-synchronized and should be closed after reporting the error.
pub fn decode_frame(buf: &[u8], cap: usize) -> Result<Option<DecodedFrame<'_>>, FrameError> {
    // Validate greedily: every header byte present is checked even when
    // the header is still incomplete, so a garbage prefix fails fast
    // instead of stalling until 8 bytes arrive.
    match buf.first() {
        None => return Ok(None),
        Some(&MAGIC) => {}
        Some(&b) => return Err(FrameError::BadMagic(b)),
    }
    if let Some(&v) = buf.get(1) {
        if v != VERSION {
            return Err(FrameError::BadVersion(v));
        }
    }
    let opcode = match buf.get(2) {
        None => return Ok(None),
        Some(&b) => Opcode::from_byte(b).ok_or(FrameError::BadOpcode(b))?,
    };
    if let Some(&r) = buf.get(3) {
        if r != 0 {
            return Err(FrameError::BadReserved(r));
        }
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > cap {
        return Err(FrameError::Oversized {
            len: len as u64,
            cap: cap as u64,
        });
    }
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    Ok(Some((
        opcode,
        &buf[HEADER_LEN..HEADER_LEN + len],
        HEADER_LEN + len,
    )))
}

/// Decodes a request payload into `scratch` (cleared first), reusing its
/// string allocations across requests. The result mirrors what
/// `minijson::parse_object` would have produced for the equivalent JSONL
/// request, minus the `op` field.
pub fn decode_request_payload(
    payload: &[u8],
    scratch: &mut FieldScratch,
) -> Result<(), FrameError> {
    scratch.reset();
    let mut pos = 0usize;
    while pos < payload.len() {
        let tag = payload[pos];
        pos += 1;
        let mut key = scratch.take_string();
        match tag {
            KEY_OTHER => {
                let len = read_u16(payload, &mut pos, "key length")? as usize;
                let bytes = read_bytes(payload, &mut pos, len, "key bytes")?;
                key.push_str(str_utf8(bytes, pos - len)?);
            }
            t => match key_name(t) {
                Some(name) => key.push_str(name),
                None => {
                    return Err(FrameError::BadFieldKey {
                        at: pos - 1,
                        tag: t,
                    })
                }
            },
        }
        let ty = *payload.get(pos).ok_or(FrameError::Truncated {
            at: pos,
            what: "value type",
        })?;
        pos += 1;
        let value = match ty {
            TYPE_NULL => Value::Null,
            TYPE_FALSE => Value::Bool(false),
            TYPE_TRUE => Value::Bool(true),
            TYPE_NUM => {
                let bytes = read_bytes(payload, &mut pos, 8, "f64 value")?;
                // read_bytes guarantees 8 bytes, but a typed error keeps
                // the decode path panic-free (dsg-lint: hot-path-panic).
                let arr = <&[u8; 8]>::try_from(bytes).map_err(|_| FrameError::Truncated {
                    at: pos - 8,
                    what: "f64 value",
                })?;
                let n = f64::from_le_bytes(*arr);
                if !n.is_finite() {
                    return Err(FrameError::NonFinite { at: pos - 8 });
                }
                Value::Num(n)
            }
            TYPE_STR => {
                let len = read_u32(payload, &mut pos, "string length")? as usize;
                let bytes = read_bytes(payload, &mut pos, len, "string bytes")?;
                let mut s = scratch.take_string();
                s.push_str(str_utf8(bytes, pos - len)?);
                Value::Str(s)
            }
            t => {
                return Err(FrameError::BadFieldType {
                    at: pos - 1,
                    tag: t,
                })
            }
        };
        scratch.push_field(key, value);
    }
    Ok(())
}

/// Iterates the items of a batch payload: `(opcode, item payload)`
/// pairs, each validated to be a plain request (no nested batches, no
/// replies).
pub struct BatchItems<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Iterates over a [`Opcode::Batch`] frame's payload.
pub fn batch_items(payload: &[u8]) -> BatchItems<'_> {
    BatchItems {
        buf: payload,
        pos: 0,
    }
}

impl<'a> Iterator for BatchItems<'a> {
    type Item = Result<(Opcode, &'a [u8]), FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let run = |buf: &'a [u8], pos: &mut usize| -> Result<(Opcode, &'a [u8]), FrameError> {
            let b = buf[*pos];
            *pos += 1;
            let opcode = Opcode::from_byte(b).ok_or(FrameError::BadOpcode(b))?;
            if !opcode.batchable() {
                return Err(FrameError::Misplaced(
                    "batch items must be plain requests (no nested batches or replies)",
                ));
            }
            let len = read_u32(buf, pos, "batch item length")? as usize;
            let bytes = read_bytes(buf, pos, len, "batch item payload")?;
            Ok((opcode, bytes))
        };
        let item = run(self.buf, &mut self.pos);
        if item.is_err() {
            self.pos = self.buf.len(); // stop after the first error
        }
        Some(item)
    }
}

fn read_bytes<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    len: usize,
    what: &'static str,
) -> Result<&'a [u8], FrameError> {
    let end = pos.checked_add(len).filter(|&e| e <= buf.len());
    match end {
        Some(end) => {
            let slice = &buf[*pos..end];
            *pos = end;
            Ok(slice)
        }
        None => Err(FrameError::Truncated { at: *pos, what }),
    }
}

fn read_u16(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u16, FrameError> {
    let b = read_bytes(buf, pos, 2, what)?;
    Ok(u16::from_le_bytes([b[0], b[1]]))
}

fn read_u32(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, FrameError> {
    let b = read_bytes(buf, pos, 4, what)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn str_utf8(bytes: &[u8], at: usize) -> Result<&str, FrameError> {
    std::str::from_utf8(bytes).map_err(|_| FrameError::BadUtf8 { at })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(pairs: &[(&str, Value)]) -> Vec<(String, Value)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn request_roundtrips_through_the_codec() {
        let f = fields(&[
            ("id", Value::Num(7.0)),
            ("algorithm", Value::Str("approx".into())),
            ("file", Value::Str("graphs/é 語.txt".into())),
            ("epsilon", Value::Num(0.5)),
            ("stream", Value::Bool(true)),
            ("custom_key", Value::Null),
        ]);
        let mut buf = Vec::new();
        encode_request("query", &f, &mut buf).unwrap();
        let (op, payload, consumed) = decode_frame(&buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(op, Opcode::Query);
        assert_eq!(consumed, buf.len());
        let mut scratch = FieldScratch::new();
        decode_request_payload(payload, &mut scratch).unwrap();
        assert_eq!(scratch.fields(), f.as_slice());
    }

    #[test]
    fn op_field_travels_as_the_opcode() {
        let f = fields(&[("op", Value::Str("stats".into())), ("id", Value::Num(1.0))]);
        let mut buf = Vec::new();
        encode_request("stats", &f, &mut buf).unwrap();
        let (op, payload, _) = decode_frame(&buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(op, Opcode::Stats);
        let mut scratch = FieldScratch::new();
        decode_request_payload(payload, &mut scratch).unwrap();
        // The op field is not duplicated into the payload.
        assert_eq!(scratch.fields().len(), 1);
        assert_eq!(scratch.fields()[0].0, "id");
    }

    #[test]
    fn incomplete_prefixes_wait_and_hostile_prefixes_fail_fast() {
        let f = fields(&[("id", Value::Num(1.0))]);
        let mut buf = Vec::new();
        encode_request("query", &f, &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert_eq!(
                decode_frame(&buf[..cut], DEFAULT_MAX_FRAME).unwrap(),
                None,
                "prefix of {cut} bytes must be incomplete, not an error"
            );
        }
        assert!(matches!(
            decode_frame(b"{\"op\":1}", DEFAULT_MAX_FRAME),
            Err(FrameError::BadMagic(b'{'))
        ));
        assert!(matches!(
            decode_frame(&[MAGIC, 9], DEFAULT_MAX_FRAME),
            Err(FrameError::BadVersion(9))
        ));
        assert!(matches!(
            decode_frame(&[MAGIC, VERSION, 0x7E], DEFAULT_MAX_FRAME),
            Err(FrameError::BadOpcode(0x7E))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = vec![MAGIC, VERSION, Opcode::Query.byte(), 0];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_frame(&buf, 1024).unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversized {
                len: u32::MAX as u64,
                cap: 1024,
            }
        );
    }

    #[test]
    fn batch_roundtrips_and_rejects_nesting() {
        let q = fields(&[("id", Value::Num(1.0)), ("graph", Value::Str("g".into()))]);
        let mut payload = Vec::new();
        encode_batch_item("query", &q, &mut payload).unwrap();
        encode_batch_item("stats", &[], &mut payload).unwrap();
        let items: Vec<_> = batch_items(&payload).collect::<Result<_, _>>().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].0, Opcode::Query);
        assert_eq!(items[1].0, Opcode::Stats);
        let mut scratch = FieldScratch::new();
        decode_request_payload(items[0].1, &mut scratch).unwrap();
        assert_eq!(scratch.fields(), q.as_slice());

        // A nested batch item is a typed error, not recursion.
        let mut nested = vec![Opcode::Batch.byte()];
        nested.extend_from_slice(&0u32.to_le_bytes());
        let errs: Vec<_> = batch_items(&nested).collect();
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], Err(FrameError::Misplaced(_))));
    }

    #[test]
    fn reply_wraps_json_bytes_exactly() {
        let json = r#"{"id":1,"ok":true,"result":{"density":2}}"#;
        let mut buf = Vec::new();
        encode_reply(json, &mut buf);
        let (op, payload, _) = decode_frame(&buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(op, Opcode::Reply);
        assert_eq!(payload, json.as_bytes());
    }

    #[test]
    fn scratch_reuse_keeps_results_identical() {
        let mut scratch = FieldScratch::new();
        let a = fields(&[("file", Value::Str("first-graph.txt".into()))]);
        let b = fields(&[("graph", Value::Str("x".into())), ("k", Value::Num(3.0))]);
        for f in [&a, &b, &a] {
            let mut payload = Vec::new();
            encode_request_payload(f, &mut payload).unwrap();
            decode_request_payload(&payload, &mut scratch).unwrap();
            assert_eq!(scratch.fields(), f.as_slice());
        }
    }
}
