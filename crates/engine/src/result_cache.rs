//! The query result cache: completed [`Report`]s keyed by *what was
//! computed over which bytes* — `(graph identity, canonical query,
//! effective resource policy)` — with byte-budgeted LRU eviction.
//!
//! The FOCUS-style observation (see PAPERS.md) is that analytical
//! query traffic is heavily repeated: the same densest-subgraph query
//! over the same graph arrives again and again from many clients. The
//! graph catalog removes the *load* from that path; this cache removes
//! the *computation*. A hit replays the stored report byte-for-byte
//! (minus the nondeterministic `elapsed_ms`), which is sound because
//! every cached backend is deterministic for a fixed key:
//!
//! * The **graph identity** ([`GraphId`]) covers both graph worlds. For
//!   file-backed graphs the fingerprint is the FNV-1a hash of the raw
//!   file bytes taken at load time by the catalog (version fixed at 0),
//!   so editing the file changes the key and stale results simply stop
//!   being referenced — invalidation is structural, not epochal — and
//!   age out of the LRU. For named session graphs the fingerprint names
//!   the graph and the catalog's **monotonic version** names its state:
//!   a mutation bumps the version, so a replay of a stale version is
//!   structurally impossible, and the engine additionally evicts the
//!   now-unreachable old-version entries eagerly
//!   ([`ResultCache::evict_stale_versions`]) so mutated graphs do not
//!   pin dead reports until LRU pressure finds them.
//! * The **canonical query** flattens every algorithm parameter to bit
//!   patterns (`f64::to_bits`), so `0.5` and `0.5` can never disagree
//!   and NaN params (rejected upstream anyway) would never alias.
//! * The **effective policy** (budget, threads) participates because the
//!   planner — and for parallel backends the result's provenance — is a
//!   function of it; the same query under a different policy may
//!   legitimately take a different backend.
//!
//! Only *materialized, file-backed* runs are cached: memory sources have
//! no fingerprint, and the out-of-core streamed backends exist precisely
//! because memory is scarce — their reports are cheap to recompute
//! relative to holding them, and caching them would require hashing the
//! file without loading it. The engine documents the same contract.

// Fx, not SipHash: the result map is probed once per served query and
// `CacheKey` hashes several words; the serve socket is a local unix
// socket with a trusted peer, so collision flooding is not a concern.
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dsg_flow::FlowBackend;
use dsg_graph::GraphKind;

use crate::query::{Algorithm, BackendRequest, Query, ResourcePolicy};
use crate::report::{Outcome, Report};

/// Default byte budget for cached reports (64 MiB).
pub const DEFAULT_RESULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// The identity of one graph state: which bytes, at which version.
///
/// File-backed graphs are identified by their content fingerprint alone
/// (`named = false`, `version = 0` — a file "mutates" by changing its
/// fingerprint). Named session graphs are identified by the name's
/// fingerprint plus the catalog's monotonically increasing version,
/// which is never reused — not even across eviction and re-creation of
/// the same name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GraphId {
    /// FNV-1a fingerprint: file bytes, or the graph name for sessions.
    pub fingerprint: u64,
    /// `true` for named session graphs (separate keyspace from files).
    pub named: bool,
    /// Catalog version of the graph state (0 for files).
    pub version: u64,
}

impl GraphId {
    /// Identity of a file-backed graph state.
    pub fn file(fingerprint: u64) -> Self {
        GraphId {
            fingerprint,
            named: false,
            version: 0,
        }
    }

    /// Identity of a named session graph at a catalog version.
    pub fn named(fingerprint: u64, version: u64) -> Self {
        GraphId {
            fingerprint,
            named: true,
            version,
        }
    }
}

/// Canonical, hashable form of one cacheable execution:
/// `(graph identity, orientation, query bits, policy)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    graph: GraphId,
    kind: GraphKind,
    algorithm: AlgorithmKey,
    backend: Option<BackendRequest>,
    memory_budget_bytes: Option<u64>,
    threads: usize,
}

/// [`Algorithm`] with every float flattened to its bit pattern so the
/// key is `Eq + Hash`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum AlgorithmKey {
    Approx {
        epsilon: u64,
        sketch: Option<u32>,
    },
    AtLeastK {
        k: usize,
        epsilon: u64,
    },
    Directed {
        delta: u64,
        epsilon: u64,
    },
    Charikar,
    Exact {
        push_relabel: bool,
    },
    Enumerate {
        epsilon: u64,
        min_density: u64,
        max_communities: usize,
    },
}

impl CacheKey {
    /// Builds the key for a materialized run of `query` under `policy`
    /// over the graph state identified by `graph`, oriented as `kind`.
    pub fn new(graph: GraphId, kind: GraphKind, query: &Query, policy: &ResourcePolicy) -> Self {
        let algorithm = match query.algorithm {
            Algorithm::Approx { epsilon, sketch } => AlgorithmKey::Approx {
                epsilon: epsilon.to_bits(),
                sketch,
            },
            Algorithm::AtLeastK { k, epsilon } => AlgorithmKey::AtLeastK {
                k,
                epsilon: epsilon.to_bits(),
            },
            Algorithm::Directed { delta, epsilon } => AlgorithmKey::Directed {
                delta: delta.to_bits(),
                epsilon: epsilon.to_bits(),
            },
            Algorithm::Charikar => AlgorithmKey::Charikar,
            Algorithm::Exact { flow } => AlgorithmKey::Exact {
                push_relabel: matches!(flow, FlowBackend::PushRelabel),
            },
            Algorithm::Enumerate {
                epsilon,
                min_density,
                max_communities,
            } => AlgorithmKey::Enumerate {
                epsilon: epsilon.to_bits(),
                min_density: min_density.to_bits(),
                max_communities,
            },
        };
        CacheKey {
            graph,
            kind,
            algorithm,
            backend: query.backend,
            memory_budget_bytes: policy.memory_budget_bytes,
            threads: policy.threads,
        }
    }

    /// The same key with the graph version zeroed — the engine's
    /// warm-seed index, which tracks "this query over this graph, at
    /// whatever version last ran".
    pub fn versionless(&self) -> CacheKey {
        let mut key = self.clone();
        key.graph.version = 0;
        key
    }

    /// The graph-identity half of the key.
    pub fn graph(&self) -> GraphId {
        self.graph
    }
}

/// Hit/miss/eviction counters, surfaced by the serve mode's `stats` op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (the run was computed and, if it fit, stored).
    pub misses: u64,
    /// Reports stored.
    pub insertions: u64,
    /// Reports evicted to respect the byte budget.
    pub evictions: u64,
    /// Reports currently held.
    pub entries: u64,
    /// Estimated bytes currently held.
    pub bytes: u64,
}

struct CachedReport {
    report: std::sync::Arc<Report>,
    bytes: u64,
    last_used: u64,
}

struct Inner {
    map: FxHashMap<CacheKey, CachedReport>,
    total_bytes: u64,
    clock: u64,
}

/// The cache itself: a byte-budgeted LRU map behind a [`Mutex`], plus
/// atomic counters (and the budget) readable without the lock. Reports
/// are held as `Arc`s and every deep clone — storing a report, patching
/// a replay — happens *outside* the lock, so the critical sections are
/// map operations only (a few microseconds) and a pool of workers
/// replaying a large hot result does not serialize on its memcpy.
pub struct ResultCache {
    inner: Mutex<Inner>,
    /// Per-fingerprint version floors recorded by
    /// [`ResultCache::evict_stale_versions`]: a named-graph insert below
    /// its fingerprint's floor is rejected, so a query that resolved an
    /// old version and finished *after* the mutation's eager eviction
    /// cannot re-pin an unreachable entry. Bounded; losing floors only
    /// degrades to ordinary LRU reclamation.
    floors: Mutex<FxHashMap<u64, u64>>,
    budget_bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::with_budget(DEFAULT_RESULT_CACHE_BYTES)
    }
}

impl ResultCache {
    /// A cache bounded at `budget_bytes` of estimated report payload.
    /// A budget of 0 disables caching (every lookup misses, nothing is
    /// stored).
    pub fn with_budget(budget_bytes: u64) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                total_bytes: 0,
                clock: 0,
            }),
            floors: Mutex::new(FxHashMap::default()),
            budget_bytes: AtomicU64::new(budget_bytes),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Re-bounds the cache, evicting LRU entries if the new budget is
    /// smaller than the current payload.
    pub fn set_budget(&self, budget_bytes: u64) {
        self.budget_bytes.store(budget_bytes, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("result cache lock poisoned");
        let evicted = inner.evict_to_fit(0, budget_bytes);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// The current byte budget (see [`ResultCache::set_budget`]) — read
    /// when cloning one cache's tuning onto another, e.g. when the
    /// sharded server stamps per-shard engines from a template.
    pub fn budget(&self) -> u64 {
        self.budget_bytes.load(Ordering::Relaxed)
    }

    /// Counters so far.
    pub fn stats(&self) -> ResultCacheStats {
        let (entries, bytes) = {
            let inner = self.inner.lock().expect("result cache lock poisoned");
            (inner.map.len() as u64, inner.total_bytes)
        };
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }

    /// Looks `key` up, returning a replay of the stored report: the
    /// clone is byte-identical to the cold run except `elapsed_ms`
    /// (stamped by the caller) and the `source_label`, which is reset to
    /// the *requesting* source so two paths with identical bytes each
    /// see their own path echoed.
    pub fn lookup(&self, key: &CacheKey, source_label: &str) -> Option<Report> {
        let stored = self.lookup_shared(key, source_label)?;
        let mut report = (*stored).clone();
        report.result_cache_hit = Some(true);
        Some(report)
    }

    /// Like [`lookup`](Self::lookup), but returns the stored report
    /// *shared* — no deep clone on the steady-state path. The caller
    /// must treat the report as the cached run's verbatim record
    /// (`elapsed_ms`, `cache_hit`, and `result_cache_hit` describe the
    /// cold run, not this request) and carry per-request values
    /// separately; the serve loop does exactly that when assembling a
    /// reply envelope. When `source_label` differs from the stored one,
    /// a patched clone is returned instead so the rendered `file` field
    /// echoes the requesting path.
    pub fn lookup_shared(&self, key: &CacheKey, source_label: &str) -> Option<Arc<Report>> {
        // Only the Arc clone happens under the lock; any deep clone
        // (label aliasing only) runs after it is released.
        let hit = {
            let mut inner = self.inner.lock().expect("result cache lock poisoned");
            inner.clock += 1;
            let clock = inner.clock;
            inner.map.get_mut(key).map(|cached| {
                cached.last_used = clock;
                cached.report.clone()
            })
        };
        match hit {
            Some(stored) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if stored.source_label == source_label {
                    Some(stored)
                } else {
                    // The label is rendered (the `file` field), so a
                    // replay under an aliased path cannot share the
                    // stored report's memoized rendering.
                    let mut report = (*stored).clone();
                    report.source_label = source_label.to_string();
                    report.rendered = Default::default();
                    Some(Arc::new(report))
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Eagerly drops every entry of the named graph `fingerprint` whose
    /// version is below `current_version`. Mutated versions are already
    /// unreachable through lookups (the version is part of the key);
    /// this reclaims their bytes immediately instead of waiting for LRU
    /// pressure. Returns how many entries were dropped (counted as
    /// evictions).
    pub fn evict_stale_versions(&self, fingerprint: u64, current_version: u64) -> u64 {
        {
            // Record the floor first: an insert racing this eviction
            // either lands before (and is evicted below) or after (and
            // is rejected by the floor) — never pinned unreachable.
            let mut floors = self.floors.lock().expect("result cache lock poisoned");
            if floors.len() >= 1024 && !floors.contains_key(&fingerprint) {
                floors.clear();
            }
            let floor = floors.entry(fingerprint).or_insert(0);
            *floor = (*floor).max(current_version);
        }
        let evicted = {
            let mut inner = self.inner.lock().expect("result cache lock poisoned");
            let stale: Vec<CacheKey> = inner
                .map
                .keys()
                .filter(|k| {
                    k.graph.named
                        && k.graph.fingerprint == fingerprint
                        && k.graph.version < current_version
                })
                .cloned()
                .collect();
            let mut evicted = 0u64;
            for key in stale {
                if let Some(old) = inner.map.remove(&key) {
                    inner.total_bytes -= old.bytes;
                    evicted += 1;
                }
            }
            evicted
        };
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Stores a completed report under `key`. Reports larger than the
    /// whole budget are not cached (they would evict everything for one
    /// entry); otherwise LRU entries are evicted until the report fits.
    pub fn insert(&self, key: CacheKey, report: &Report) {
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        let bytes = approx_report_bytes(report);
        if bytes > budget {
            return;
        }
        if key.graph.named {
            let floors = self.floors.lock().expect("result cache lock poisoned");
            if floors
                .get(&key.graph.fingerprint)
                .is_some_and(|&floor| key.graph.version < floor)
            {
                // The graph has already mutated past this version; the
                // entry could never be looked up again.
                return;
            }
        }
        // Deep-clone before taking the lock (see the struct docs).
        let stored = std::sync::Arc::new(report.clone());
        let evicted = {
            let mut inner = self.inner.lock().expect("result cache lock poisoned");
            // Discount the entry being replaced *before* deciding what
            // to evict, or a same-size refresh of a hot key at full
            // budget would needlessly flush an unrelated LRU entry.
            if let Some(prev) = inner.map.remove(&key) {
                inner.total_bytes -= prev.bytes;
            }
            let evicted = inner.evict_to_fit(bytes, budget);
            inner.clock += 1;
            let clock = inner.clock;
            inner.map.insert(
                key,
                CachedReport {
                    report: stored,
                    bytes,
                    last_used: clock,
                },
            );
            inner.total_bytes += bytes;
            evicted
        };
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }
}

impl Inner {
    /// Evicts LRU entries until `incoming` more bytes fit the budget;
    /// returns how many were evicted.
    fn evict_to_fit(&mut self, incoming: u64, budget_bytes: u64) -> u64 {
        let mut evicted = 0;
        while !self.map.is_empty() && self.total_bytes + incoming > budget_bytes {
            if let Some(key) = self
                .map
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(k, _)| k.clone())
            {
                if let Some(old) = self.map.remove(&key) {
                    self.total_bytes -= old.bytes;
                    evicted += 1;
                }
            }
        }
        evicted
    }
}

/// Estimated resident bytes of a cached report: a fixed overhead for the
/// struct and map entry, the label and plan strings, plus the outcome's
/// heap payload (node-set bitsets at `capacity/8`, per-pass traces).
/// This is an accounting estimate for the LRU budget, not `malloc`
/// truth; it is deliberately on the generous side.
fn approx_report_bytes(report: &Report) -> u64 {
    const FIXED: u64 = 512;
    let strings = report.source_label.len() as u64
        + report
            .plan
            .reasons
            .iter()
            .map(|r| r.len() as u64)
            .sum::<u64>();
    let set_bytes = |capacity: usize| -> u64 { (capacity as u64).div_ceil(8) + 32 };
    let outcome = match &report.outcome {
        Outcome::Run(r) => set_bytes(r.best_set.capacity()) + 64 * r.trace.len() as u64,
        Outcome::Sweep(s) => {
            set_bytes(s.best.best_s.capacity())
                + set_bytes(s.best.best_t.capacity())
                + 24 * s.per_c.len() as u64
        }
        Outcome::Charikar(r) => set_bytes(r.best_set.capacity()) + 4 * r.peel_order.len() as u64,
        Outcome::Exact(r) => set_bytes(r.set.capacity()),
        Outcome::Communities(cs) => cs
            .iter()
            .map(|c| set_bytes(c.nodes.capacity()) + 16)
            .sum::<u64>(),
        Outcome::MapReduce(r) => set_bytes(r.best_set.capacity()) + 128 * r.reports.len() as u64,
    };
    FIXED + strings + outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Backend, Plan};

    fn dummy_report(label: &str, density: f64, set_capacity: usize) -> Report {
        Report {
            query: Query::new(Algorithm::Charikar),
            source_label: label.to_string(),
            graph_nodes: set_capacity as u64,
            graph_edges: 0,
            plan: Plan {
                backend: Backend::InMemorySerial,
                est_working_bytes: 0,
                est_in_memory_bytes: 0,
                budget_bytes: None,
                reasons: vec!["test".into()],
            },
            outcome: Outcome::Charikar(dsg_core::charikar::CharikarResult {
                best_set: dsg_graph::NodeSet::empty(set_capacity),
                best_density: density,
                peel_order: Vec::new(),
            }),
            threads: 1,
            sketch_words: None,
            state_bytes: None,
            shuffle: None,
            cache_hit: Some(false),
            result_cache_hit: Some(false),
            elapsed_ms: 1.0,
            rendered: Default::default(),
        }
    }

    fn key(fp: u64) -> CacheKey {
        CacheKey::new(
            GraphId::file(fp),
            GraphKind::Undirected,
            &Query::new(Algorithm::Charikar),
            &ResourcePolicy::default(),
        )
    }

    fn named_key(fp: u64, version: u64) -> CacheKey {
        CacheKey::new(
            GraphId::named(fp, version),
            GraphKind::Undirected,
            &Query::new(Algorithm::Charikar),
            &ResourcePolicy::default(),
        )
    }

    #[test]
    fn lookup_replays_with_fresh_label_and_hit_marker() {
        let cache = ResultCache::default();
        assert!(cache.lookup(&key(1), "a.txt").is_none());
        cache.insert(key(1), &dummy_report("a.txt", 2.0, 64));
        let replay = cache.lookup(&key(1), "other/route/to/a.txt").unwrap();
        assert_eq!(replay.source_label, "other/route/to/a.txt");
        assert_eq!(replay.result_cache_hit, Some(true));
        assert_eq!(replay.density(), 2.0);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn distinct_policies_and_params_are_distinct_keys() {
        let q = Query::new(Algorithm::Approx {
            epsilon: 0.5,
            sketch: None,
        });
        let p1 = ResourcePolicy::default();
        let p2 = ResourcePolicy {
            memory_budget_bytes: None,
            threads: 4,
        };
        let k1 = CacheKey::new(GraphId::file(7), GraphKind::Undirected, &q, &p1);
        let k2 = CacheKey::new(GraphId::file(7), GraphKind::Undirected, &q, &p2);
        assert_ne!(k1, k2, "threads are part of the effective policy");
        let q2 = Query::new(Algorithm::Approx {
            epsilon: 0.25,
            sketch: None,
        });
        assert_ne!(
            k1,
            CacheKey::new(GraphId::file(7), GraphKind::Undirected, &q2, &p1),
            "epsilon is part of the canonical query"
        );
        assert_ne!(
            k1,
            CacheKey::new(GraphId::file(8), GraphKind::Undirected, &q, &p1),
            "fingerprint is part of the key"
        );
        assert_ne!(
            k1,
            CacheKey::new(GraphId::named(7, 0), GraphKind::Undirected, &q, &p1),
            "session graphs live in a separate keyspace from files"
        );
        assert_ne!(
            CacheKey::new(GraphId::named(7, 1), GraphKind::Undirected, &q, &p1),
            CacheKey::new(GraphId::named(7, 2), GraphKind::Undirected, &q, &p1),
            "the version is part of the key"
        );
        assert_eq!(
            k1,
            CacheKey::new(GraphId::file(7), GraphKind::Undirected, &q, &p1)
        );
    }

    #[test]
    fn stale_versions_are_evicted_eagerly() {
        let cache = ResultCache::default();
        cache.insert(named_key(9, 1), &dummy_report("g", 1.0, 64));
        cache.insert(named_key(9, 2), &dummy_report("g", 2.0, 64));
        cache.insert(named_key(9, 3), &dummy_report("g", 3.0, 64));
        // A different graph and a file entry with the same fingerprint
        // must both survive.
        cache.insert(named_key(10, 1), &dummy_report("h", 4.0, 64));
        cache.insert(key(9), &dummy_report("f", 5.0, 64));
        let dropped = cache.evict_stale_versions(9, 3);
        assert_eq!(dropped, 2, "versions 1 and 2 are stale");
        assert!(cache.lookup(&named_key(9, 3), "g").is_some());
        assert!(cache.lookup(&named_key(9, 1), "g").is_none());
        assert!(cache.lookup(&named_key(9, 2), "g").is_none());
        assert!(cache.lookup(&named_key(10, 1), "h").is_some());
        assert!(cache.lookup(&key(9), "f").is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 3);
        // Byte accounting stays balanced after the eager eviction.
        let one = approx_report_bytes(&dummy_report("g", 1.0, 64));
        let f = approx_report_bytes(&dummy_report("f", 5.0, 64));
        let h = approx_report_bytes(&dummy_report("h", 4.0, 64));
        assert_eq!(stats.bytes, one + f + h);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        // Each dummy report is ~FIXED + label + set bytes; budget fits
        // roughly two of them.
        let one = approx_report_bytes(&dummy_report("x", 1.0, 64));
        let cache = ResultCache::with_budget(2 * one + one / 2);
        cache.insert(key(1), &dummy_report("x", 1.0, 64));
        cache.insert(key(2), &dummy_report("x", 2.0, 64));
        // Touch 1 so 2 is LRU, then overflow.
        assert!(cache.lookup(&key(1), "x").is_some());
        cache.insert(key(3), &dummy_report("x", 3.0, 64));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(cache.lookup(&key(2), "x").is_none(), "2 was evicted");
        assert!(cache.lookup(&key(1), "x").is_some());
        assert!(cache.lookup(&key(3), "x").is_some());
        assert!(stats.bytes <= 2 * one + one / 2);
    }

    #[test]
    fn inserts_below_the_eviction_floor_are_rejected() {
        // A query that resolved version 1 but finished after the
        // mutation to version 2 already ran its eager eviction must not
        // re-pin an unreachable version-1 entry.
        let cache = ResultCache::default();
        cache.evict_stale_versions(9, 2);
        cache.insert(named_key(9, 1), &dummy_report("g", 1.0, 64));
        assert_eq!(cache.stats().entries, 0, "below-floor insert rejected");
        cache.insert(named_key(9, 2), &dummy_report("g", 2.0, 64));
        assert_eq!(cache.stats().entries, 1, "current version still caches");
        // File entries and other graphs are unaffected by the floor.
        cache.insert(key(9), &dummy_report("f", 3.0, 64));
        cache.insert(named_key(10, 1), &dummy_report("h", 4.0, 64));
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn oversized_reports_and_zero_budget_skip_caching() {
        let cache = ResultCache::with_budget(0);
        cache.insert(key(1), &dummy_report("x", 1.0, 64));
        assert_eq!(cache.stats().entries, 0, "budget 0 disables the cache");
        assert!(cache.lookup(&key(1), "x").is_none());

        let small = ResultCache::with_budget(64);
        small.insert(key(2), &dummy_report("x", 1.0, 1 << 20));
        assert_eq!(
            small.stats().entries,
            0,
            "a report larger than the whole budget is not cached"
        );
    }

    #[test]
    fn refreshing_a_key_at_full_budget_evicts_nothing() {
        let one = approx_report_bytes(&dummy_report("x", 1.0, 64));
        let cache = ResultCache::with_budget(2 * one);
        cache.insert(key(1), &dummy_report("x", 1.0, 64));
        cache.insert(key(2), &dummy_report("x", 2.0, 64));
        // Re-inserting key 1 replaces in place: the budget stays
        // balanced, so key 2 must survive.
        cache.insert(key(1), &dummy_report("x", 1.5, 64));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0, "same-size refresh is not an eviction");
        assert_eq!(stats.entries, 2);
        assert!(cache.lookup(&key(2), "x").is_some(), "2 must survive");
        assert_eq!(cache.lookup(&key(1), "x").unwrap().density(), 1.5);
    }

    #[test]
    fn reinserting_a_key_replaces_without_leaking_bytes() {
        let cache = ResultCache::default();
        cache.insert(key(1), &dummy_report("x", 1.0, 64));
        let before = cache.stats().bytes;
        cache.insert(key(1), &dummy_report("x", 2.0, 64));
        assert_eq!(cache.stats().bytes, before, "replacement, not accumulation");
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.lookup(&key(1), "x").unwrap().density(), 2.0);
    }
}
