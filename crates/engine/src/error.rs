//! Engine error type: every failure is a value with a stable message —
//! callers (CLI, serve loop) render it, never a panic.

use dsg_graph::GraphError;

/// Why a query could not be planned or executed.
#[derive(Debug)]
pub enum EngineError {
    /// The graph source could not be opened / read / validated.
    Graph(GraphError),
    /// A file stream failed mid-run (I/O error, file modified between
    /// passes); results computed across the failed pass were discarded.
    StreamFailed(GraphError),
    /// The query's parameters are invalid (named in the message).
    InvalidQuery(String),
    /// The requested backend (or parameter combination) is not available
    /// for this algorithm.
    Unsupported(String),
    /// Algorithm 2's size floor exceeds the graph's node count.
    KTooLarge {
        /// The requested floor.
        k: usize,
        /// The graph's node count.
        n: u64,
    },
    /// A named-graph op referenced a session graph the catalog does not
    /// hold (never created, or already evicted).
    UnknownGraph {
        /// The requested graph name.
        name: String,
    },
    /// `create_graph` named a session graph that already exists.
    GraphExists {
        /// The conflicting graph name.
        name: String,
    },
    /// The durability layer failed: the data dir could not be opened or
    /// recovered, or a WAL append / snapshot write hit an I/O error. On
    /// an append failure the in-memory state may be **ahead** of disk
    /// until the next successful append or a restart replays the log.
    Persistence(String),
    /// The named graph was evicted (or replaced by a re-creation) while
    /// a mutation was in flight: the delta was **not** applied to any
    /// live catalog entry, and the caller must retry against the current
    /// graph instead of assuming the write landed.
    StaleGraph {
        /// The graph name whose entry went stale mid-mutation.
        name: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Graph(e) => write!(f, "{e}"),
            EngineError::StreamFailed(e) => write!(f, "stream failed: {e}"),
            EngineError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            EngineError::Unsupported(msg) => write!(f, "{msg}"),
            EngineError::KTooLarge { k, n } => {
                write!(f, "k {k} exceeds the graph's {n} nodes")
            }
            EngineError::UnknownGraph { name } => {
                write!(f, "unknown graph '{name}' (create_graph it first)")
            }
            EngineError::GraphExists { name } => {
                write!(f, "graph '{name}' already exists")
            }
            EngineError::Persistence(msg) => write!(f, "durability error: {msg}"),
            EngineError::StaleGraph { name } => {
                write!(
                    f,
                    "graph '{name}' was evicted mid-mutation; the delta was not applied — retry"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
