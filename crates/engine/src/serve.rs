//! Long-running JSONL serve mode: one request object per line in, one
//! response object per line out, over stdin/stdout or a Unix socket.
//!
//! Repeated queries against the same file are answered from the
//! engine's [`crate::GraphCatalog`] — the graph is loaded and
//! canonicalized once (single-flight even under concurrency), then
//! every further query is a cache hit — and repeated *identical*
//! queries are replayed from the engine's [`crate::ResultCache`]
//! without recomputing (the `loads` / `result_cache_hit` counters in
//! each response make both observable, and the CI smoke tests assert
//! them).
//!
//! ## Concurrency
//!
//! Socket mode runs an **accept thread plus a bounded worker pool**
//! ([`ServeOptions`]): accepted connections are handed to `workers`
//! worker threads over a bounded channel of `max_connections` pending
//! connections — when every worker is busy and the queue is full, the
//! accept thread itself blocks, which is the backpressure (clients
//! queue in the socket backlog instead of overwhelming the server).
//! All workers share one [`Engine`] (`&Engine` — the engine is
//! internally synchronized). A `shutdown` op stops the accept thread,
//! drains in-flight queries (each worker finishes the request it is
//! executing and writes its response), closes idle connections, and
//! removes the socket file. The socket file is removed by an RAII
//! guard, so it disappears even when the serve loop exits through an
//! error path or a panic.
//!
//! ## Protocol
//!
//! Requests are **flat** JSON objects (see [`crate::minijson`]):
//!
//! ```text
//! {"op":"query","id":1,"algorithm":"approx","file":"g.txt","epsilon":0.5}
//! {"op":"query","id":2,"algorithm":"atleast-k","file":"g.txt","k":8}
//! {"op":"create_graph","id":3,"graph":"live","edges":"0 1, 1 2"}
//! {"op":"add_edges","id":4,"graph":"live","edges":"0 2, 2 3"}
//! {"op":"query","id":5,"algorithm":"approx","graph":"live"}
//! {"op":"remove_edges","id":6,"graph":"live","edges":"2 3"}
//! {"op":"compact","id":7,"graph":"live"}
//! {"op":"stats","id":8}
//! {"op":"shutdown"}
//! ```
//!
//! `op` defaults to `"query"`. Query fields mirror the CLI flags:
//! `algorithm`, `file` **or** `graph` (exactly one), `epsilon`, `k`,
//! `delta`, `threads`, `sketch`, `stream`, `binary`, `directed_input`,
//! `backend`, `memory_budget`, `flow_backend`, `min_density`,
//! `max_communities`. Omitted fields take the CLI defaults (ε = 0.5,
//! k = 10, δ = 2) or the server's resource policy.
//!
//! ## Mutable graph sessions
//!
//! `create_graph` makes a named in-memory mutable graph (`"directed"`
//! for orientation, optional seed `"edges"`); `add_edges` /
//! `remove_edges` mutate it and `compact` folds its delta logs. The
//! protocol stays flat: a batched edge list is one string of
//! whitespace- (and optionally comma-) separated `u v` pairs, e.g.
//! `"edges":"0 1, 1 2, 2 3"`. Every state-changing op returns the
//! graph's new **version**; queries name the graph via `"graph"` and
//! always run against one consistent versioned snapshot — a mutation
//! arriving mid-query never tears it, and the result cache keys on
//! `(graph, version)` so a bumped version can never replay a stale
//! result (observable as `result_cache_hit: 0` on the first query after
//! a mutation).
//!
//! A query response nests the **identical** summary object the one-shot
//! CLI prints with `--json` (minus the nondeterministic `elapsed_ms`),
//! so serve-mode results are byte-comparable to one-shot runs:
//!
//! ```text
//! {"id":1,"ok":true,"result":{...},"cache_hit":1,"result_cache_hit":0,"loads":1,"elapsed_ms":0.3}
//! ```
//!
//! The `stats` op reports the catalog counters (`loads`, `hits`,
//! `stat_scans`, `evictions`, `graphs`), the result-cache counters
//! (`result_hits`, `result_misses`, `result_insertions`,
//! `result_evictions`, `result_entries`, `result_bytes`), the
//! connection accounting (`conn_active`, `conn_peak` — the
//! concurrent-connection high-water mark), the session accounting
//! (`mutations`, `graphs_named`, warm-restart `warm_hits` /
//! `warm_fallbacks`), and a `named` array with one object per session
//! graph (`name`, `version`, `nodes`, `edges`, `delta_edges`,
//! `compactions`, `warm_hits`, `warm_fallbacks`).
//!
//! Errors never kill the loop: `{"id":…,"ok":false,"error":"…"}` and the
//! next line is read. The loop ends cleanly on EOF (stdin mode: client
//! closed the pipe — the SIGTERM-equivalent close) or on a `shutdown`
//! op (socket mode, where EOF only ends one connection).

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dsg_flow::FlowBackend;

use crate::engine::Engine;
use crate::minijson::{self, Value};
use crate::query::{Algorithm, BackendRequest, Query, ResourcePolicy, Source};
use crate::report::JsonBuilder;

/// Worker-pool sizing of the socket serve mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads serving connections concurrently (clamped ≥ 1).
    pub workers: usize,
    /// Bound of the pending-connection queue between the accept thread
    /// and the workers (clamped ≥ 1). A full queue blocks the accept
    /// thread — that is the backpressure.
    pub max_connections: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            max_connections: 64,
        }
    }
}

/// Shared serve-side accounting: request counters, the shutdown latch,
/// and the concurrent-connection high-water mark. One instance is
/// shared by every worker of a [`serve_unix`] run and surfaced by the
/// `stats` op.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    queries: AtomicU64,
    mutations: AtomicU64,
    errors: AtomicU64,
    shutdown: AtomicBool,
    active_connections: AtomicU64,
    peak_connections: AtomicU64,
    total_connections: AtomicU64,
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a `shutdown` op has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Latches the shutdown flag (it is never cleared).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Concurrent connections being served right now.
    pub fn active_connections(&self) -> u64 {
        self.active_connections.load(Ordering::Relaxed)
    }

    /// The concurrent-connection high-water mark.
    pub fn peak_connections(&self) -> u64 {
        self.peak_connections.load(Ordering::Relaxed)
    }

    fn connection_opened(&self) {
        self.total_connections.fetch_add(1, Ordering::Relaxed);
        let now = self.active_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(now, Ordering::Relaxed);
    }

    fn connection_closed(&self) {
        self.active_connections.fetch_sub(1, Ordering::Relaxed);
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            queries: self.queries.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shutdown: self.shutdown_requested(),
            connections: self.total_connections.load(Ordering::Relaxed),
            peak_connections: self.peak_connections(),
        }
    }
}

/// What a serve loop did, for logging and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Query requests answered successfully.
    pub queries: u64,
    /// Graph-mutation requests (`create_graph`, `add_edges`,
    /// `remove_edges`, `compact`) answered successfully.
    pub mutations: u64,
    /// Requests answered with an error object.
    pub errors: u64,
    /// Whether a `shutdown` op ended the loop (vs EOF).
    pub shutdown: bool,
    /// Connections served (1 for the stdio mode).
    pub connections: u64,
    /// Most connections served concurrently at any instant.
    pub peak_connections: u64,
}

/// Runs the JSONL loop over arbitrary reader/writer pairs until EOF or a
/// `shutdown` op, updating `metrics` as it goes. This is the stdio serve
/// mode and the per-connection protocol of the socket mode (which adds
/// shutdown-aware reads on top — see `serve_connection`).
pub fn serve_loop<R: BufRead, W: Write>(
    engine: &Engine,
    default_policy: &ResourcePolicy,
    reader: R,
    writer: &mut W,
    metrics: &ServeMetrics,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary {
        connections: 1,
        peak_connections: 1,
        ..ServeSummary::default()
    };
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, outcome) = handle_line(engine, default_policy, metrics, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        match outcome {
            LineOutcome::QueryOk => summary.queries += 1,
            LineOutcome::MutationOk => summary.mutations += 1,
            LineOutcome::OpOk => {}
            LineOutcome::Error => summary.errors += 1,
            LineOutcome::Shutdown => {
                summary.shutdown = true;
                break;
            }
        }
    }
    Ok(summary)
}

/// How one request line was disposed of (drives the summary counters:
/// `stats`/`shutdown` ops are answered but are not *queries*; graph
/// mutations are counted on their own).
enum LineOutcome {
    QueryOk,
    MutationOk,
    OpOk,
    Error,
    Shutdown,
}

/// Handles one request line; returns the response and its disposition.
/// Also updates the shared metrics (so concurrent workers aggregate
/// into one set of counters).
fn handle_line(
    engine: &Engine,
    default_policy: &ResourcePolicy,
    metrics: &ServeMetrics,
    line: &str,
) -> (String, LineOutcome) {
    let fields = match minijson::parse_object(line) {
        Ok(f) => f,
        Err(e) => {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            return (error_response("null", &e.to_string()), LineOutcome::Error);
        }
    };
    let id = minijson::get(&fields, "id").map_or("null".to_string(), Value::to_json);
    let op = minijson::get(&fields, "op")
        .and_then(Value::as_str)
        .unwrap_or("query");
    match op {
        "shutdown" => {
            metrics.request_shutdown();
            let mut j = JsonBuilder::new();
            j.raw_field("id", &id);
            j.raw_field("ok", "true");
            j.raw_field("bye", "true");
            (j.finish(), LineOutcome::Shutdown)
        }
        "stats" => {
            let stats = engine.catalog().stats();
            let results = engine.results().stats();
            let warm = engine.warm_stats();
            let mut j = JsonBuilder::new();
            j.raw_field("id", &id);
            j.raw_field("ok", "true");
            j.num_field("loads", stats.loads as f64);
            j.num_field("hits", stats.hits as f64);
            j.num_field("stat_scans", stats.stat_scans as f64);
            j.num_field("evictions", stats.evictions as f64);
            j.num_field("graphs", engine.catalog().len() as f64);
            j.num_field("result_hits", results.hits as f64);
            j.num_field("result_misses", results.misses as f64);
            j.num_field("result_insertions", results.insertions as f64);
            j.num_field("result_evictions", results.evictions as f64);
            j.num_field("result_entries", results.entries as f64);
            j.num_field("result_bytes", results.bytes as f64);
            j.num_field("conn_active", metrics.active_connections() as f64);
            j.num_field("conn_peak", metrics.peak_connections() as f64);
            j.num_field("mutations", engine.catalog().mutations() as f64);
            j.num_field("graphs_named", engine.catalog().named_len() as f64);
            j.num_field("warm_hits", warm.hits as f64);
            j.num_field("warm_fallbacks", warm.fallbacks as f64);
            // Per-session-graph accounting, last so the flat fields
            // above stay trivially greppable — and only when at least
            // one session graph exists, so the response of a
            // session-less server stays a flat object that the minijson
            // request parser itself could read (the throughput
            // experiment and older clients rely on that).
            let named: Vec<String> = engine
                .catalog()
                .named_stats()
                .iter()
                .map(|g| {
                    let mut item = JsonBuilder::new();
                    item.str_field("name", &g.name);
                    item.num_field("version", g.version as f64);
                    item.num_field("nodes", g.nodes as f64);
                    item.num_field("edges", g.edges as f64);
                    item.num_field("delta_edges", g.delta_edges as f64);
                    item.num_field("compactions", g.compactions as f64);
                    item.num_field("warm_hits", g.warm_hits as f64);
                    item.num_field("warm_fallbacks", g.warm_fallbacks as f64);
                    item.finish()
                })
                .collect();
            if !named.is_empty() {
                j.raw_field("named", &format!("[{}]", named.join(",")));
            }
            (j.finish(), LineOutcome::OpOk)
        }
        "create_graph" | "add_edges" | "remove_edges" | "compact" => {
            let mut j = JsonBuilder::new();
            j.raw_field("id", &id);
            j.raw_field("ok", "true");
            match run_mutation(engine, op, &fields, &mut j) {
                Ok(()) => {
                    metrics.mutations.fetch_add(1, Ordering::Relaxed);
                    (j.finish(), LineOutcome::MutationOk)
                }
                Err(e) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    (error_response(&id, &e), LineOutcome::Error)
                }
            }
        }
        "query" => match run_query(engine, default_policy, &fields) {
            Ok(response_body) => {
                metrics.queries.fetch_add(1, Ordering::Relaxed);
                let mut j = JsonBuilder::new();
                j.raw_field("id", &id);
                j.raw_field("ok", "true");
                j.raw_field("result", &response_body.result);
                if let Some(hit) = response_body.cache_hit {
                    j.num_field("cache_hit", if hit { 1.0 } else { 0.0 });
                }
                if let Some(hit) = response_body.result_cache_hit {
                    j.num_field("result_cache_hit", if hit { 1.0 } else { 0.0 });
                }
                j.num_field("loads", response_body.loads as f64);
                j.num_field("elapsed_ms", response_body.elapsed_ms);
                (j.finish(), LineOutcome::QueryOk)
            }
            Err(e) => {
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                (error_response(&id, &e), LineOutcome::Error)
            }
        },
        other => {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            (
                error_response(&id, &format!("unknown op '{other}'")),
                LineOutcome::Error,
            )
        }
    }
}

fn error_response(id: &str, message: &str) -> String {
    let mut j = JsonBuilder::new();
    j.raw_field("id", id);
    j.raw_field("ok", "false");
    j.str_field("error", message);
    j.finish()
}

/// Decodes the flat `"edges"` string of a mutation request: `u v` node
/// id pairs separated by whitespace and/or commas/semicolons, e.g.
/// `"0 1, 1 2"`. The request schema stays flat (no JSON arrays), so one
/// op still batches arbitrarily many edges.
fn parse_edge_pairs(raw: &str) -> Result<Vec<(u32, u32)>, String> {
    let mut ids: Vec<u32> = Vec::new();
    for token in raw
        .split(|c: char| c == ',' || c == ';' || c.is_whitespace())
        .filter(|t| !t.is_empty())
    {
        ids.push(
            token
                .parse::<u32>()
                .map_err(|_| format!("bad node id '{token}' in 'edges'"))?,
        );
    }
    if !ids.len().is_multiple_of(2) {
        return Err(format!(
            "'edges' must hold an even number of node ids ('u v' pairs; got {})",
            ids.len()
        ));
    }
    Ok(ids.chunks(2).map(|pair| (pair[0], pair[1])).collect())
}

/// Executes one graph-mutation op, appending the outcome fields to the
/// response under construction.
fn run_mutation(
    engine: &Engine,
    op: &str,
    fields: &[(String, Value)],
    j: &mut JsonBuilder,
) -> Result<(), String> {
    let str_of = |key: &str| -> Result<Option<&str>, String> {
        match minijson::get(fields, key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a string")),
        }
    };
    let name = str_of("graph")?.ok_or("missing 'graph'")?.to_string();
    let edges = match str_of("edges")? {
        Some(raw) => parse_edge_pairs(raw)?,
        None => Vec::new(),
    };
    let outcome = match op {
        "create_graph" => {
            let directed = match minijson::get(fields, "directed") {
                None | Some(Value::Null) => false,
                Some(v) => v.as_bool().ok_or("'directed' must be a boolean")?,
            };
            let kind = if directed {
                dsg_graph::GraphKind::Directed
            } else {
                dsg_graph::GraphKind::Undirected
            };
            engine.create_graph(&name, kind, &edges)
        }
        "add_edges" => {
            if edges.is_empty() {
                return Err("missing 'edges'".into());
            }
            engine.add_edges(&name, &edges)
        }
        "remove_edges" => {
            if edges.is_empty() {
                return Err("missing 'edges'".into());
            }
            engine.remove_edges(&name, &edges)
        }
        "compact" => engine.compact_graph(&name),
        other => unreachable!("dispatched op '{other}'"),
    }
    .map_err(|e| e.to_string())?;
    j.str_field("graph", &name);
    j.num_field("version", outcome.version as f64);
    j.num_field("nodes", outcome.nodes as f64);
    j.num_field("edges", outcome.edges as f64);
    j.num_field("applied", outcome.applied as f64);
    j.num_field("delta_edges", outcome.delta_edges as f64);
    j.num_field("compacted", if outcome.compacted { 1.0 } else { 0.0 });
    Ok(())
}

struct QueryResponse {
    result: String,
    cache_hit: Option<bool>,
    result_cache_hit: Option<bool>,
    loads: u64,
    elapsed_ms: f64,
}

/// Decodes a query request, executes it, renders the nested result.
fn run_query(
    engine: &Engine,
    default_policy: &ResourcePolicy,
    fields: &[(String, Value)],
) -> Result<QueryResponse, String> {
    let str_of = |key: &str| -> Result<Option<&str>, String> {
        match minijson::get(fields, key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a string")),
        }
    };
    let num_of = |key: &str| -> Result<Option<f64>, String> {
        match minijson::get(fields, key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_num()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a number")),
        }
    };
    let uint_of = |key: &str| -> Result<Option<u64>, String> {
        match minijson::get(fields, key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_uint()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
        }
    };
    let bool_of = |key: &str| -> Result<bool, String> {
        match minijson::get(fields, key) {
            None | Some(Value::Null) => Ok(false),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("'{key}' must be a boolean")),
        }
    };

    let file = str_of("file")?.map(str::to_string);
    let graph = str_of("graph")?.map(str::to_string);
    let algorithm_name = str_of("algorithm")?.unwrap_or("approx");
    let epsilon = num_of("epsilon")?.unwrap_or(0.5);
    let k = uint_of("k")?.unwrap_or(10) as usize;
    let delta = num_of("delta")?.unwrap_or(2.0);
    let sketch = uint_of("sketch")?.map(|b| b as u32);
    let flow = match str_of("flow_backend")? {
        None | Some("dinic") => FlowBackend::Dinic,
        Some("push-relabel") => FlowBackend::PushRelabel,
        Some(other) => return Err(format!("unknown flow_backend '{other}'")),
    };
    let algorithm = match algorithm_name {
        "approx" => Algorithm::Approx { epsilon, sketch },
        "atleast-k" => Algorithm::AtLeastK { k, epsilon },
        "directed" => Algorithm::Directed { delta, epsilon },
        "charikar" => Algorithm::Charikar,
        "exact" => Algorithm::Exact { flow },
        "enumerate" => Algorithm::Enumerate {
            epsilon,
            min_density: num_of("min_density")?.unwrap_or(1.0),
            max_communities: uint_of("max_communities")?.unwrap_or(32) as usize,
        },
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let mut backend = match str_of("backend")? {
        None => None,
        Some(raw) => BackendRequest::parse(raw).ok_or_else(|| {
            format!("unknown backend '{raw}' (auto|memory|parallel|stream|mapreduce)")
        })?,
    };
    if bool_of("stream")? {
        backend = Some(BackendRequest::Streamed);
    }
    let query = Query { algorithm, backend };
    let policy = ResourcePolicy {
        memory_budget_bytes: uint_of("memory_budget")?.or(default_policy.memory_budget_bytes),
        threads: uint_of("threads")?.map_or(default_policy.threads, |t| t as usize),
    };
    let source = match (file, graph) {
        (Some(path), None) => Source::File {
            path: PathBuf::from(path),
            binary: bool_of("binary")?,
            directed_input: bool_of("directed_input")?,
        },
        (None, Some(name)) => Source::Named { name },
        (Some(_), Some(_)) => return Err("specify either 'file' or 'graph', not both".into()),
        (None, None) => return Err("missing 'file' or 'graph'".into()),
    };
    let report = engine
        .execute(&source, &query, &policy)
        .map_err(|e| e.to_string())?;
    Ok(QueryResponse {
        result: report.json_object(false),
        cache_hit: report.cache_hit,
        result_cache_hit: report.result_cache_hit,
        loads: engine.catalog().stats().loads,
        elapsed_ms: report.elapsed_ms,
    })
}

/// Serves the JSONL loop over stdin/stdout until EOF or `shutdown`.
/// Inherently one connection; [`ServeOptions`] does not apply.
pub fn serve_stdio(engine: &Engine, policy: &ResourcePolicy) -> std::io::Result<ServeSummary> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    let metrics = ServeMetrics::new();
    serve_loop(engine, policy, stdin.lock(), &mut stdout, &metrics)
}

/// Removes the socket file when dropped — including drops caused by an
/// error return or a panic unwinding through [`serve_unix`], so a
/// crashed server never leaves a stale socket behind (the regression
/// test for the error path exercises exactly this drop-on-unwind).
struct SocketGuard {
    path: PathBuf,
}

impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Serves the JSONL loop on a Unix socket with an accept thread and a
/// bounded worker pool (see the module docs for the concurrency model).
/// A connection that fails mid-session — abrupt disconnect, a client
/// that stops reading (EPIPE) — ends **that connection only**: the
/// error is absorbed and the server keeps accepting. Only bind/accept
/// failures take the server down. A stale socket file at `path` is
/// replaced; the socket file is removed when the server stops — on
/// clean shutdown *and* on error paths, via an RAII guard.
#[cfg(unix)]
pub fn serve_unix(
    engine: &Engine,
    policy: &ResourcePolicy,
    path: &Path,
    options: &ServeOptions,
) -> std::io::Result<ServeSummary> {
    use std::os::unix::net::UnixListener;

    if path.exists() {
        std::fs::remove_file(path)?;
    }
    // Bind to a temporary name and rename into place once listening:
    // `bind` creates the file before `listen` runs, so a client watching
    // for the socket file could otherwise connect in that window and be
    // refused. After the rename, the public path only ever names a
    // socket that is already accepting.
    let staging = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".bind");
        PathBuf::from(name)
    };
    let _ = std::fs::remove_file(&staging);
    let listener = UnixListener::bind(&staging)?;
    // From here on, every exit — clean shutdown, accept error, panic —
    // removes the socket file (staging name first, public name after
    // the rename).
    let mut guard = SocketGuard {
        path: staging.clone(),
    };
    std::fs::rename(&staging, path)?;
    guard.path = path.to_path_buf();
    let metrics = ServeMetrics::new();
    run_pool(engine, policy, &listener, path, options, &metrics)?;
    Ok(metrics.summary())
}

/// The accept thread + worker pool around a bound listener.
#[cfg(unix)]
fn run_pool(
    engine: &Engine,
    policy: &ResourcePolicy,
    listener: &std::os::unix::net::UnixListener,
    path: &Path,
    options: &ServeOptions,
    metrics: &ServeMetrics,
) -> std::io::Result<()> {
    use std::os::unix::net::UnixStream;
    use std::sync::mpsc;
    use std::sync::Mutex;

    let workers = options.workers.max(1);
    let (tx, rx) = mpsc::sync_channel::<UnixStream>(options.max_connections.max(1));
    let rx = Mutex::new(rx);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| worker_loop(engine, policy, &rx, metrics, path));
        }
        let accept_result = loop {
            match listener.accept() {
                Ok((conn, _)) => {
                    // A shutdown op latches the flag and dials a wake
                    // connection so this accept returns; both that wake
                    // connection and any late real client are dropped.
                    if metrics.shutdown_requested() {
                        break Ok(());
                    }
                    // Backpressure: a full queue blocks the accept
                    // thread here until a worker frees up.
                    if tx.send(conn).is_err() {
                        break Ok(());
                    }
                }
                Err(e) => break Err(e),
            }
        };
        // Stop the workers: latch shutdown (closes idle connections at
        // their next read-timeout tick) and disconnect the channel
        // (wakes workers blocked on recv). In-flight requests still
        // finish and respond before their worker exits; the scope join
        // below is the drain.
        metrics.request_shutdown();
        drop(tx);
        accept_result
    })
}

/// One worker: pull connections off the queue until the channel closes.
/// Connections queued behind a shutdown are dropped unserved.
#[cfg(unix)]
fn worker_loop(
    engine: &Engine,
    policy: &ResourcePolicy,
    rx: &std::sync::Mutex<std::sync::mpsc::Receiver<std::os::unix::net::UnixStream>>,
    metrics: &ServeMetrics,
    path: &Path,
) {
    loop {
        // Take the lock only to pull one connection, never while serving.
        let conn = { rx.lock().expect("worker queue lock poisoned").recv() };
        let Ok(conn) = conn else { break };
        if metrics.shutdown_requested() {
            continue; // drain and drop whatever was queued behind shutdown
        }
        metrics.connection_opened();
        // A failed connection must not kill the long-running server.
        let _ = serve_connection(engine, policy, metrics, conn, path);
        metrics.connection_closed();
    }
}

/// Serves one socket connection with shutdown-aware reads **and**
/// writes: the socket has short timeouts in both directions, so a
/// worker parked on an idle connection — or blocked writing to a
/// client that stopped reading — notices the shutdown latch and closes
/// instead of pinning the server open forever. A `shutdown` op on this
/// connection latches the flag for everyone and dials a throwaway wake
/// connection so the accept thread unblocks.
#[cfg(unix)]
fn serve_connection(
    engine: &Engine,
    policy: &ResourcePolicy,
    metrics: &ServeMetrics,
    conn: std::os::unix::net::UnixStream,
    path: &Path,
) -> std::io::Result<()> {
    use std::time::Duration;

    conn.set_read_timeout(Some(Duration::from_millis(50)))?;
    conn.set_write_timeout(Some(Duration::from_millis(50)))?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = conn;
    let mut line = Vec::new();
    loop {
        line.clear();
        // Byte-level read_until, retrying timeouts until shutdown.
        // Partial bytes accumulated before a timeout stay in `line`
        // and the next attempt appends to them, so no request is ever
        // torn. (`read_line` would not do: its UTF-8 guard *discards*
        // the appended bytes when an error lands mid multi-byte
        // character, losing data already consumed from the socket.)
        loop {
            match reader.read_until(b'\n', &mut line) {
                Ok(0) => return Ok(()), // EOF: client closed
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if metrics.shutdown_requested() {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let text = String::from_utf8_lossy(&line);
        if text.trim().is_empty() {
            continue;
        }
        let (response, outcome) = handle_line(engine, policy, metrics, &text);
        let mut payload = response.into_bytes();
        payload.push(b'\n');
        let write_result = write_shutdown_aware(&mut writer, &payload, metrics);
        if matches!(outcome, LineOutcome::Shutdown) {
            // handle_line already latched the flag; wake the accept
            // thread so it observes it — unconditionally. The shutdown
            // sender itself may have a full receive buffer (abandoned
            // write) or have disconnected (write error); skipping the
            // wake in those cases would leave the accept thread blocked
            // forever with no one else to unblock it.
            let _ = std::os::unix::net::UnixStream::connect(path);
            return write_result.map(|_| ());
        }
        match write_result {
            Ok(true) => {}
            // Shutdown (latched elsewhere) while this client was not
            // reading: abandon the connection.
            Ok(false) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

/// `write_all` with the same shutdown awareness as the read side: a
/// client that has stopped reading fills the socket buffer and would
/// otherwise block this worker in `write` forever, hanging the graceful
/// shutdown's drain. Timeouts retry (tracking the partial-write offset)
/// until the data is out or shutdown is requested; returns `false` when
/// the write was abandoned because of shutdown.
#[cfg(unix)]
fn write_shutdown_aware(
    writer: &mut std::os::unix::net::UnixStream,
    buf: &[u8],
    metrics: &ServeMetrics,
) -> std::io::Result<bool> {
    let mut written = 0;
    while written < buf.len() {
        match writer.write(&buf[written..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "connection closed mid-response",
                ))
            }
            Ok(n) => written += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if e.kind() != std::io::ErrorKind::Interrupted && metrics.shutdown_requested() {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// The matching client: forwards each line of `requests` to the server
/// at `path` and writes each response line to `responses`. Returns the
/// number of exchanges. Used by `densest client` and the CI smoke test.
#[cfg(unix)]
pub fn client_unix<R: BufRead, W: Write>(
    path: &Path,
    requests: R,
    responses: &mut W,
) -> std::io::Result<u64> {
    use std::os::unix::net::UnixStream;

    let stream = UnixStream::connect(path)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut exchanges = 0u64;
    for line in requests.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-exchange",
            ));
        }
        responses.write_all(response.as_bytes())?;
        exchanges += 1;
    }
    Ok(exchanges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn fixture(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dsg_engine_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    /// Writes a K5 fixture under a per-test file name: parallel test
    /// threads must never rewrite each other's fixture, or the mtime
    /// change would invalidate the catalog's revalidation stamp
    /// mid-test.
    fn k5_path(name: &str) -> PathBuf {
        let mut s = String::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                s.push_str(&format!("{u} {v}\n"));
            }
        }
        fixture(name, &s)
    }

    fn field<'a>(line: &'a str, key: &str) -> &'a str {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap();
        &rest[..end]
    }

    fn run_lines(engine: &Engine, requests: &str) -> (ServeSummary, String) {
        let mut out = Vec::new();
        let summary = serve_loop(
            engine,
            &ResourcePolicy::default(),
            Cursor::new(requests.to_string()),
            &mut out,
            &ServeMetrics::new(),
        )
        .unwrap();
        (summary, String::from_utf8(out).unwrap())
    }

    #[test]
    fn repeated_queries_load_once_and_are_byte_stable() {
        let path = k5_path("k5_byte_stable.txt");
        let p = path.display();
        let requests = format!(
            "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}\n\
             {{\"id\":2,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}\n\
             {{\"id\":3,\"algorithm\":\"charikar\",\"file\":\"{p}\"}}\n\
             {{\"id\":4,\"op\":\"stats\"}}\n"
        );
        let engine = Engine::new();
        let (summary, out) = run_lines(&engine, &requests);
        assert_eq!(summary.queries, 3, "the stats op is not a query");
        assert_eq!(summary.errors, 0);
        assert!(!summary.shutdown, "EOF, not shutdown");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        // One load serves all three queries.
        assert_eq!(field(lines[0], "cache_hit"), "0");
        assert_eq!(field(lines[1], "cache_hit"), "1");
        assert_eq!(field(lines[2], "cache_hit"), "1");
        for l in &lines[..3] {
            assert_eq!(field(l, "loads"), "1", "{l}");
        }
        // The repeated identical query replays from the result cache.
        assert_eq!(field(lines[0], "result_cache_hit"), "0");
        assert_eq!(field(lines[1], "result_cache_hit"), "1");
        assert_eq!(field(lines[2], "result_cache_hit"), "0");
        assert_eq!(field(lines[3], "loads"), "1");
        assert_eq!(field(lines[3], "hits"), "2");
        assert_eq!(field(lines[3], "graphs"), "1");
        assert_eq!(field(lines[3], "result_hits"), "1");
        assert_eq!(field(lines[3], "result_misses"), "2");
        assert_eq!(field(lines[3], "result_entries"), "2");
        // Identical queries produce byte-identical nested results.
        let result_of = |l: &str| l.split("\"result\":").nth(1).unwrap().to_string();
        let r1 = result_of(lines[0]);
        let r2 = result_of(lines[1]);
        assert_eq!(
            r1.split(",\"cache_hit\"").next(),
            r2.split(",\"cache_hit\"").next()
        );
        assert_eq!(field(lines[0], "density"), "2");
    }

    #[test]
    fn shutdown_op_ends_the_loop_and_later_lines_are_unread() {
        let path = k5_path("k5_shutdown_op.txt");
        let requests = format!(
            "{{\"op\":\"shutdown\",\"id\":\"bye\"}}\n\
             {{\"id\":9,\"algorithm\":\"approx\",\"file\":\"{}\"}}\n",
            path.display()
        );
        let engine = Engine::new();
        let (summary, out) = run_lines(&engine, &requests);
        assert!(summary.shutdown);
        assert_eq!(out.lines().count(), 1, "{out}");
        assert!(out.contains("\"id\":\"bye\""), "{out}");
        assert_eq!(engine.catalog().stats().loads, 0);
    }

    #[test]
    fn errors_keep_the_loop_alive() {
        let path = k5_path("k5_errors.txt");
        let requests = format!(
            "not json\n\
             {{\"id\":1,\"algorithm\":\"nope\",\"file\":\"x\"}}\n\
             {{\"id\":2,\"algorithm\":\"approx\"}}\n\
             {{\"id\":3,\"file\":\"/definitely/not/here.txt\"}}\n\
             {{\"id\":4,\"algorithm\":\"atleast-k\",\"file\":\"{p}\",\"k\":1000}}\n\
             {{\"id\":5,\"algorithm\":\"approx\",\"file\":\"{p}\"}}\n",
            p = path.display()
        );
        let engine = Engine::new();
        let (summary, out) = run_lines(&engine, &requests);
        assert_eq!(summary.errors, 5);
        assert_eq!(summary.queries, 1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 6);
        for l in &lines[..5] {
            assert_eq!(field(l, "ok"), "false", "{l}");
            assert!(l.contains("\"error\":"), "{l}");
        }
        assert!(lines[4].contains("exceeds the graph"), "{}", lines[4]);
        assert_eq!(field(lines[5], "ok"), "true");
    }

    #[test]
    fn mutable_session_transcript() {
        // The README's session, end to end: create → query → add_edges
        // → query (version bump, no stale replay) → remove → compact →
        // stats.
        let engine = Engine::new();
        let requests = "\
            {\"id\":1,\"op\":\"create_graph\",\"graph\":\"live\",\"edges\":\"0 1, 0 2, 1 2\"}\n\
            {\"id\":2,\"algorithm\":\"approx\",\"graph\":\"live\",\"epsilon\":0.5}\n\
            {\"id\":3,\"algorithm\":\"approx\",\"graph\":\"live\",\"epsilon\":0.5}\n\
            {\"id\":4,\"op\":\"add_edges\",\"graph\":\"live\",\"edges\":\"0 3, 1 3, 2 3\"}\n\
            {\"id\":5,\"algorithm\":\"approx\",\"graph\":\"live\",\"epsilon\":0.5}\n\
            {\"id\":6,\"op\":\"remove_edges\",\"graph\":\"live\",\"edges\":\"2 3\"}\n\
            {\"id\":7,\"op\":\"compact\",\"graph\":\"live\"}\n\
            {\"id\":8,\"op\":\"stats\"}\n";
        let (summary, out) = run_lines(&engine, requests);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 8, "{out}");
        for l in &lines {
            assert_eq!(field(l, "ok"), "true", "{l}");
        }
        assert_eq!(summary.queries, 3);
        assert_eq!(summary.mutations, 4);
        assert_eq!(summary.errors, 0);
        // create: version 1, triangle.
        assert_eq!(field(lines[0], "version"), "1");
        assert_eq!(field(lines[0], "nodes"), "3");
        assert_eq!(field(lines[0], "edges"), "3");
        // First query computes (miss), second replays (hit).
        assert_eq!(field(lines[1], "result_cache_hit"), "0");
        assert_eq!(field(lines[1], "density"), "1");
        assert_eq!(field(lines[2], "result_cache_hit"), "1");
        // add_edges bumps the version; the next query must recompute.
        assert_eq!(field(lines[3], "version"), "2");
        assert_eq!(field(lines[3], "applied"), "3");
        assert_eq!(field(lines[3], "edges"), "6");
        assert_eq!(field(lines[4], "result_cache_hit"), "0");
        assert_eq!(field(lines[4], "density"), "1.5", "K4 density");
        // remove bumps again; compact folds the logs.
        assert_eq!(field(lines[5], "version"), "3");
        assert_eq!(field(lines[5], "edges"), "5");
        let compact_version: u64 = field(lines[6], "version").parse().unwrap();
        assert!(compact_version >= 3, "{}", lines[6]);
        assert_eq!(field(lines[6], "delta_edges"), "0");
        // stats: session accounting + per-graph object.
        assert_eq!(field(lines[7], "graphs_named"), "1");
        let muts: u64 = field(lines[7], "mutations").parse().unwrap();
        assert!(muts >= 3, "{}", lines[7]);
        assert!(
            lines[7].contains("\"named\":[{\"name\":\"live\""),
            "{}",
            lines[7]
        );
        assert!(lines[7].contains("\"delta_edges\":0"), "{}", lines[7]);
        assert!(lines[7].contains("\"warm_hits\":"), "{}", lines[7]);
    }

    #[test]
    fn session_queries_are_byte_identical_to_memory_runs() {
        // A query on a named graph must nest the identical result object
        // as the same query over the materialized edge list (label
        // aside, which is part of the source identity).
        let engine = Engine::new();
        let requests = "\
            {\"id\":1,\"op\":\"create_graph\",\"graph\":\"g\",\"edges\":\"0 1, 0 2, 1 2, 2 3\"}\n\
            {\"id\":2,\"algorithm\":\"approx\",\"graph\":\"g\",\"epsilon\":0.1}\n\
            {\"id\":3,\"algorithm\":\"atleast-k\",\"graph\":\"g\",\"k\":2}\n";
        let (_, out) = run_lines(&engine, requests);
        let lines: Vec<&str> = out.lines().collect();
        let mut list = dsg_graph::EdgeList::new_undirected(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 3)] {
            list.push(u, v);
        }
        let reference = Engine::new();
        let policy = ResourcePolicy::default();
        for (line, algorithm) in [
            (
                lines[1],
                Algorithm::Approx {
                    epsilon: 0.1,
                    sketch: None,
                },
            ),
            (lines[2], Algorithm::AtLeastK { k: 2, epsilon: 0.5 }),
        ] {
            let report = reference
                .execute(
                    &Source::Memory {
                        list: list.clone(),
                        label: "g".into(),
                    },
                    &Query::new(algorithm),
                    &policy,
                )
                .unwrap();
            let served = line.split("\"result\":").nth(1).unwrap();
            let served = served.split(",\"result_cache_hit\"").next().unwrap();
            assert_eq!(served, report.json_object(false), "{line}");
        }
    }

    #[test]
    fn session_errors_are_typed_and_keep_the_loop_alive() {
        let engine = Engine::new();
        let requests = "\
            {\"id\":1,\"op\":\"add_edges\",\"graph\":\"nope\",\"edges\":\"0 1\"}\n\
            {\"id\":2,\"op\":\"create_graph\",\"graph\":\"g\"}\n\
            {\"id\":3,\"op\":\"create_graph\",\"graph\":\"g\"}\n\
            {\"id\":4,\"op\":\"add_edges\",\"graph\":\"g\",\"edges\":\"0 1 2\"}\n\
            {\"id\":5,\"op\":\"add_edges\",\"graph\":\"g\",\"edges\":\"0 x\"}\n\
            {\"id\":6,\"op\":\"add_edges\",\"graph\":\"g\"}\n\
            {\"id\":7,\"algorithm\":\"approx\",\"graph\":\"missing\"}\n\
            {\"id\":8,\"algorithm\":\"directed\",\"graph\":\"g\"}\n\
            {\"id\":9,\"algorithm\":\"approx\",\"graph\":\"g\",\"file\":\"x\"}\n\
            {\"id\":10,\"op\":\"add_edges\",\"graph\":\"g\",\"edges\":\"0 1\"}\n";
        let (summary, out) = run_lines(&engine, requests);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(summary.errors, 8, "{out}");
        assert_eq!(summary.mutations, 2);
        assert!(lines[0].contains("unknown graph 'nope'"), "{}", lines[0]);
        assert_eq!(field(lines[1], "ok"), "true");
        assert!(lines[2].contains("already exists"), "{}", lines[2]);
        assert!(lines[3].contains("even number"), "{}", lines[3]);
        assert!(lines[4].contains("bad node id 'x'"), "{}", lines[4]);
        assert!(lines[5].contains("missing 'edges'"), "{}", lines[5]);
        assert!(lines[6].contains("unknown graph 'missing'"), "{}", lines[6]);
        assert!(lines[7].contains("undirected"), "{}", lines[7]);
        assert!(
            lines[8].contains("either 'file' or 'graph'"),
            "{}",
            lines[8]
        );
        assert_eq!(field(lines[9], "ok"), "true", "loop still alive");
    }

    #[test]
    fn directed_sessions_serve_directed_queries() {
        let engine = Engine::new();
        let requests = "\
            {\"id\":1,\"op\":\"create_graph\",\"graph\":\"d\",\"directed\":true,\
\"edges\":\"0 1, 1 0, 0 2, 1 2\"}\n\
            {\"id\":2,\"algorithm\":\"directed\",\"graph\":\"d\",\"delta\":2}\n";
        let (summary, out) = run_lines(&engine, requests);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(summary.errors, 0, "{out}");
        assert_eq!(field(lines[0], "edges"), "4");
        assert_eq!(field(lines[1], "ok"), "true");
        assert!(lines[1].contains("\"s_nodes\":"), "{}", lines[1]);
    }

    #[cfg(unix)]
    fn wait_for_socket(sock: &Path) {
        for _ in 0..300 {
            if sock.exists() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("server socket never appeared at {}", sock.display());
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_survives_client_disconnects() {
        use std::os::unix::net::UnixStream;

        let path = k5_path("k5_survive.txt");
        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/survive.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &ServeOptions::default(),
            )
            .unwrap()
        });
        wait_for_socket(&sock);
        // First client writes a query and vanishes without reading or
        // shutting down; the server must keep accepting.
        {
            let mut rude = UnixStream::connect(&sock).unwrap();
            writeln!(
                rude,
                "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{}\"}}",
                path.display()
            )
            .unwrap();
            let _ = rude.shutdown(std::net::Shutdown::Both);
        }
        // Second client gets full service.
        let requests = format!(
            "{{\"id\":2,\"algorithm\":\"approx\",\"file\":\"{}\"}}\n{{\"op\":\"shutdown\"}}\n",
            path.display()
        );
        let mut out = Vec::new();
        client_unix(&sock, Cursor::new(requests), &mut out).unwrap();
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        let out = String::from_utf8(out).unwrap();
        assert_eq!(field(out.lines().next().unwrap(), "ok"), "true", "{out}");
        assert_eq!(field(out.lines().next().unwrap(), "density"), "2", "{out}");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path = k5_path("k5_roundtrip.txt");
        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/roundtrip.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &ServeOptions::default(),
            )
            .unwrap()
        });
        wait_for_socket(&sock);
        let requests = format!(
            "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{p}\"}}\n\
             {{\"id\":2,\"algorithm\":\"exact\",\"file\":\"{p}\"}}\n\
             {{\"op\":\"shutdown\"}}\n",
            p = path.display()
        );
        let mut out = Vec::new();
        let n = client_unix(&sock, Cursor::new(requests), &mut out).unwrap();
        assert_eq!(n, 3);
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        assert_eq!(summary.queries, 2, "the shutdown op is not a query");
        assert!(!sock.exists(), "socket file removed on clean shutdown");
        let out = String::from_utf8(out).unwrap();
        assert_eq!(field(out.lines().nth(1).unwrap(), "density"), "2");
    }

    #[cfg(unix)]
    #[test]
    fn concurrent_clients_share_one_load_and_get_identical_results() {
        let path = k5_path("k5_concurrent.txt");
        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/concurrent.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &ServeOptions {
                    workers: 4,
                    max_connections: 16,
                },
            )
            .unwrap()
        });
        wait_for_socket(&sock);

        // 4 clients, each issuing the same query 3 times concurrently.
        let clients = 4;
        let responses: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    let sock = sock.clone();
                    let path = path.clone();
                    s.spawn(move || {
                        let requests = (0..3)
                            .map(|r| {
                                format!(
                                    "{{\"id\":\"{i}-{r}\",\"algorithm\":\"approx\",\"file\":\"{}\",\"epsilon\":0.1}}\n",
                                    path.display()
                                )
                            })
                            .collect::<String>();
                        let mut out = Vec::new();
                        client_unix(&sock, Cursor::new(requests), &mut out).unwrap();
                        String::from_utf8(out).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Every response line carries the identical nested result.
        let mut results: Vec<String> = Vec::new();
        for client_out in &responses {
            for l in client_out.lines() {
                assert_eq!(field(l, "ok"), "true", "{l}");
                assert_eq!(field(l, "loads"), "1", "single-flight load: {l}");
                results.push(l.split("\"result\":").nth(1).unwrap().to_string());
            }
        }
        assert_eq!(results.len(), clients * 3);
        let reference = results[0]
            .split(",\"cache_hit\"")
            .next()
            .unwrap()
            .to_string();
        for r in &results {
            assert_eq!(r.split(",\"cache_hit\"").next().unwrap(), reference);
        }

        // Stats, then shutdown.
        let mut out = Vec::new();
        client_unix(
            &sock,
            Cursor::new("{\"op\":\"stats\",\"id\":\"s\"}\n{\"op\":\"shutdown\"}\n".to_string()),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let stats_line = out.lines().next().unwrap();
        assert_eq!(field(stats_line, "loads"), "1", "{stats_line}");
        // Each client's 2nd and 3rd queries run strictly after its own
        // 1st completed (and was inserted), so they are guaranteed hits;
        // the 4 first queries may race each other and all miss.
        let result_hits: u64 = field(stats_line, "result_hits").parse().unwrap();
        assert!(result_hits >= (clients * 2) as u64, "{stats_line}");
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        assert_eq!(summary.queries, clients as u64 * 3);
        assert!(summary.peak_connections >= 1);
        assert!(summary.connections >= clients as u64);
        assert!(!sock.exists(), "socket removed after shutdown");
    }

    #[cfg(unix)]
    #[test]
    fn shutdown_drains_even_with_an_idle_connection_open() {
        use std::os::unix::net::UnixStream;

        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/idle.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &ServeOptions {
                    workers: 2,
                    max_connections: 4,
                },
            )
            .unwrap()
        });
        wait_for_socket(&sock);
        // An idle client that connects and sends nothing must not pin
        // the server open across a shutdown.
        let idle = UnixStream::connect(&sock).unwrap();
        let mut out = Vec::new();
        client_unix(
            &sock,
            Cursor::new("{\"op\":\"shutdown\"}\n".to_string()),
            &mut out,
        )
        .unwrap();
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        drop(idle);
        assert!(!sock.exists());
    }

    #[cfg(unix)]
    #[test]
    fn shutdown_drains_even_when_a_client_stops_reading() {
        use std::os::unix::net::UnixStream;

        let path = k5_path("k5_noread.txt");
        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/noread.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &ServeOptions {
                    workers: 2,
                    max_connections: 4,
                },
            )
            .unwrap()
        });
        wait_for_socket(&sock);
        // A client that pipelines thousands of requests but never reads
        // fills the socket's send buffer; the worker writing responses
        // must not block shutdown forever.
        let mut rude = UnixStream::connect(&sock).unwrap();
        // Bound the rude client's own sends too: once the server stops
        // reading (because its writes to us are blocked), our write
        // would otherwise hang this test thread as well.
        rude.set_write_timeout(Some(std::time::Duration::from_millis(200)))
            .unwrap();
        let request = format!(
            "{{\"id\":1,\"algorithm\":\"charikar\",\"file\":\"{}\"}}\n",
            path.display()
        );
        let burst = request.repeat(4000);
        let _ = rude.write_all(burst.as_bytes());
        // Keep the rude connection open (unread) across the shutdown.
        let mut out = Vec::new();
        client_unix(
            &sock,
            Cursor::new("{\"op\":\"shutdown\"}\n".to_string()),
            &mut out,
        )
        .unwrap();
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        drop(rude);
        assert!(!sock.exists());
    }

    #[cfg(unix)]
    #[test]
    fn socket_file_removed_when_serve_exits_via_error_path() {
        // Regression test for the RAII guard: the serve loop used to
        // remove the socket file only on the clean-exit line, so any
        // error return or unwind leaked a stale socket. The guard
        // removes it on *every* exit; unwinding is the harshest such
        // path, so that is what we simulate around the guard itself.
        let dir = std::env::temp_dir().join("dsg_engine_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("guarded.sock");
        std::fs::write(&path, b"stale").unwrap();
        let path_for_panic = path.clone();
        let result = std::panic::catch_unwind(move || {
            let _guard = SocketGuard {
                path: path_for_panic,
            };
            panic!("serve loop died");
        });
        assert!(result.is_err());
        assert!(
            !path.exists(),
            "the guard must remove the socket on unwind/error exits"
        );
    }
}
