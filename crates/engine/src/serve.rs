//! Long-running JSONL serve mode: one request object per line in, one
//! response object per line out, over stdin/stdout or a Unix socket.
//!
//! Repeated queries against the same file are answered from the
//! engine's [`crate::GraphCatalog`] — the graph is loaded and
//! canonicalized once, then every further query is a cache hit (the
//! `loads` counter in each response makes that observable, and the CI
//! smoke test asserts it).
//!
//! ## Protocol
//!
//! Requests are **flat** JSON objects (see [`crate::minijson`]):
//!
//! ```text
//! {"op":"query","id":1,"algorithm":"approx","file":"g.txt","epsilon":0.5}
//! {"op":"query","id":2,"algorithm":"atleast-k","file":"g.txt","k":8}
//! {"op":"stats","id":3}
//! {"op":"shutdown"}
//! ```
//!
//! `op` defaults to `"query"`. Query fields mirror the CLI flags:
//! `algorithm`, `file` (required), `epsilon`, `k`, `delta`, `threads`,
//! `sketch`, `stream`, `binary`, `directed_input`, `backend`,
//! `memory_budget`, `flow_backend`, `min_density`, `max_communities`.
//! Omitted fields take the CLI defaults (ε = 0.5, k = 10, δ = 2) or the
//! server's resource policy.
//!
//! A query response nests the **identical** summary object the one-shot
//! CLI prints with `--json` (minus the nondeterministic `elapsed_ms`),
//! so serve-mode results are byte-comparable to one-shot runs:
//!
//! ```text
//! {"id":1,"ok":true,"result":{"algorithm":"approx",...},"cache_hit":1,"loads":1,"elapsed_ms":0.3}
//! ```
//!
//! Errors never kill the loop: `{"id":…,"ok":false,"error":"…"}` and the
//! next line is read. The loop ends cleanly on EOF (stdin mode: client
//! closed the pipe — the SIGTERM-equivalent close) or on a `shutdown`
//! op (socket mode, where EOF only ends one connection).

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use dsg_flow::FlowBackend;

use crate::engine::Engine;
use crate::minijson::{self, Value};
use crate::query::{Algorithm, BackendRequest, Query, ResourcePolicy, Source};
use crate::report::JsonBuilder;

/// What a serve loop did, for logging and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Query requests answered successfully.
    pub queries: u64,
    /// Requests answered with an error object.
    pub errors: u64,
    /// Whether a `shutdown` op ended the loop (vs EOF).
    pub shutdown: bool,
}

/// Runs the JSONL loop over arbitrary reader/writer pairs until EOF or a
/// `shutdown` op. This is the whole serve mode; the stdio and socket
/// entry points below only supply the transport.
pub fn serve_loop<R: BufRead, W: Write>(
    engine: &mut Engine,
    default_policy: &ResourcePolicy,
    reader: R,
    writer: &mut W,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, outcome) = handle_line(engine, default_policy, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        match outcome {
            LineOutcome::QueryOk => summary.queries += 1,
            LineOutcome::OpOk => {}
            LineOutcome::Error => summary.errors += 1,
            LineOutcome::Shutdown => {
                summary.shutdown = true;
                break;
            }
        }
    }
    Ok(summary)
}

/// How one request line was disposed of (drives the summary counters:
/// `stats`/`shutdown` ops are answered but are not *queries*).
enum LineOutcome {
    QueryOk,
    OpOk,
    Error,
    Shutdown,
}

/// Handles one request line; returns the response and its disposition.
fn handle_line(
    engine: &mut Engine,
    default_policy: &ResourcePolicy,
    line: &str,
) -> (String, LineOutcome) {
    let fields = match minijson::parse_object(line) {
        Ok(f) => f,
        Err(e) => return (error_response("null", &e), LineOutcome::Error),
    };
    let id = minijson::get(&fields, "id").map_or("null".to_string(), Value::to_json);
    let op = minijson::get(&fields, "op")
        .and_then(Value::as_str)
        .unwrap_or("query");
    match op {
        "shutdown" => {
            let mut j = JsonBuilder::new();
            j.raw_field("id", &id);
            j.raw_field("ok", "true");
            j.raw_field("bye", "true");
            (j.finish(), LineOutcome::Shutdown)
        }
        "stats" => {
            let stats = engine.catalog().stats();
            let mut j = JsonBuilder::new();
            j.raw_field("id", &id);
            j.raw_field("ok", "true");
            j.num_field("loads", stats.loads as f64);
            j.num_field("hits", stats.hits as f64);
            j.num_field("stat_scans", stats.stat_scans as f64);
            j.num_field("evictions", stats.evictions as f64);
            j.num_field("graphs", engine.catalog().len() as f64);
            (j.finish(), LineOutcome::OpOk)
        }
        "query" => match run_query(engine, default_policy, &fields) {
            Ok(response_body) => {
                let mut j = JsonBuilder::new();
                j.raw_field("id", &id);
                j.raw_field("ok", "true");
                j.raw_field("result", &response_body.result);
                if let Some(hit) = response_body.cache_hit {
                    j.num_field("cache_hit", if hit { 1.0 } else { 0.0 });
                }
                j.num_field("loads", response_body.loads as f64);
                j.num_field("elapsed_ms", response_body.elapsed_ms);
                (j.finish(), LineOutcome::QueryOk)
            }
            Err(e) => (error_response(&id, &e), LineOutcome::Error),
        },
        other => (
            error_response(&id, &format!("unknown op '{other}'")),
            LineOutcome::Error,
        ),
    }
}

fn error_response(id: &str, message: &str) -> String {
    let mut j = JsonBuilder::new();
    j.raw_field("id", id);
    j.raw_field("ok", "false");
    j.str_field("error", message);
    j.finish()
}

struct QueryResponse {
    result: String,
    cache_hit: Option<bool>,
    loads: u64,
    elapsed_ms: f64,
}

/// Decodes a query request, executes it, renders the nested result.
fn run_query(
    engine: &mut Engine,
    default_policy: &ResourcePolicy,
    fields: &[(String, Value)],
) -> Result<QueryResponse, String> {
    let str_of = |key: &str| -> Result<Option<&str>, String> {
        match minijson::get(fields, key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a string")),
        }
    };
    let num_of = |key: &str| -> Result<Option<f64>, String> {
        match minijson::get(fields, key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_num()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a number")),
        }
    };
    let uint_of = |key: &str| -> Result<Option<u64>, String> {
        match minijson::get(fields, key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_uint()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
        }
    };
    let bool_of = |key: &str| -> Result<bool, String> {
        match minijson::get(fields, key) {
            None | Some(Value::Null) => Ok(false),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("'{key}' must be a boolean")),
        }
    };

    let file = str_of("file")?.ok_or("missing 'file'")?.to_string();
    let algorithm_name = str_of("algorithm")?.unwrap_or("approx");
    let epsilon = num_of("epsilon")?.unwrap_or(0.5);
    let k = uint_of("k")?.unwrap_or(10) as usize;
    let delta = num_of("delta")?.unwrap_or(2.0);
    let sketch = uint_of("sketch")?.map(|b| b as u32);
    let flow = match str_of("flow_backend")? {
        None | Some("dinic") => FlowBackend::Dinic,
        Some("push-relabel") => FlowBackend::PushRelabel,
        Some(other) => return Err(format!("unknown flow_backend '{other}'")),
    };
    let algorithm = match algorithm_name {
        "approx" => Algorithm::Approx { epsilon, sketch },
        "atleast-k" => Algorithm::AtLeastK { k, epsilon },
        "directed" => Algorithm::Directed { delta, epsilon },
        "charikar" => Algorithm::Charikar,
        "exact" => Algorithm::Exact { flow },
        "enumerate" => Algorithm::Enumerate {
            epsilon,
            min_density: num_of("min_density")?.unwrap_or(1.0),
            max_communities: uint_of("max_communities")?.unwrap_or(32) as usize,
        },
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let mut backend = match str_of("backend")? {
        None => None,
        Some(raw) => BackendRequest::parse(raw).ok_or_else(|| {
            format!("unknown backend '{raw}' (auto|memory|parallel|stream|mapreduce)")
        })?,
    };
    if bool_of("stream")? {
        backend = Some(BackendRequest::Streamed);
    }
    let query = Query { algorithm, backend };
    let policy = ResourcePolicy {
        memory_budget_bytes: uint_of("memory_budget")?.or(default_policy.memory_budget_bytes),
        threads: uint_of("threads")?.map_or(default_policy.threads, |t| t as usize),
    };
    let source = Source::File {
        path: PathBuf::from(file),
        binary: bool_of("binary")?,
        directed_input: bool_of("directed_input")?,
    };
    let report = engine
        .execute(&source, &query, &policy)
        .map_err(|e| e.to_string())?;
    Ok(QueryResponse {
        result: report.json_object(false),
        cache_hit: report.cache_hit,
        loads: engine.catalog().stats().loads,
        elapsed_ms: report.elapsed_ms,
    })
}

/// Serves the JSONL loop over stdin/stdout until EOF or `shutdown`.
pub fn serve_stdio(engine: &mut Engine, policy: &ResourcePolicy) -> std::io::Result<ServeSummary> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    serve_loop(engine, policy, stdin.lock(), &mut stdout)
}

/// Serves the JSONL loop on a Unix socket: connections are accepted
/// sequentially and each runs the loop until its EOF; a `shutdown` op
/// stops the whole server. A connection that fails mid-session — abrupt
/// disconnect, a client that stops reading (EPIPE) — ends **that
/// connection only**: the error is absorbed, its partial counts are
/// dropped, and the server keeps accepting. Only bind/accept failures
/// take the server down. A stale socket file at `path` is replaced; the
/// socket file is removed on clean shutdown.
#[cfg(unix)]
pub fn serve_unix(
    engine: &mut Engine,
    policy: &ResourcePolicy,
    path: &Path,
) -> std::io::Result<ServeSummary> {
    use std::os::unix::net::UnixListener;

    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    let mut total = ServeSummary::default();
    for conn in listener.incoming() {
        let conn = conn?;
        let reader = match conn.try_clone() {
            Ok(c) => BufReader::new(c),
            Err(_) => continue,
        };
        let mut writer = conn;
        // A failed connection must not kill the long-running server.
        let Ok(summary) = serve_loop(engine, policy, reader, &mut writer) else {
            continue;
        };
        total.queries += summary.queries;
        total.errors += summary.errors;
        if summary.shutdown {
            total.shutdown = true;
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(total)
}

/// The matching client: forwards each line of `requests` to the server
/// at `path` and writes each response line to `responses`. Returns the
/// number of exchanges. Used by `densest client` and the CI smoke test.
#[cfg(unix)]
pub fn client_unix<R: BufRead, W: Write>(
    path: &Path,
    requests: R,
    responses: &mut W,
) -> std::io::Result<u64> {
    use std::os::unix::net::UnixStream;

    let stream = UnixStream::connect(path)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut exchanges = 0u64;
    for line in requests.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-exchange",
            ));
        }
        responses.write_all(response.as_bytes())?;
        exchanges += 1;
    }
    Ok(exchanges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn fixture(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dsg_engine_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    fn k5_path() -> PathBuf {
        let mut s = String::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                s.push_str(&format!("{u} {v}\n"));
            }
        }
        fixture("k5.txt", &s)
    }

    fn field<'a>(line: &'a str, key: &str) -> &'a str {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap();
        &rest[..end]
    }

    #[test]
    fn repeated_queries_load_once_and_are_byte_stable() {
        let path = k5_path();
        let p = path.display();
        let requests = format!(
            "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}\n\
             {{\"id\":2,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}\n\
             {{\"id\":3,\"algorithm\":\"charikar\",\"file\":\"{p}\"}}\n\
             {{\"id\":4,\"op\":\"stats\"}}\n"
        );
        let mut engine = Engine::new();
        let mut out = Vec::new();
        let summary = serve_loop(
            &mut engine,
            &ResourcePolicy::default(),
            Cursor::new(requests),
            &mut out,
        )
        .unwrap();
        assert_eq!(summary.queries, 3, "the stats op is not a query");
        assert_eq!(summary.errors, 0);
        assert!(!summary.shutdown, "EOF, not shutdown");
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        // One load serves all three queries.
        assert_eq!(field(lines[0], "cache_hit"), "0");
        assert_eq!(field(lines[1], "cache_hit"), "1");
        assert_eq!(field(lines[2], "cache_hit"), "1");
        for l in &lines[..3] {
            assert_eq!(field(l, "loads"), "1", "{l}");
        }
        assert_eq!(field(lines[3], "loads"), "1");
        assert_eq!(field(lines[3], "hits"), "2");
        assert_eq!(field(lines[3], "graphs"), "1");
        // Identical queries produce byte-identical nested results.
        let result_of = |l: &str| l.split("\"result\":").nth(1).unwrap().to_string();
        let r1 = result_of(lines[0]);
        let r2 = result_of(lines[1]);
        assert_eq!(
            r1.split(",\"cache_hit\"").next(),
            r2.split(",\"cache_hit\"").next()
        );
        assert_eq!(field(lines[0], "density"), "2");
    }

    #[test]
    fn shutdown_op_ends_the_loop_and_later_lines_are_unread() {
        let path = k5_path();
        let requests = format!(
            "{{\"op\":\"shutdown\",\"id\":\"bye\"}}\n\
             {{\"id\":9,\"algorithm\":\"approx\",\"file\":\"{}\"}}\n",
            path.display()
        );
        let mut engine = Engine::new();
        let mut out = Vec::new();
        let summary = serve_loop(
            &mut engine,
            &ResourcePolicy::default(),
            Cursor::new(requests),
            &mut out,
        )
        .unwrap();
        assert!(summary.shutdown);
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().count(), 1, "{out}");
        assert!(out.contains("\"id\":\"bye\""), "{out}");
        assert_eq!(engine.catalog().stats().loads, 0);
    }

    #[test]
    fn errors_keep_the_loop_alive() {
        let path = k5_path();
        let requests = format!(
            "not json\n\
             {{\"id\":1,\"algorithm\":\"nope\",\"file\":\"x\"}}\n\
             {{\"id\":2,\"algorithm\":\"approx\"}}\n\
             {{\"id\":3,\"file\":\"/definitely/not/here.txt\"}}\n\
             {{\"id\":4,\"algorithm\":\"atleast-k\",\"file\":\"{p}\",\"k\":1000}}\n\
             {{\"id\":5,\"algorithm\":\"approx\",\"file\":\"{p}\"}}\n",
            p = path.display()
        );
        let mut engine = Engine::new();
        let mut out = Vec::new();
        let summary = serve_loop(
            &mut engine,
            &ResourcePolicy::default(),
            Cursor::new(requests),
            &mut out,
        )
        .unwrap();
        assert_eq!(summary.errors, 5);
        assert_eq!(summary.queries, 1);
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 6);
        for l in &lines[..5] {
            assert_eq!(field(l, "ok"), "false", "{l}");
            assert!(l.contains("\"error\":"), "{l}");
        }
        assert!(lines[4].contains("exceeds the graph"), "{}", lines[4]);
        assert_eq!(field(lines[5], "ok"), "true");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_survives_client_disconnects() {
        use std::os::unix::net::UnixStream;

        let path = k5_path();
        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/survive.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let mut engine = Engine::new();
            serve_unix(&mut engine, &ResourcePolicy::default(), &sock_for_server).unwrap()
        });
        for _ in 0..200 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // First client writes a query and vanishes without reading or
        // shutting down; the server must keep accepting.
        {
            let mut rude = UnixStream::connect(&sock).unwrap();
            writeln!(
                rude,
                "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{}\"}}",
                path.display()
            )
            .unwrap();
            let _ = rude.shutdown(std::net::Shutdown::Both);
        }
        // Second client gets full service.
        let requests = format!(
            "{{\"id\":2,\"algorithm\":\"approx\",\"file\":\"{}\"}}\n{{\"op\":\"shutdown\"}}\n",
            path.display()
        );
        let mut out = Vec::new();
        client_unix(&sock, Cursor::new(requests), &mut out).unwrap();
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        let out = String::from_utf8(out).unwrap();
        assert_eq!(field(out.lines().next().unwrap(), "ok"), "true", "{out}");
        assert_eq!(field(out.lines().next().unwrap(), "density"), "2", "{out}");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path = k5_path();
        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/roundtrip.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let mut engine = Engine::new();
            serve_unix(&mut engine, &ResourcePolicy::default(), &sock_for_server).unwrap()
        });
        // Wait for the socket to appear.
        for _ in 0..200 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let requests = format!(
            "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{p}\"}}\n\
             {{\"id\":2,\"algorithm\":\"exact\",\"file\":\"{p}\"}}\n\
             {{\"op\":\"shutdown\"}}\n",
            p = path.display()
        );
        let mut out = Vec::new();
        let n = client_unix(&sock, Cursor::new(requests), &mut out).unwrap();
        assert_eq!(n, 3);
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        assert_eq!(summary.queries, 2, "the shutdown op is not a query");
        assert!(!sock.exists(), "socket file removed on clean shutdown");
        let out = String::from_utf8(out).unwrap();
        assert_eq!(field(out.lines().nth(1).unwrap(), "density"), "2");
    }
}
