//! Long-running JSONL serve mode: one request object per line in, one
//! response object per line out, over stdin/stdout or a Unix socket.
//!
//! Repeated queries against the same file are answered from the
//! engine's [`crate::GraphCatalog`] — the graph is loaded and
//! canonicalized once (single-flight even under concurrency), then
//! every further query is a cache hit — and repeated *identical*
//! queries are replayed from the engine's [`crate::ResultCache`]
//! without recomputing (the `loads` / `result_cache_hit` counters in
//! each response make both observable, and the CI smoke tests assert
//! them).
//!
//! ## Concurrency
//!
//! Socket mode runs an **accept thread plus `workers` event loops**
//! ([`ServeOptions`]): each accepted connection is assigned round-robin
//! to a worker, and every worker multiplexes its connection set with
//! readiness-based nonblocking I/O (`poll(2)` via [`crate::readiness`],
//! infinite timeout). Idle connections cost **zero wakeups** — nobody
//! spins on read-timeout ticks — and cross-thread signals (a new
//! connection handed over, the shutdown latch) arrive through a
//! self-pipe waker, so graceful shutdown completes as soon as in-flight
//! requests drain instead of waiting out a timeout tick per parked
//! connection. `max_connections` bounds the *live* connections across
//! all workers; at the cap the accept thread parks until one closes,
//! which is the backpressure (clients queue in the socket backlog
//! instead of overwhelming the server). All workers share one
//! [`Engine`] (`&Engine` — the engine is internally synchronized). A
//! `shutdown` op latches the shutdown flag, wakes every event loop, and
//! removes the socket file. The socket file is removed by an RAII
//! guard, so it disappears even when the serve loop exits through an
//! error path or a panic.
//!
//! ## Wire formats
//!
//! Each socket connection speaks one of two wire formats, picked by its
//! **first byte**: [`crate::frame::MAGIC`] (`0xD5`) selects the binary
//! frame protocol, anything else — in practice `{` — selects JSONL, so
//! clients from before the binary protocol existed keep working
//! unchanged. Both formats carry the same requests and produce the same
//! response objects: a binary reply frame wraps the byte-identical JSON
//! text a JSONL response line would hold (see [`crate::frame`] for the
//! layout, and the parity tests below which assert it). Binary
//! connections may also **pipeline**: a batch frame carries N requests
//! and the server answers each with its own reply frame, in order,
//! without waiting for the client to read between them. Per-connection
//! read/write/parse scratch buffers are reused across requests, so
//! steady-state request decoding performs no per-request allocation
//! (response rendering still builds one `String` per reply).
//!
//! ## Protocol
//!
//! Requests are **flat** JSON objects (see [`crate::minijson`]):
//!
//! ```text
//! {"op":"query","id":1,"algorithm":"approx","file":"g.txt","epsilon":0.5}
//! {"op":"query","id":2,"algorithm":"atleast-k","file":"g.txt","k":8}
//! {"op":"create_graph","id":3,"graph":"live","edges":"0 1, 1 2"}
//! {"op":"add_edges","id":4,"graph":"live","edges":"0 2, 2 3"}
//! {"op":"query","id":5,"algorithm":"approx","graph":"live"}
//! {"op":"remove_edges","id":6,"graph":"live","edges":"2 3"}
//! {"op":"compact","id":7,"graph":"live"}
//! {"op":"stats","id":8}
//! {"op":"shutdown"}
//! ```
//!
//! `op` defaults to `"query"`. Query fields mirror the CLI flags:
//! `algorithm`, `file` **or** `graph` (exactly one), `epsilon`, `k`,
//! `delta`, `threads`, `sketch`, `stream`, `binary`, `directed_input`,
//! `backend`, `memory_budget`, `flow_backend`, `min_density`,
//! `max_communities`. Omitted fields take the CLI defaults (ε = 0.5,
//! k = 10, δ = 2) or the server's resource policy.
//!
//! ## Mutable graph sessions
//!
//! `create_graph` makes a named in-memory mutable graph (`"directed"`
//! for orientation, optional seed `"edges"`); `add_edges` /
//! `remove_edges` mutate it and `compact` folds its delta logs. The
//! protocol stays flat: a batched edge list is one string of
//! whitespace- (and optionally comma-) separated `u v` pairs, e.g.
//! `"edges":"0 1, 1 2, 2 3"`. Every state-changing op returns the
//! graph's new **version**; queries name the graph via `"graph"` and
//! always run against one consistent versioned snapshot — a mutation
//! arriving mid-query never tears it, and the result cache keys on
//! `(graph, version)` so a bumped version can never replay a stale
//! result (observable as `result_cache_hit: 0` on the first query after
//! a mutation).
//!
//! A query response nests the **identical** summary object the one-shot
//! CLI prints with `--json` (minus the nondeterministic `elapsed_ms`),
//! so serve-mode results are byte-comparable to one-shot runs:
//!
//! ```text
//! {"id":1,"ok":true,"result":{...},"cache_hit":1,"result_cache_hit":0,"loads":1,"elapsed_ms":0.3}
//! ```
//!
//! The `stats` op reports the catalog counters (`loads`, `hits`,
//! `stat_scans`, `evictions`, `graphs`), the result-cache counters
//! (`result_hits`, `result_misses`, `result_insertions`,
//! `result_evictions`, `result_entries`, `result_bytes`), the
//! connection accounting (`conn_active`, `conn_peak` — the
//! concurrent-connection high-water mark), the session accounting
//! (`mutations`, `graphs_named`, warm-restart `warm_hits` /
//! `warm_fallbacks`, incremental-tier `incremental_hits` /
//! `incremental_fallbacks`), and a `named` array with one object per
//! session graph (`name`, `version`, `nodes`, `edges`, `delta_edges`,
//! `compactions`, `warm_hits`, `warm_fallbacks`, `incremental_hits`,
//! `incremental_fallbacks`).
//!
//! Errors never kill the loop: `{"id":…,"ok":false,"error":"…"}` and the
//! next line is read. The loop ends cleanly on EOF (stdin mode: client
//! closed the pipe — the SIGTERM-equivalent close) or on a `shutdown`
//! op (socket mode, where EOF only ends one connection).

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dsg_flow::FlowBackend;

use crate::engine::Engine;
use crate::minijson::{self, Value};
use crate::query::{Algorithm, BackendRequest, Query, ResourcePolicy, Source};
use crate::report::JsonBuilder;

/// Worker-pool sizing and durability wiring of the socket serve mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads serving connections concurrently (clamped ≥ 1).
    /// With `shards > 1` this sizes both the router's I/O workers and
    /// each shard's executor pool.
    pub workers: usize,
    /// Bound of the pending-connection queue between the accept thread
    /// and the workers (clamped ≥ 1). A full queue blocks the accept
    /// thread — that is the backpressure.
    pub max_connections: usize,
    /// Engine shards (clamped ≥ 1). At 1 the classic single-engine pool
    /// runs; above 1 a front router owns all connection I/O and hash-
    /// routes each request to one of `shards` independent engines over
    /// bounded per-shard queues — see [`crate::shard`].
    pub shards: usize,
    /// Root of the durable-session store (`None` = in-memory sessions).
    /// Each shard opens `<data_dir>/shard-<i>` — its own WAL + snapshot
    /// tree, so shards share no files — recovering whatever a previous
    /// process left there. See [`crate::persistence`].
    pub data_dir: Option<PathBuf>,
    /// fsync the WAL after every Nth appended record (0 = never fsync
    /// explicitly; crash recovery still holds — this is the power-loss
    /// durability bound). Ignored without `data_dir`.
    pub fsync_every: u64,
    /// Rotate a compacted snapshot (and truncate the WAL) every Nth
    /// appended record per graph (clamped ≥ 1). Ignored without
    /// `data_dir`.
    pub snapshot_every: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            max_connections: 64,
            shards: 1,
            data_dir: None,
            fsync_every: crate::persistence::DEFAULT_FSYNC_EVERY,
            snapshot_every: crate::persistence::DEFAULT_SNAPSHOT_EVERY,
        }
    }
}

/// Shared serve-side accounting: request counters, the shutdown latch,
/// and the concurrent-connection high-water mark. One instance is
/// shared by every worker of a [`serve_unix`] run and surfaced by the
/// `stats` op.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    queries: AtomicU64,
    mutations: AtomicU64,
    errors: AtomicU64,
    shutdown: AtomicBool,
    active_connections: AtomicU64,
    peak_connections: AtomicU64,
    total_connections: AtomicU64,
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a `shutdown` op has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Latches the shutdown flag (it is never cleared).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Concurrent connections being served right now.
    pub fn active_connections(&self) -> u64 {
        self.active_connections.load(Ordering::Relaxed)
    }

    /// The concurrent-connection high-water mark.
    pub fn peak_connections(&self) -> u64 {
        self.peak_connections.load(Ordering::Relaxed)
    }

    pub(crate) fn connection_opened(&self) {
        self.total_connections.fetch_add(1, Ordering::Relaxed);
        let now = self.active_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn connection_closed(&self) {
        self.active_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// `(queries, mutations, errors)` so far — the shard layer sums
    /// these across per-shard metrics for merged stats and summaries.
    pub(crate) fn op_counts(&self) -> (u64, u64, u64) {
        (
            self.queries.load(Ordering::Relaxed),
            self.mutations.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }

    /// Counts one request answered with an error object (router-side
    /// parse/framing errors that never reach a shard).
    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn summary(&self) -> ServeSummary {
        ServeSummary {
            queries: self.queries.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shutdown: self.shutdown_requested(),
            connections: self.total_connections.load(Ordering::Relaxed),
            peak_connections: self.peak_connections(),
            // Engine-level counters; the serve entry points overwrite
            // these from the engine they actually ran.
            incremental_hits: 0,
            incremental_fallbacks: 0,
        }
    }
}

/// What a serve loop did, for logging and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Query requests answered successfully.
    pub queries: u64,
    /// Graph-mutation requests (`create_graph`, `add_edges`,
    /// `remove_edges`, `compact`) answered successfully.
    pub mutations: u64,
    /// Requests answered with an error object.
    pub errors: u64,
    /// Whether a `shutdown` op ended the loop (vs EOF).
    pub shutdown: bool,
    /// Connections served (1 for the stdio mode).
    pub connections: u64,
    /// Most connections served concurrently at any instant.
    pub peak_connections: u64,
    /// Named-graph queries answered by the incremental tier (delta
    /// re-peel verified against the published snapshot).
    pub incremental_hits: u64,
    /// Incremental attempts that fell back to the warm/cold paths.
    pub incremental_fallbacks: u64,
}

/// Runs the JSONL loop over arbitrary reader/writer pairs until EOF or a
/// `shutdown` op, updating `metrics` as it goes. This is the stdio serve
/// mode and the per-connection protocol of the socket mode (which adds
/// shutdown-aware reads on top — see `serve_connection`).
pub fn serve_loop<R: BufRead, W: Write>(
    engine: &Engine,
    default_policy: &ResourcePolicy,
    reader: R,
    writer: &mut W,
    metrics: &ServeMetrics,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary {
        connections: 1,
        peak_connections: 1,
        ..ServeSummary::default()
    };
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, outcome) = handle_line(engine, default_policy, metrics, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        match outcome {
            LineOutcome::QueryOk => summary.queries += 1,
            LineOutcome::MutationOk => summary.mutations += 1,
            LineOutcome::OpOk => {}
            LineOutcome::Error => summary.errors += 1,
            LineOutcome::Shutdown => {
                summary.shutdown = true;
                break;
            }
        }
    }
    let inc = engine.incremental_stats();
    summary.incremental_hits = inc.hits;
    summary.incremental_fallbacks = inc.fallbacks;
    Ok(summary)
}

/// How one request line was disposed of (drives the summary counters:
/// `stats`/`shutdown` ops are answered but are not *queries*; graph
/// mutations are counted on their own).
pub(crate) enum LineOutcome {
    QueryOk,
    MutationOk,
    OpOk,
    Error,
    Shutdown,
}

/// Handles one request line; returns the response and its disposition.
/// Also updates the shared metrics (so concurrent workers aggregate
/// into one set of counters).
fn handle_line(
    engine: &Engine,
    default_policy: &ResourcePolicy,
    metrics: &ServeMetrics,
    line: &str,
) -> (String, LineOutcome) {
    let fields = match minijson::parse_object(line) {
        Ok(f) => f,
        Err(e) => {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            return (error_response("null", &e.to_string()), LineOutcome::Error);
        }
    };
    handle_fields(engine, default_policy, metrics, &fields, None)
}

/// Handles one parsed request — the shared semantic core of both wire
/// formats. The JSONL path parses a line and passes the fields with no
/// override; the binary path decodes a frame payload and passes the
/// frame's opcode as `op_override` (binary requests carry the op in the
/// header, not as a field). Everything downstream of here is identical,
/// which is what makes binary replies byte-identical in content to
/// JSONL response lines.
pub(crate) fn handle_fields(
    engine: &Engine,
    default_policy: &ResourcePolicy,
    metrics: &ServeMetrics,
    fields: &[(String, Value)],
    op_override: Option<&str>,
) -> (String, LineOutcome) {
    let op = op_override.unwrap_or_else(|| {
        minijson::get(fields, "op")
            .and_then(Value::as_str)
            .unwrap_or("query")
    });
    // The success envelope starts identically for every op; the id is
    // echoed straight from the parsed value (no intermediate string).
    // Error paths are cold and re-derive the id themselves.
    let mut j = JsonBuilder::new();
    match minijson::get(fields, "id") {
        Some(v) => j.value_field("id", v),
        None => j.raw_field("id", "null"),
    }
    let id = || minijson::get(fields, "id").map_or("null".to_string(), Value::to_json);
    match op {
        "shutdown" => {
            metrics.request_shutdown();
            j.raw_field("ok", "true");
            j.raw_field("bye", "true");
            (j.finish(), LineOutcome::Shutdown)
        }
        "stats" => {
            let stats = engine.catalog().stats();
            let results = engine.results().stats();
            let warm = engine.warm_stats();
            j.raw_field("ok", "true");
            j.num_field("loads", stats.loads as f64);
            j.num_field("hits", stats.hits as f64);
            j.num_field("stat_scans", stats.stat_scans as f64);
            j.num_field("evictions", stats.evictions as f64);
            j.num_field("graphs", engine.catalog().len() as f64);
            j.num_field("result_hits", results.hits as f64);
            j.num_field("result_misses", results.misses as f64);
            j.num_field("result_insertions", results.insertions as f64);
            j.num_field("result_evictions", results.evictions as f64);
            j.num_field("result_entries", results.entries as f64);
            j.num_field("result_bytes", results.bytes as f64);
            j.num_field("conn_active", metrics.active_connections() as f64);
            j.num_field("conn_peak", metrics.peak_connections() as f64);
            j.num_field("mutations", engine.catalog().mutations() as f64);
            j.num_field("graphs_named", engine.catalog().named_len() as f64);
            j.num_field("warm_hits", warm.hits as f64);
            j.num_field("warm_fallbacks", warm.fallbacks as f64);
            let inc = engine.incremental_stats();
            j.num_field("incremental_hits", inc.hits as f64);
            j.num_field("incremental_fallbacks", inc.fallbacks as f64);
            // Startup-recovery counters (zero on a non-durable server):
            // the crash-recovery CI lane asserts on these structured
            // fields instead of grepping server logs.
            let (replayed, dropped) = engine.catalog().recovery_counters();
            j.num_field("replayed_ops", replayed as f64);
            j.num_field("dropped_tail_records", dropped as f64);
            // Per-session-graph accounting, last so the flat fields
            // above stay trivially greppable — and only when at least
            // one session graph exists, so the response of a
            // session-less server stays a flat object that the minijson
            // request parser itself could read (the throughput
            // experiment and older clients rely on that).
            let named: Vec<String> = engine
                .catalog()
                .named_stats()
                .iter()
                .map(|g| {
                    let mut item = JsonBuilder::new();
                    item.str_field("name", &g.name);
                    item.num_field("version", g.version as f64);
                    item.num_field("nodes", g.nodes as f64);
                    item.num_field("edges", g.edges as f64);
                    item.num_field("delta_edges", g.delta_edges as f64);
                    item.num_field("compactions", g.compactions as f64);
                    item.num_field("warm_hits", g.warm_hits as f64);
                    item.num_field("warm_fallbacks", g.warm_fallbacks as f64);
                    item.num_field("incremental_hits", g.incremental_hits as f64);
                    item.num_field("incremental_fallbacks", g.incremental_fallbacks as f64);
                    item.num_field("wal_bytes", g.wal_bytes as f64);
                    item.num_field("snapshot_version", g.snapshot_version as f64);
                    item.num_field("last_fsync", g.last_fsync as f64);
                    item.num_field("replayed_ops", g.replayed_ops as f64);
                    item.num_field("dropped_tail_records", g.dropped_tail_records as f64);
                    item.finish()
                })
                .collect();
            if !named.is_empty() {
                j.raw_field("named", &format!("[{}]", named.join(",")));
            }
            (j.finish(), LineOutcome::OpOk)
        }
        "create_graph" | "add_edges" | "remove_edges" | "compact" => {
            j.raw_field("ok", "true");
            match run_mutation(engine, op, fields, &mut j) {
                Ok(()) => {
                    metrics.mutations.fetch_add(1, Ordering::Relaxed);
                    (j.finish(), LineOutcome::MutationOk)
                }
                Err(e) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    (error_response(&id(), &e), LineOutcome::Error)
                }
            }
        }
        "query" => {
            j.raw_field("ok", "true");
            match run_query(engine, default_policy, fields, &mut j) {
                Ok(()) => {
                    metrics.queries.fetch_add(1, Ordering::Relaxed);
                    (j.finish(), LineOutcome::QueryOk)
                }
                Err(e) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    (error_response(&id(), &e), LineOutcome::Error)
                }
            }
        }
        other => {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            (
                error_response(&id(), &format!("unknown op '{other}'")),
                LineOutcome::Error,
            )
        }
    }
}

pub(crate) fn error_response(id: &str, message: &str) -> String {
    let mut j = JsonBuilder::new();
    j.raw_field("id", id);
    j.raw_field("ok", "false");
    j.str_field("error", message);
    j.finish()
}

/// Decodes the flat `"edges"` string of a mutation request: `u v` node
/// id pairs separated by whitespace and/or commas/semicolons, e.g.
/// `"0 1, 1 2"`. The request schema stays flat (no JSON arrays), so one
/// op still batches arbitrarily many edges.
fn parse_edge_pairs(raw: &str) -> Result<Vec<(u32, u32)>, String> {
    let mut ids: Vec<u32> = Vec::new();
    for token in raw
        .split(|c: char| c == ',' || c == ';' || c.is_whitespace())
        .filter(|t| !t.is_empty())
    {
        ids.push(
            token
                .parse::<u32>()
                .map_err(|_| format!("bad node id '{token}' in 'edges'"))?,
        );
    }
    if !ids.len().is_multiple_of(2) {
        return Err(format!(
            "'edges' must hold an even number of node ids ('u v' pairs; got {})",
            ids.len()
        ));
    }
    Ok(ids.chunks(2).map(|pair| (pair[0], pair[1])).collect())
}

/// Executes one graph-mutation op, appending the outcome fields to the
/// response under construction.
fn run_mutation(
    engine: &Engine,
    op: &str,
    fields: &[(String, Value)],
    j: &mut JsonBuilder,
) -> Result<(), String> {
    let str_of = |key: &str| -> Result<Option<&str>, String> {
        match minijson::get(fields, key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a string")),
        }
    };
    let name = str_of("graph")?.ok_or("missing 'graph'")?.to_string();
    let edges = match str_of("edges")? {
        Some(raw) => parse_edge_pairs(raw)?,
        None => Vec::new(),
    };
    let outcome = match op {
        "create_graph" => {
            let directed = match minijson::get(fields, "directed") {
                None | Some(Value::Null) => false,
                Some(v) => v.as_bool().ok_or("'directed' must be a boolean")?,
            };
            let kind = if directed {
                dsg_graph::GraphKind::Directed
            } else {
                dsg_graph::GraphKind::Undirected
            };
            engine.create_graph(&name, kind, &edges)
        }
        "add_edges" => {
            if edges.is_empty() {
                return Err("missing 'edges'".into());
            }
            engine.add_edges(&name, &edges)
        }
        "remove_edges" => {
            if edges.is_empty() {
                return Err("missing 'edges'".into());
            }
            engine.remove_edges(&name, &edges)
        }
        "compact" => engine.compact_graph(&name),
        // A dispatch bug must surface as an error reply, not a panicked
        // worker thread stranding its connections.
        other => return Err(format!("unsupported mutation op '{other}'")),
    }
    .map_err(|e| e.to_string())?;
    j.str_field("graph", &name);
    j.num_field("version", outcome.version as f64);
    j.num_field("nodes", outcome.nodes as f64);
    j.num_field("edges", outcome.edges as f64);
    j.num_field("applied", outcome.applied as f64);
    j.num_field("delta_edges", outcome.delta_edges as f64);
    j.num_field("compacted", if outcome.compacted { 1.0 } else { 0.0 });
    Ok(())
}

/// Decodes a query request, executes it, and appends the result fields
/// (`result`, cache markers, `loads`, `elapsed_ms`) to the response
/// envelope under construction. The nested result embeds the report's
/// memoized rendering directly — no intermediate string on the replay
/// hot path.
fn run_query(
    engine: &Engine,
    default_policy: &ResourcePolicy,
    fields: &[(String, Value)],
    j: &mut JsonBuilder,
) -> Result<(), String> {
    fn str_v<'v>(key: &str, v: &'v Value) -> Result<Option<&'v str>, String> {
        match v {
            Value::Null => Ok(None),
            v => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a string")),
        }
    }
    fn num_v(key: &str, v: &Value) -> Result<Option<f64>, String> {
        match v {
            Value::Null => Ok(None),
            v => v
                .as_num()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a number")),
        }
    }
    fn uint_v(key: &str, v: &Value) -> Result<Option<u64>, String> {
        match v {
            Value::Null => Ok(None),
            v => v
                .as_uint()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
        }
    }
    fn bool_v(key: &str, v: &Value) -> Result<bool, String> {
        match v {
            Value::Null => Ok(false),
            v => v
                .as_bool()
                .ok_or_else(|| format!("'{key}' must be a boolean")),
        }
    }

    // One pass over the request fields instead of one linear scan per
    // key — this extraction runs once per served query. Semantics match
    // the scan-per-key version: the last occurrence of a key wins, an
    // explicit `null` resets to the default, and the four keys that were
    // only validated when their branch was taken (`min_density`,
    // `max_communities`, `binary`, `directed_input`) stay lazy.
    let mut file: Option<&str> = None;
    let mut graph: Option<&str> = None;
    let mut algorithm_name: Option<&str> = None;
    let mut epsilon: Option<f64> = None;
    let mut k: Option<u64> = None;
    let mut delta: Option<f64> = None;
    let mut sketch: Option<u64> = None;
    let mut flow_raw: Option<&str> = None;
    let mut backend_raw: Option<&str> = None;
    let mut stream = false;
    let mut memory_budget: Option<u64> = None;
    let mut threads: Option<u64> = None;
    let mut min_density_v: Option<&Value> = None;
    let mut max_communities_v: Option<&Value> = None;
    let mut binary_v: Option<&Value> = None;
    let mut directed_input_v: Option<&Value> = None;
    for (key, value) in fields {
        match key.as_str() {
            "file" => file = str_v("file", value)?,
            "graph" => graph = str_v("graph", value)?,
            "algorithm" => algorithm_name = str_v("algorithm", value)?,
            "epsilon" => epsilon = num_v("epsilon", value)?,
            "k" => k = uint_v("k", value)?,
            "delta" => delta = num_v("delta", value)?,
            "sketch" => sketch = uint_v("sketch", value)?,
            "flow_backend" => flow_raw = str_v("flow_backend", value)?,
            "backend" => backend_raw = str_v("backend", value)?,
            "stream" => stream = bool_v("stream", value)?,
            "memory_budget" => memory_budget = uint_v("memory_budget", value)?,
            "threads" => threads = uint_v("threads", value)?,
            "min_density" => min_density_v = Some(value),
            "max_communities" => max_communities_v = Some(value),
            "binary" => binary_v = Some(value),
            "directed_input" => directed_input_v = Some(value),
            _ => {}
        }
    }

    let algorithm_name = algorithm_name.unwrap_or("approx");
    let epsilon = epsilon.unwrap_or(0.5);
    let k = k.unwrap_or(10) as usize;
    let delta = delta.unwrap_or(2.0);
    let sketch = sketch.map(|b| b as u32);
    let flow = match flow_raw {
        None | Some("dinic") => FlowBackend::Dinic,
        Some("push-relabel") => FlowBackend::PushRelabel,
        Some(other) => return Err(format!("unknown flow_backend '{other}'")),
    };
    let algorithm = match algorithm_name {
        "approx" => Algorithm::Approx { epsilon, sketch },
        "atleast-k" => Algorithm::AtLeastK { k, epsilon },
        "directed" => Algorithm::Directed { delta, epsilon },
        "charikar" => Algorithm::Charikar,
        "exact" => Algorithm::Exact { flow },
        "enumerate" => Algorithm::Enumerate {
            epsilon,
            min_density: min_density_v
                .map_or(Ok(None), |v| num_v("min_density", v))?
                .unwrap_or(1.0),
            max_communities: max_communities_v
                .map_or(Ok(None), |v| uint_v("max_communities", v))?
                .unwrap_or(32) as usize,
        },
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let mut backend = match backend_raw {
        None => None,
        Some(raw) => BackendRequest::parse(raw).ok_or_else(|| {
            format!("unknown backend '{raw}' (auto|memory|parallel|stream|mapreduce)")
        })?,
    };
    if stream {
        backend = Some(BackendRequest::Streamed);
    }
    let query = Query { algorithm, backend };
    let policy = ResourcePolicy {
        memory_budget_bytes: memory_budget.or(default_policy.memory_budget_bytes),
        threads: threads.map_or(default_policy.threads, |t| t as usize),
    };
    let source = match (file, graph) {
        (Some(path), None) => Source::File {
            path: PathBuf::from(path),
            binary: binary_v.map_or(Ok(false), |v| bool_v("binary", v))?,
            directed_input: directed_input_v.map_or(Ok(false), |v| bool_v("directed_input", v))?,
        },
        (None, Some(name)) => Source::Named {
            name: name.to_string(),
        },
        (Some(_), Some(_)) => return Err("specify either 'file' or 'graph', not both".into()),
        (None, None) => return Err("missing 'file' or 'graph'".into()),
    };
    match engine
        .execute_serve(&source, &query, &policy)
        .map_err(|e| e.to_string())?
    {
        // Replay fast path: the stored report is shared, not cloned —
        // its rendering is reused verbatim and the per-request envelope
        // fields (both caches hit by construction, fresh elapsed) come
        // from the replay itself.
        crate::engine::ServeReport::Shared { report, elapsed_ms } => {
            j.raw_field("result", report.json_str());
            j.num_field("cache_hit", 1.0);
            j.num_field("result_cache_hit", 1.0);
            j.num_field("loads", engine.catalog().stats().loads as f64);
            j.num_field("elapsed_ms", elapsed_ms);
        }
        crate::engine::ServeReport::Owned(report) => {
            j.raw_field("result", report.json_str());
            if let Some(hit) = report.cache_hit {
                j.num_field("cache_hit", if hit { 1.0 } else { 0.0 });
            }
            if let Some(hit) = report.result_cache_hit {
                j.num_field("result_cache_hit", if hit { 1.0 } else { 0.0 });
            }
            j.num_field("loads", engine.catalog().stats().loads as f64);
            j.num_field("elapsed_ms", report.elapsed_ms);
        }
    }
    Ok(())
}

/// Serves the JSONL loop over stdin/stdout until EOF or `shutdown`.
/// Inherently one connection; [`ServeOptions`] does not apply.
pub fn serve_stdio(engine: &Engine, policy: &ResourcePolicy) -> std::io::Result<ServeSummary> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    let metrics = ServeMetrics::new();
    serve_loop(engine, policy, stdin.lock(), &mut stdout, &metrics)
}

/// Removes the socket file when dropped — including drops caused by an
/// error return or a panic unwinding through [`serve_unix`], so a
/// crashed server never leaves a stale socket behind (the regression
/// test for the error path exercises exactly this drop-on-unwind).
struct SocketGuard {
    path: PathBuf,
}

impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Serves the JSONL loop on a Unix socket with an accept thread and a
/// bounded worker pool (see the module docs for the concurrency model).
/// A connection that fails mid-session — abrupt disconnect, a client
/// that stops reading (EPIPE) — ends **that connection only**: the
/// error is absorbed and the server keeps accepting. Only bind/accept
/// failures take the server down. A stale socket file at `path` is
/// replaced; the socket file is removed when the server stops — on
/// clean shutdown *and* on error paths, via an RAII guard.
#[cfg(unix)]
pub fn serve_unix(
    engine: &Engine,
    policy: &ResourcePolicy,
    path: &Path,
    options: &ServeOptions,
) -> std::io::Result<ServeSummary> {
    use std::os::unix::net::UnixListener;

    if path.exists() {
        std::fs::remove_file(path)?;
    }
    // Bind to a temporary name and rename into place once listening:
    // `bind` creates the file before `listen` runs, so a client watching
    // for the socket file could otherwise connect in that window and be
    // refused. After the rename, the public path only ever names a
    // socket that is already accepting.
    let staging = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".bind");
        PathBuf::from(name)
    };
    let _ = std::fs::remove_file(&staging);
    let listener = UnixListener::bind(&staging)?;
    // From here on, every exit — clean shutdown, accept error, panic —
    // removes the socket file (staging name first, public name after
    // the rename).
    let mut guard = SocketGuard {
        path: staging.clone(),
    };
    std::fs::rename(&staging, path)?;
    guard.path = path.to_path_buf();
    let metrics = ServeMetrics::new();
    if options.shards > 1 {
        // Sharded mode: a front router owns the accept loop and all
        // connection I/O; `engine` serves only as the tuning template
        // for the per-shard engines (each of which opens its own
        // `shard-<i>` data subdirectory). The guard above still removes
        // the socket file on every exit path.
        return crate::shard::run_sharded_pool(engine, policy, &listener, options, &metrics);
    }
    if let Some(dir) = &options.data_dir {
        // Single-shard durability: the serving engine itself opens
        // `shard-0`, so a later `--shards n` restart finds shard 0's
        // graphs where shard 0 will look for them.
        if !engine.catalog().is_durable() {
            engine
                .catalog()
                .open_data_dir(
                    &dir.join("shard-0"),
                    options.fsync_every,
                    options.snapshot_every,
                )
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
    }
    run_pool(engine, policy, &listener, options, &metrics)?;
    let mut summary = metrics.summary();
    let inc = engine.incremental_stats();
    summary.incremental_hits = inc.hits;
    summary.incremental_fallbacks = inc.fallbacks;
    Ok(summary)
}

/// Write high-water mark per connection: once this many response bytes
/// are buffered unsent (the client has stopped reading), the server
/// stops reading and processing further requests from that connection
/// until the backlog drains below the mark. A slow reader throttles
/// itself, never the server — and never pins a graceful shutdown open.
#[cfg(unix)]
pub(crate) const WRITE_HWM: usize = 256 * 1024;

/// Read chunk size, and the consumed-prefix threshold above which the
/// reusable read/write buffers are compacted.
#[cfg(unix)]
pub(crate) const READ_CHUNK: usize = 64 * 1024;

/// Counts live connections across all workers and blocks the accept
/// thread at `max_connections` — the pool's backpressure.
#[cfg(unix)]
pub(crate) struct ConnGate {
    used: std::sync::Mutex<usize>,
    freed: std::sync::Condvar,
    cap: usize,
}

#[cfg(unix)]
impl ConnGate {
    pub(crate) fn new(cap: usize) -> Self {
        ConnGate {
            used: std::sync::Mutex::new(0),
            freed: std::sync::Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Claims a connection slot, parking while the server is at
    /// capacity. Returns `false` once shutdown latches instead.
    pub(crate) fn acquire(&self, metrics: &ServeMetrics) -> bool {
        let mut used = self.used.lock().expect("conn gate poisoned");
        while *used >= self.cap {
            if metrics.shutdown_requested() {
                return false;
            }
            used = self.freed.wait(used).expect("conn gate poisoned");
        }
        *used += 1;
        true
    }

    pub(crate) fn release(&self) {
        let mut used = self.used.lock().expect("conn gate poisoned");
        *used = used.saturating_sub(1);
        self.freed.notify_all();
    }

    /// Wakes every thread parked in [`ConnGate::acquire`] so it can
    /// observe the shutdown latch. Taking the mutex first makes the
    /// wake race-free against a concurrent check-then-wait.
    pub(crate) fn poke(&self) {
        let _used = self.used.lock().expect("conn gate poisoned");
        self.freed.notify_all();
    }
}

/// One worker's handoff mailbox: the accept thread pushes accepted
/// connections and rings the waker; the worker adopts them at its next
/// event-loop turn.
#[cfg(unix)]
struct WorkerSlot {
    intake: std::sync::Mutex<Vec<std::os::unix::net::UnixStream>>,
    waker: crate::readiness::Waker,
}

/// Everything the accept thread and the workers share besides the
/// engine and metrics.
#[cfg(unix)]
struct PoolShared {
    slots: Vec<WorkerSlot>,
    accept_waker: crate::readiness::Waker,
    gate: ConnGate,
}

#[cfg(unix)]
impl PoolShared {
    /// Wakes every event loop (workers and accept thread) plus the
    /// gate; called once shutdown latches so nobody stays parked.
    fn wake_all(&self) {
        for slot in &self.slots {
            slot.waker.wake();
        }
        self.accept_waker.wake();
        self.gate.poke();
    }
}

/// The accept thread + per-worker event loops around a bound listener.
#[cfg(unix)]
fn run_pool(
    engine: &Engine,
    policy: &ResourcePolicy,
    listener: &std::os::unix::net::UnixListener,
    options: &ServeOptions,
    metrics: &ServeMetrics,
) -> std::io::Result<()> {
    use crate::readiness::wake_pair;

    let workers = options.workers.max(1);
    listener.set_nonblocking(true)?;
    let (accept_waker, accept_rx) = wake_pair()?;
    let mut slots = Vec::with_capacity(workers);
    let mut receivers = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (waker, rx) = wake_pair()?;
        slots.push(WorkerSlot {
            intake: std::sync::Mutex::new(Vec::new()),
            waker,
        });
        receivers.push(rx);
    }
    let shared = PoolShared {
        slots,
        accept_waker,
        gate: ConnGate::new(options.max_connections),
    };
    std::thread::scope(|s| {
        for (index, rx) in receivers.into_iter().enumerate() {
            let shared = &shared;
            s.spawn(move || worker_event_loop(engine, policy, metrics, shared, index, rx));
        }
        let mut next_worker = 0usize;
        let accept_result = loop {
            // Backpressure: at `max_connections` live connections this
            // parks until one closes (or shutdown latches).
            if !shared.gate.acquire(metrics) {
                break Ok(());
            }
            match accept_next(listener, &accept_rx, metrics) {
                Ok(Some(conn)) => {
                    let slot = &shared.slots[next_worker % shared.slots.len()];
                    next_worker = next_worker.wrapping_add(1);
                    slot.intake.lock().expect("intake poisoned").push(conn);
                    slot.waker.wake();
                }
                Ok(None) => {
                    shared.gate.release();
                    break Ok(());
                }
                Err(e) => {
                    shared.gate.release();
                    break Err(e);
                }
            }
        };
        // Stop the workers: latch shutdown and wake every event loop.
        // In-flight requests still finish and their responses are
        // flushed best-effort; the scope join below is the drain.
        metrics.request_shutdown();
        shared.wake_all();
        accept_result
    })
}

/// Blocks in `poll(2)` until a connection arrives; `Ok(None)` means the
/// shutdown latch fired instead.
#[cfg(unix)]
pub(crate) fn accept_next(
    listener: &std::os::unix::net::UnixListener,
    wake_rx: &crate::readiness::WakeReceiver,
    metrics: &ServeMetrics,
) -> std::io::Result<Option<std::os::unix::net::UnixStream>> {
    use crate::readiness::{poll_fds, PollFd, POLLIN};
    use std::os::fd::AsRawFd;

    loop {
        if metrics.shutdown_requested() {
            return Ok(None);
        }
        match listener.accept() {
            Ok((conn, _)) => return Ok(Some(conn)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                let mut fds = [
                    PollFd::new(listener.as_raw_fd(), POLLIN),
                    PollFd::new(wake_rx.fd(), POLLIN),
                ];
                poll_fds(&mut fds, -1)?;
                if fds[1].ready(POLLIN) {
                    wake_rx.drain();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// One worker's event loop: adopt handed-over connections, park in
/// `poll(2)` over the whole set (infinite timeout — an idle worker
/// costs zero wakeups), service whatever turned ready, prune the dead.
#[cfg(unix)]
fn worker_event_loop(
    engine: &Engine,
    policy: &ResourcePolicy,
    metrics: &ServeMetrics,
    shared: &PoolShared,
    index: usize,
    wake_rx: crate::readiness::WakeReceiver,
) {
    use crate::readiness::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};
    use std::os::fd::AsRawFd;

    let mut conns: Vec<Connection> = Vec::new();
    let mut scratch = minijson::FieldScratch::new();
    let mut fds: Vec<PollFd> = Vec::new();
    loop {
        if metrics.shutdown_requested() {
            break;
        }
        // Adopt newly assigned connections.
        let adopted: Vec<_> = {
            let mut intake = shared.slots[index].intake.lock().expect("intake poisoned");
            intake.drain(..).collect()
        };
        for stream in adopted {
            match stream.set_nonblocking(true) {
                Ok(()) => {
                    metrics.connection_opened();
                    conns.push(Connection::new(stream));
                }
                Err(_) => shared.gate.release(),
            }
        }
        fds.clear();
        fds.push(PollFd::new(wake_rx.fd(), POLLIN));
        for conn in &conns {
            let mut events = 0i16;
            if conn.wants_read() {
                events |= POLLIN;
            }
            if conn.wants_write() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
        }
        if poll_fds(&mut fds, -1).is_err() {
            // A poll failure is unrecoverable for this loop; take the
            // whole server down gracefully rather than spinning.
            metrics.request_shutdown();
            shared.wake_all();
            break;
        }
        if fds[0].ready(POLLIN) {
            wake_rx.drain();
        }
        let mut saw_shutdown = false;
        for (conn, pfd) in conns.iter_mut().zip(&fds[1..]) {
            if pfd.ready(POLLIN | POLLOUT | POLLERR | POLLHUP) {
                conn.service(
                    pfd.ready(POLLIN | POLLERR | POLLHUP),
                    engine,
                    policy,
                    metrics,
                    &mut scratch,
                    &mut saw_shutdown,
                );
            }
            if saw_shutdown {
                break;
            }
        }
        conns.retain(|conn| {
            if conn.dead {
                metrics.connection_closed();
                shared.gate.release();
            }
            !conn.dead
        });
        if saw_shutdown {
            // handle_fields already latched the flag; wake everyone so
            // the other event loops (and the accept thread) observe it
            // now instead of at their next natural wakeup.
            shared.wake_all();
            break;
        }
    }
    // Shutdown drain: one best-effort nonblocking flush per connection
    // (responses already buffered go out if the client is reading; a
    // client that stopped reading is abandoned immediately — shutdown
    // never blocks on it), then close everything.
    for conn in &mut conns {
        if !conn.dead {
            conn.flush();
        }
        metrics.connection_closed();
        shared.gate.release();
    }
}

/// Which wire format a connection's first byte selected.
#[cfg(unix)]
pub(crate) enum WireMode {
    /// Nothing received yet.
    Undetected,
    /// Line-delimited JSON (first byte was not the frame magic).
    Jsonl,
    /// Length-prefixed binary frames (first byte was the magic).
    Binary,
}

/// One multiplexed connection: its stream, detected wire mode, and the
/// reusable read/write buffers (the scratch-buffer reuse layer — both
/// buffers and the shared parse arena persist across requests, so
/// steady-state decoding allocates nothing).
#[cfg(unix)]
pub(crate) struct Connection {
    pub(crate) stream: std::os::unix::net::UnixStream,
    pub(crate) mode: WireMode,
    /// Bytes read but not yet consumed; `rpos` is the consumed prefix.
    pub(crate) rbuf: Vec<u8>,
    pub(crate) rpos: usize,
    /// Bytes to write; `wpos` is the already-written prefix.
    pub(crate) wbuf: Vec<u8>,
    pub(crate) wpos: usize,
    /// Peer half-closed (or the connection was poisoned): read no more,
    /// close once the write backlog drains.
    pub(crate) eof: bool,
    /// Remove from the set at the next prune.
    pub(crate) dead: bool,
}

#[cfg(unix)]
impl Connection {
    pub(crate) fn new(stream: std::os::unix::net::UnixStream) -> Self {
        Connection {
            stream,
            mode: WireMode::Undetected,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            eof: false,
            dead: false,
        }
    }

    pub(crate) fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    pub(crate) fn backlogged(&self) -> bool {
        self.pending_write() >= WRITE_HWM
    }

    fn wants_read(&self) -> bool {
        !self.dead && !self.eof && !self.backlogged()
    }

    pub(crate) fn wants_write(&self) -> bool {
        !self.dead && self.pending_write() > 0
    }

    /// One service turn: pull readable bytes, answer every complete
    /// request (stopping at the write high-water mark), flush. Called
    /// only when `poll` reported the connection ready.
    fn service(
        &mut self,
        readable: bool,
        engine: &Engine,
        policy: &ResourcePolicy,
        metrics: &ServeMetrics,
        scratch: &mut minijson::FieldScratch,
        saw_shutdown: &mut bool,
    ) {
        if readable && self.wants_read() {
            self.fill_rbuf();
        }
        loop {
            let was_backlogged = self.backlogged();
            let mut progressed = false;
            while !self.dead
                && !*saw_shutdown
                && !self.backlogged()
                && self.process_one(engine, policy, metrics, scratch, saw_shutdown)
            {
                progressed = true;
            }
            if self.wants_write() {
                self.flush();
            }
            if self.dead || *saw_shutdown || self.backlogged() {
                break;
            }
            if was_backlogged {
                // Entered this turn over the high-water mark (a POLLOUT
                // wake), so the process loop above was skipped — but the
                // flush just cleared the backlog. Complete requests may
                // still sit in `rbuf`, and a pipelining client that has
                // sent everything will never trigger another POLLIN;
                // retry processing now rather than stranding them.
                continue;
            }
            if !progressed {
                break;
            }
        }
        if !self.dead && self.eof && self.pending_write() == 0 {
            // Peer half-closed, every buffered response is out, and no
            // complete request remains (a trailing partial line/frame at
            // EOF is dropped, as the line reader always did).
            self.dead = true;
        }
    }

    /// Reads until `WouldBlock`/EOF, appending to the reusable buffer.
    pub(crate) fn fill_rbuf(&mut self) {
        use std::io::Read;

        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }

    /// Consumes and answers one complete request from the read buffer.
    /// Returns `false` when no complete request is buffered.
    fn process_one(
        &mut self,
        engine: &Engine,
        policy: &ResourcePolicy,
        metrics: &ServeMetrics,
        scratch: &mut minijson::FieldScratch,
        saw_shutdown: &mut bool,
    ) -> bool {
        if self.rpos >= self.rbuf.len() {
            if self.rpos > 0 {
                self.rbuf.clear();
                self.rpos = 0;
            }
            return false;
        }
        if matches!(self.mode, WireMode::Undetected) {
            // The negotiation: one byte settles the connection's wire
            // format for its whole lifetime.
            self.mode = if self.rbuf[self.rpos] == crate::frame::MAGIC {
                WireMode::Binary
            } else {
                WireMode::Jsonl
            };
        }
        // Mode is settled above; anything non-binary (including a
        // hypothetical undetected state) takes the JSONL path, whose
        // parser answers malformed input with an error reply instead of
        // panicking a worker.
        let handled = if matches!(self.mode, WireMode::Binary) {
            self.process_frame(engine, policy, metrics, scratch, saw_shutdown)
        } else {
            self.process_jsonl(engine, policy, metrics, scratch, saw_shutdown)
        };
        if handled && self.rpos >= READ_CHUNK {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        handled
    }

    /// Answers one JSONL line, if a complete one is buffered.
    fn process_jsonl(
        &mut self,
        engine: &Engine,
        policy: &ResourcePolicy,
        metrics: &ServeMetrics,
        scratch: &mut minijson::FieldScratch,
        saw_shutdown: &mut bool,
    ) -> bool {
        let Some(nl) = self.rbuf[self.rpos..].iter().position(|&b| b == b'\n') else {
            return false;
        };
        let start = self.rpos;
        self.rpos = start + nl + 1;
        let raw = &self.rbuf[start..start + nl];
        // Tolerate invalid UTF-8 the same way the old byte-level reader
        // did: lossy-decode and let the JSON parser emit the typed
        // error. The valid-UTF-8 hot path parses straight from the read
        // buffer, no copy.
        let lossy;
        let text = match std::str::from_utf8(raw) {
            Ok(text) => text,
            Err(_) => {
                lossy = String::from_utf8_lossy(raw).into_owned();
                &lossy
            }
        };
        if text.trim().is_empty() {
            return true;
        }
        let (response, outcome) = match minijson::parse_object_into(text, scratch) {
            Ok(()) => handle_fields(engine, policy, metrics, scratch.fields(), None),
            Err(e) => {
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                (error_response("null", &e.to_string()), LineOutcome::Error)
            }
        };
        self.wbuf.extend_from_slice(response.as_bytes());
        self.wbuf.push(b'\n');
        if matches!(outcome, LineOutcome::Shutdown) {
            *saw_shutdown = true;
        }
        true
    }

    /// Answers one binary frame, if a complete one is buffered.
    fn process_frame(
        &mut self,
        engine: &Engine,
        policy: &ResourcePolicy,
        metrics: &ServeMetrics,
        scratch: &mut minijson::FieldScratch,
        saw_shutdown: &mut bool,
    ) -> bool {
        let outcome = match crate::frame::decode_frame(
            &self.rbuf[self.rpos..],
            crate::frame::DEFAULT_MAX_FRAME,
        ) {
            Ok(None) => return false,
            Ok(Some((opcode, payload, consumed))) => handle_frame(
                opcode,
                payload,
                engine,
                policy,
                metrics,
                scratch,
                &mut self.wbuf,
                saw_shutdown,
            )
            .map(|()| consumed),
            Err(e) => Err(e),
        };
        match outcome {
            Ok(consumed) => self.rpos += consumed,
            Err(e) => {
                // Framing damage cannot be re-synchronized: answer with
                // one typed error reply, discard the remaining input,
                // and close once the reply drains.
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                crate::frame::encode_reply(&error_response("null", &e.to_string()), &mut self.wbuf);
                self.rpos = self.rbuf.len();
                self.eof = true;
            }
        }
        true
    }

    /// Writes as much of the backlog as the socket accepts right now.
    pub(crate) fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.wpos >= self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos >= READ_CHUNK {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
    }
}

/// Dispatches one decoded frame: a plain request is answered with one
/// reply frame; a batch frame is answered with one reply frame **per
/// item, in order** — that is the pipelining contract. `Err` means the
/// frame (or a batch item) was malformed at the framing layer and the
/// connection must be poisoned.
#[cfg(unix)]
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    opcode: crate::frame::Opcode,
    payload: &[u8],
    engine: &Engine,
    policy: &ResourcePolicy,
    metrics: &ServeMetrics,
    scratch: &mut minijson::FieldScratch,
    wbuf: &mut Vec<u8>,
    saw_shutdown: &mut bool,
) -> Result<(), crate::frame::FrameError> {
    use crate::frame::{FrameError, Opcode};

    match opcode {
        Opcode::Reply => Err(FrameError::Misplaced("a client must not send reply frames")),
        Opcode::Batch => {
            for item in crate::frame::batch_items(payload) {
                let (op, body) = item?;
                handle_request_frame(
                    op,
                    body,
                    engine,
                    policy,
                    metrics,
                    scratch,
                    wbuf,
                    saw_shutdown,
                );
                if *saw_shutdown {
                    // Requests after a shutdown go unanswered, exactly
                    // like JSONL lines after a shutdown go unread.
                    break;
                }
            }
            Ok(())
        }
        op => {
            handle_request_frame(
                op,
                payload,
                engine,
                policy,
                metrics,
                scratch,
                wbuf,
                saw_shutdown,
            );
            Ok(())
        }
    }
}

/// Decodes and answers one binary request, appending its reply frame.
/// A bad payload is a per-request typed error (the frame boundary is
/// intact, so the stream stays synchronized), not a poisoned connection.
#[cfg(unix)]
#[allow(clippy::too_many_arguments)]
fn handle_request_frame(
    opcode: crate::frame::Opcode,
    payload: &[u8],
    engine: &Engine,
    policy: &ResourcePolicy,
    metrics: &ServeMetrics,
    scratch: &mut minijson::FieldScratch,
    wbuf: &mut Vec<u8>,
    saw_shutdown: &mut bool,
) {
    let (response, outcome) = match crate::frame::decode_request_payload(payload, scratch) {
        Ok(()) => handle_fields(
            engine,
            policy,
            metrics,
            scratch.fields(),
            Some(opcode.op_name()),
        ),
        Err(e) => {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
            (error_response("null", &e.to_string()), LineOutcome::Error)
        }
    };
    crate::frame::encode_reply(&response, wbuf);
    if matches!(outcome, LineOutcome::Shutdown) {
        *saw_shutdown = true;
    }
}

/// The matching client: forwards each line of `requests` to the server
/// at `path` and writes each response line to `responses`. Returns the
/// number of exchanges. Used by `densest client` and the CI smoke test.
#[cfg(unix)]
pub fn client_unix<R: BufRead, W: Write>(
    path: &Path,
    requests: R,
    responses: &mut W,
) -> std::io::Result<u64> {
    use std::os::unix::net::UnixStream;

    let stream = UnixStream::connect(path)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut exchanges = 0u64;
    for line in requests.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-exchange",
            ));
        }
        responses.write_all(response.as_bytes())?;
        exchanges += 1;
    }
    Ok(exchanges)
}

/// Transport selection and pipelining depth for [`client_unix_opts`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientOptions {
    /// Speak the binary frame protocol instead of JSONL.
    pub binary: bool,
    /// Requests kept in flight: windows of up to this many requests go
    /// out before their responses are read (1 = lockstep). Binary mode
    /// packs each window into one batch frame.
    pub pipeline: usize,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            binary: false,
            pipeline: 1,
        }
    }
}

/// Per-connection accounting from one [`client_unix_opts`] run.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Request/response exchanges completed.
    pub exchanges: u64,
    /// Per-request latency samples in milliseconds, completion order:
    /// from handing the request's window to the OS to receiving that
    /// request's response. Under pipelining this includes queueing
    /// behind the window's earlier responses — exactly the latency a
    /// caller of the pipelined connection experiences.
    pub latencies_ms: Vec<f64>,
}

impl ClientStats {
    /// The p-th percentile (nearest-rank) of the latency samples.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        percentile(&self.latencies_ms, p)
    }
}

/// Nearest-rank percentile of unsorted samples (0 when empty).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The full-featured client: JSONL or binary frames, lockstep or
/// pipelined, with per-request latency accounting. Response lines
/// written to `responses` are byte-identical across transports (a
/// binary reply frame carries the same JSON text a JSONL response line
/// would), so callers can switch transports without re-parsing.
///
/// Unlike [`client_unix`] (which streams requests one at a time and so
/// supports interactive use), this reads **all** requests up front to
/// form pipeline windows. Binary mode parses each request line locally
/// to encode it; a line that is not valid flat JSON is an
/// `InvalidInput` error before anything is sent.
#[cfg(unix)]
pub fn client_unix_opts<R: BufRead, W: Write>(
    path: &Path,
    requests: R,
    responses: &mut W,
    options: &ClientOptions,
) -> std::io::Result<ClientStats> {
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    let lines: Vec<String> = requests
        .lines()
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .filter(|l| !l.trim().is_empty())
        .collect();
    let window = options.pipeline.max(1);
    // Binary mode parses and encodes every request line exactly once up
    // front; the send loop below only assembles window frames from the
    // pre-encoded payloads, so a repeated request set costs no
    // re-parsing or re-encoding per round.
    let encoded: Vec<(crate::frame::Opcode, Vec<u8>)> = if options.binary {
        lines
            .iter()
            .map(|line| {
                let (op, fields) = parse_request_line(line)?;
                let opcode = crate::frame::Opcode::from_op_name(&op)
                    .ok_or_else(|| frame_to_io(crate::frame::FrameError::UnknownOp(op.clone())))?;
                let mut payload = Vec::new();
                crate::frame::encode_request_payload(&fields, &mut payload).map_err(frame_to_io)?;
                Ok((opcode, payload))
            })
            .collect::<std::io::Result<_>>()?
    } else {
        Vec::new()
    };
    let stream = UnixStream::connect(path)?;
    let mut reader = BufReader::with_capacity(1 << 16, stream.try_clone()?);
    let mut writer = stream;
    let mut stats = ClientStats::default();
    let mut frame_buf: Vec<u8> = Vec::new();
    let mut reply_buf: Vec<u8> = Vec::new();
    if options.binary {
        // With `--pipeline N`, this is true pipelining, not batched
        // stop-and-wait: the *next* window goes on the wire before this
        // window's replies are drained, so the server never idles
        // between windows waiting a round trip for the client to read.
        // The send-ahead is capped to one window of bounded wire size so
        // the kernel socket buffer always absorbs the write even while
        // the server back-pressures — the client never blocks on a send
        // while it owes reads. A window of one (`pipeline == 1`) stays
        // strict lockstep so the plain binary transport measures framing
        // alone, not hidden pipelining.
        let windows: Vec<&[(crate::frame::Opcode, Vec<u8>)]> = encoded.chunks(window).collect();
        let mut sent_at: Vec<Instant> = Vec::with_capacity(windows.len());
        let mut next_to_send = 0usize;
        for (wi, items) in windows.iter().enumerate() {
            // This window must be on the wire before its replies can
            // exist (first iteration, or the send-ahead was skipped).
            while next_to_send <= wi {
                write_binary_window(&mut writer, windows[next_to_send], &mut frame_buf)?;
                sent_at.push(Instant::now());
                next_to_send += 1;
            }
            if window > 1
                && next_to_send == wi + 1
                && next_to_send < windows.len()
                && window_wire_len(windows[next_to_send]) <= SEND_AHEAD_MAX_BYTES
            {
                write_binary_window(&mut writer, windows[next_to_send], &mut frame_buf)?;
                sent_at.push(Instant::now());
                next_to_send += 1;
            }
            for _ in items.iter() {
                read_reply_frame(&mut reader, &mut reply_buf)?;
                stats
                    .latencies_ms
                    .push(sent_at[wi].elapsed().as_secs_f64() * 1e3);
                reply_buf.push(b'\n');
                responses.write_all(&reply_buf)?;
                stats.exchanges += 1;
            }
        }
    } else {
        // The JSONL window is bounded by wire bytes exactly like the
        // binary send-ahead: an unbounded `--pipeline` burst whose
        // requests outrun the server's write high-water mark plus the
        // kernel socket buffers would leave the server parked (not
        // reading) while the client is still blocked in `write_all` and
        // not yet reading replies — a mutual deadlock. Splitting the
        // window so at most SEND_AHEAD_MAX_BYTES is unacknowledged
        // keeps every burst inside the kernel buffer. A single line
        // over the cap still goes alone.
        let mut start = 0usize;
        while start < lines.len() {
            let mut end = start;
            let mut burst = 0usize;
            while end < lines.len() && end - start < window {
                let line_bytes = lines[end].len() + 1;
                if end > start && burst + line_bytes > SEND_AHEAD_MAX_BYTES {
                    break;
                }
                burst += line_bytes;
                end += 1;
            }
            let chunk = &lines[start..end];
            start = end;
            let sent_at = Instant::now();
            for line in chunk {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            writer.flush()?;
            let mut response = String::new();
            for _ in chunk {
                response.clear();
                if reader.read_line(&mut response)? == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-exchange",
                    ));
                }
                stats
                    .latencies_ms
                    .push(sent_at.elapsed().as_secs_f64() * 1e3);
                responses.write_all(response.as_bytes())?;
                stats.exchanges += 1;
            }
        }
    }
    Ok(stats)
}

/// A pipelined window is sent ahead (before the previous window's
/// replies are drained) only when its wire size stays under this bound,
/// so the send always fits the kernel socket buffer even if the server
/// has stopped reading under write backpressure.
#[cfg(unix)]
const SEND_AHEAD_MAX_BYTES: usize = 64 * 1024;

/// Wire bytes of one window: a single request frame, or one batch frame
/// with a `[opcode][u32 len]` header per item.
#[cfg(unix)]
fn window_wire_len(items: &[(crate::frame::Opcode, Vec<u8>)]) -> usize {
    match items {
        [(_, payload)] => crate::frame::HEADER_LEN + payload.len(),
        _ => crate::frame::HEADER_LEN + items.iter().map(|(_, p)| 5 + p.len()).sum::<usize>(),
    }
}

/// Assembles one window of pre-encoded requests into `frame_buf` (a
/// plain request frame for a window of one, a batch frame otherwise)
/// and writes it out.
#[cfg(unix)]
fn write_binary_window<W: Write>(
    writer: &mut W,
    items: &[(crate::frame::Opcode, Vec<u8>)],
    frame_buf: &mut Vec<u8>,
) -> std::io::Result<()> {
    frame_buf.clear();
    if let [(opcode, payload)] = items {
        crate::frame::encode_request_from_payload(*opcode, payload, frame_buf);
    } else {
        let len_at = crate::frame::begin_frame(crate::frame::Opcode::Batch, frame_buf);
        for (opcode, payload) in items {
            crate::frame::encode_batch_item_from_payload(*opcode, payload, frame_buf);
        }
        crate::frame::end_frame(frame_buf, len_at);
    }
    writer.write_all(frame_buf)?;
    writer.flush()
}

#[cfg(unix)]
fn parse_request_line(line: &str) -> std::io::Result<(String, Vec<(String, Value)>)> {
    let fields = minijson::parse_object(line).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("cannot encode request as a frame: {e}"),
        )
    })?;
    let op = minijson::get(&fields, "op")
        .and_then(Value::as_str)
        .unwrap_or("query")
        .to_string();
    Ok((op, fields))
}

#[cfg(unix)]
fn frame_to_io(e: crate::frame::FrameError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
}

/// Reads one reply frame into `buf` (header stripped, payload = the
/// response JSON bytes).
#[cfg(unix)]
fn read_reply_frame<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> std::io::Result<()> {
    let mut header = [0u8; crate::frame::HEADER_LEN];
    reader.read_exact(&mut header)?;
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    if header[0] != crate::frame::MAGIC {
        return Err(bad(format!("bad reply magic 0x{:02x}", header[0])));
    }
    if header[1] != crate::frame::VERSION {
        return Err(bad(format!("bad reply version {}", header[1])));
    }
    if crate::frame::Opcode::from_byte(header[2]) != Some(crate::frame::Opcode::Reply) {
        return Err(bad(format!(
            "expected a reply frame, got 0x{:02x}",
            header[2]
        )));
    }
    if header[3] != 0 {
        // Mirror the server-side decode_frame: the reserved byte must be
        // zero until a protocol revision assigns it meaning.
        return Err(bad(format!("nonzero reserved byte 0x{:02x}", header[3])));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > crate::frame::DEFAULT_MAX_FRAME {
        return Err(bad(format!("reply frame length {len} exceeds the cap")));
    }
    buf.resize(len, 0);
    reader.read_exact(buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn fixture(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dsg_engine_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    /// Writes a K5 fixture under a per-test file name: parallel test
    /// threads must never rewrite each other's fixture, or the mtime
    /// change would invalidate the catalog's revalidation stamp
    /// mid-test.
    fn k5_path(name: &str) -> PathBuf {
        let mut s = String::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                s.push_str(&format!("{u} {v}\n"));
            }
        }
        fixture(name, &s)
    }

    fn field<'a>(line: &'a str, key: &str) -> &'a str {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap();
        &rest[..end]
    }

    fn run_lines(engine: &Engine, requests: &str) -> (ServeSummary, String) {
        let mut out = Vec::new();
        let summary = serve_loop(
            engine,
            &ResourcePolicy::default(),
            Cursor::new(requests.to_string()),
            &mut out,
            &ServeMetrics::new(),
        )
        .unwrap();
        (summary, String::from_utf8(out).unwrap())
    }

    #[test]
    fn repeated_queries_load_once_and_are_byte_stable() {
        let path = k5_path("k5_byte_stable.txt");
        let p = path.display();
        let requests = format!(
            "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}\n\
             {{\"id\":2,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}\n\
             {{\"id\":3,\"algorithm\":\"charikar\",\"file\":\"{p}\"}}\n\
             {{\"id\":4,\"op\":\"stats\"}}\n"
        );
        let engine = Engine::new();
        let (summary, out) = run_lines(&engine, &requests);
        assert_eq!(summary.queries, 3, "the stats op is not a query");
        assert_eq!(summary.errors, 0);
        assert!(!summary.shutdown, "EOF, not shutdown");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        // One load serves all three queries.
        assert_eq!(field(lines[0], "cache_hit"), "0");
        assert_eq!(field(lines[1], "cache_hit"), "1");
        assert_eq!(field(lines[2], "cache_hit"), "1");
        for l in &lines[..3] {
            assert_eq!(field(l, "loads"), "1", "{l}");
        }
        // The repeated identical query replays from the result cache.
        assert_eq!(field(lines[0], "result_cache_hit"), "0");
        assert_eq!(field(lines[1], "result_cache_hit"), "1");
        assert_eq!(field(lines[2], "result_cache_hit"), "0");
        assert_eq!(field(lines[3], "loads"), "1");
        assert_eq!(field(lines[3], "hits"), "2");
        assert_eq!(field(lines[3], "graphs"), "1");
        assert_eq!(field(lines[3], "result_hits"), "1");
        assert_eq!(field(lines[3], "result_misses"), "2");
        assert_eq!(field(lines[3], "result_entries"), "2");
        // Identical queries produce byte-identical nested results.
        let result_of = |l: &str| l.split("\"result\":").nth(1).unwrap().to_string();
        let r1 = result_of(lines[0]);
        let r2 = result_of(lines[1]);
        assert_eq!(
            r1.split(",\"cache_hit\"").next(),
            r2.split(",\"cache_hit\"").next()
        );
        assert_eq!(field(lines[0], "density"), "2");
    }

    #[test]
    fn shutdown_op_ends_the_loop_and_later_lines_are_unread() {
        let path = k5_path("k5_shutdown_op.txt");
        let requests = format!(
            "{{\"op\":\"shutdown\",\"id\":\"bye\"}}\n\
             {{\"id\":9,\"algorithm\":\"approx\",\"file\":\"{}\"}}\n",
            path.display()
        );
        let engine = Engine::new();
        let (summary, out) = run_lines(&engine, &requests);
        assert!(summary.shutdown);
        assert_eq!(out.lines().count(), 1, "{out}");
        assert!(out.contains("\"id\":\"bye\""), "{out}");
        assert_eq!(engine.catalog().stats().loads, 0);
    }

    #[test]
    fn errors_keep_the_loop_alive() {
        let path = k5_path("k5_errors.txt");
        let requests = format!(
            "not json\n\
             {{\"id\":1,\"algorithm\":\"nope\",\"file\":\"x\"}}\n\
             {{\"id\":2,\"algorithm\":\"approx\"}}\n\
             {{\"id\":3,\"file\":\"/definitely/not/here.txt\"}}\n\
             {{\"id\":4,\"algorithm\":\"atleast-k\",\"file\":\"{p}\",\"k\":1000}}\n\
             {{\"id\":5,\"algorithm\":\"approx\",\"file\":\"{p}\"}}\n",
            p = path.display()
        );
        let engine = Engine::new();
        let (summary, out) = run_lines(&engine, &requests);
        assert_eq!(summary.errors, 5);
        assert_eq!(summary.queries, 1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 6);
        for l in &lines[..5] {
            assert_eq!(field(l, "ok"), "false", "{l}");
            assert!(l.contains("\"error\":"), "{l}");
        }
        assert!(lines[4].contains("exceeds the graph"), "{}", lines[4]);
        assert_eq!(field(lines[5], "ok"), "true");
    }

    #[test]
    fn mutable_session_transcript() {
        // The README's session, end to end: create → query → add_edges
        // → query (version bump, no stale replay) → remove → compact →
        // stats.
        let engine = Engine::new();
        let requests = "\
            {\"id\":1,\"op\":\"create_graph\",\"graph\":\"live\",\"edges\":\"0 1, 0 2, 1 2\"}\n\
            {\"id\":2,\"algorithm\":\"approx\",\"graph\":\"live\",\"epsilon\":0.5}\n\
            {\"id\":3,\"algorithm\":\"approx\",\"graph\":\"live\",\"epsilon\":0.5}\n\
            {\"id\":4,\"op\":\"add_edges\",\"graph\":\"live\",\"edges\":\"0 3, 1 3, 2 3\"}\n\
            {\"id\":5,\"algorithm\":\"approx\",\"graph\":\"live\",\"epsilon\":0.5}\n\
            {\"id\":6,\"op\":\"remove_edges\",\"graph\":\"live\",\"edges\":\"2 3\"}\n\
            {\"id\":7,\"op\":\"compact\",\"graph\":\"live\"}\n\
            {\"id\":8,\"op\":\"stats\"}\n";
        let (summary, out) = run_lines(&engine, requests);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 8, "{out}");
        for l in &lines {
            assert_eq!(field(l, "ok"), "true", "{l}");
        }
        assert_eq!(summary.queries, 3);
        assert_eq!(summary.mutations, 4);
        assert_eq!(summary.errors, 0);
        // create: version 1, triangle.
        assert_eq!(field(lines[0], "version"), "1");
        assert_eq!(field(lines[0], "nodes"), "3");
        assert_eq!(field(lines[0], "edges"), "3");
        // First query computes (miss), second replays (hit).
        assert_eq!(field(lines[1], "result_cache_hit"), "0");
        assert_eq!(field(lines[1], "density"), "1");
        assert_eq!(field(lines[2], "result_cache_hit"), "1");
        // add_edges bumps the version; the next query must recompute.
        assert_eq!(field(lines[3], "version"), "2");
        assert_eq!(field(lines[3], "applied"), "3");
        assert_eq!(field(lines[3], "edges"), "6");
        assert_eq!(field(lines[4], "result_cache_hit"), "0");
        assert_eq!(field(lines[4], "density"), "1.5", "K4 density");
        // remove bumps again; compact folds the logs.
        assert_eq!(field(lines[5], "version"), "3");
        assert_eq!(field(lines[5], "edges"), "5");
        let compact_version: u64 = field(lines[6], "version").parse().unwrap();
        assert!(compact_version >= 3, "{}", lines[6]);
        assert_eq!(field(lines[6], "delta_edges"), "0");
        // stats: session accounting + per-graph object.
        assert_eq!(field(lines[7], "graphs_named"), "1");
        let muts: u64 = field(lines[7], "mutations").parse().unwrap();
        assert!(muts >= 3, "{}", lines[7]);
        assert!(
            lines[7].contains("\"named\":[{\"name\":\"live\""),
            "{}",
            lines[7]
        );
        assert!(lines[7].contains("\"delta_edges\":0"), "{}", lines[7]);
        assert!(lines[7].contains("\"warm_hits\":"), "{}", lines[7]);
        assert!(lines[7].contains("\"incremental_hits\":"), "{}", lines[7]);
        assert!(
            lines[7].contains("\"incremental_fallbacks\":"),
            "{}",
            lines[7]
        );
    }

    #[test]
    fn incremental_counters_reach_the_serve_surface() {
        // A small-delta mutate/query loop must be answered by the
        // incremental tier, and both the `stats` op and the returned
        // summary must report it (globally and per graph).
        let engine = Engine::new();
        let mut requests =
            String::from("{\"id\":0,\"op\":\"create_graph\",\"graph\":\"live\",\"edges\":\"");
        // A denser seed graph than the transcript test, so single-edge
        // deltas stay well under the affected-set bound.
        let mut sep = "";
        for u in 0..12u32 {
            for v in (u + 1)..12u32 {
                if (u + v) % 3 != 0 {
                    requests.push_str(&format!("{sep}{u} {v}"));
                    sep = ", ";
                }
            }
        }
        requests.push_str(
            "\"}\n{\"id\":1,\"algorithm\":\"approx\",\"graph\":\"live\",\"epsilon\":0.5}\n",
        );
        for i in 0..4 {
            requests.push_str(&format!(
                "{{\"id\":{},\"op\":\"add_edges\",\"graph\":\"live\",\"edges\":\"{} {}\"}}\n",
                2 + 2 * i,
                3 * i,
                3 * i + 3,
            ));
            requests.push_str(&format!(
                "{{\"id\":{},\"algorithm\":\"approx\",\"graph\":\"live\",\"epsilon\":0.5}}\n",
                3 + 2 * i,
            ));
        }
        requests.push_str("{\"id\":99,\"op\":\"stats\"}\n");
        let (summary, out) = run_lines(&engine, &requests);
        assert_eq!(summary.errors, 0, "{out}");
        assert!(
            summary.incremental_hits >= 1,
            "incremental tier never fired: {summary:?}\n{out}"
        );
        let stats_line = out.lines().last().unwrap();
        let hits: u64 = field(stats_line, "incremental_hits").parse().unwrap();
        assert_eq!(hits, summary.incremental_hits, "{stats_line}");
        assert!(
            stats_line.contains("\"named\":[{\"name\":\"live\""),
            "{stats_line}"
        );
        // The per-graph object repeats the counters; with one graph they
        // match the global ones.
        let per_graph = stats_line.split("\"named\":").nth(1).unwrap();
        assert!(
            per_graph.contains(&format!("\"incremental_hits\":{hits}")),
            "{stats_line}"
        );
    }

    #[test]
    fn session_queries_are_byte_identical_to_memory_runs() {
        // A query on a named graph must nest the identical result object
        // as the same query over the materialized edge list (label
        // aside, which is part of the source identity).
        let engine = Engine::new();
        let requests = "\
            {\"id\":1,\"op\":\"create_graph\",\"graph\":\"g\",\"edges\":\"0 1, 0 2, 1 2, 2 3\"}\n\
            {\"id\":2,\"algorithm\":\"approx\",\"graph\":\"g\",\"epsilon\":0.1}\n\
            {\"id\":3,\"algorithm\":\"atleast-k\",\"graph\":\"g\",\"k\":2}\n";
        let (_, out) = run_lines(&engine, requests);
        let lines: Vec<&str> = out.lines().collect();
        let mut list = dsg_graph::EdgeList::new_undirected(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 3)] {
            list.push(u, v);
        }
        let reference = Engine::new();
        let policy = ResourcePolicy::default();
        for (line, algorithm) in [
            (
                lines[1],
                Algorithm::Approx {
                    epsilon: 0.1,
                    sketch: None,
                },
            ),
            (lines[2], Algorithm::AtLeastK { k: 2, epsilon: 0.5 }),
        ] {
            let report = reference
                .execute(
                    &Source::Memory {
                        list: list.clone(),
                        label: "g".into(),
                    },
                    &Query::new(algorithm),
                    &policy,
                )
                .unwrap();
            let served = line.split("\"result\":").nth(1).unwrap();
            let served = served.split(",\"result_cache_hit\"").next().unwrap();
            assert_eq!(served, report.json_object(false), "{line}");
        }
    }

    #[test]
    fn session_errors_are_typed_and_keep_the_loop_alive() {
        let engine = Engine::new();
        let requests = "\
            {\"id\":1,\"op\":\"add_edges\",\"graph\":\"nope\",\"edges\":\"0 1\"}\n\
            {\"id\":2,\"op\":\"create_graph\",\"graph\":\"g\"}\n\
            {\"id\":3,\"op\":\"create_graph\",\"graph\":\"g\"}\n\
            {\"id\":4,\"op\":\"add_edges\",\"graph\":\"g\",\"edges\":\"0 1 2\"}\n\
            {\"id\":5,\"op\":\"add_edges\",\"graph\":\"g\",\"edges\":\"0 x\"}\n\
            {\"id\":6,\"op\":\"add_edges\",\"graph\":\"g\"}\n\
            {\"id\":7,\"algorithm\":\"approx\",\"graph\":\"missing\"}\n\
            {\"id\":8,\"algorithm\":\"directed\",\"graph\":\"g\"}\n\
            {\"id\":9,\"algorithm\":\"approx\",\"graph\":\"g\",\"file\":\"x\"}\n\
            {\"id\":10,\"op\":\"add_edges\",\"graph\":\"g\",\"edges\":\"0 1\"}\n";
        let (summary, out) = run_lines(&engine, requests);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(summary.errors, 8, "{out}");
        assert_eq!(summary.mutations, 2);
        assert!(lines[0].contains("unknown graph 'nope'"), "{}", lines[0]);
        assert_eq!(field(lines[1], "ok"), "true");
        assert!(lines[2].contains("already exists"), "{}", lines[2]);
        assert!(lines[3].contains("even number"), "{}", lines[3]);
        assert!(lines[4].contains("bad node id 'x'"), "{}", lines[4]);
        assert!(lines[5].contains("missing 'edges'"), "{}", lines[5]);
        assert!(lines[6].contains("unknown graph 'missing'"), "{}", lines[6]);
        assert!(lines[7].contains("undirected"), "{}", lines[7]);
        assert!(
            lines[8].contains("either 'file' or 'graph'"),
            "{}",
            lines[8]
        );
        assert_eq!(field(lines[9], "ok"), "true", "loop still alive");
    }

    #[test]
    fn directed_sessions_serve_directed_queries() {
        let engine = Engine::new();
        let requests = "\
            {\"id\":1,\"op\":\"create_graph\",\"graph\":\"d\",\"directed\":true,\
\"edges\":\"0 1, 1 0, 0 2, 1 2\"}\n\
            {\"id\":2,\"algorithm\":\"directed\",\"graph\":\"d\",\"delta\":2}\n";
        let (summary, out) = run_lines(&engine, requests);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(summary.errors, 0, "{out}");
        assert_eq!(field(lines[0], "edges"), "4");
        assert_eq!(field(lines[1], "ok"), "true");
        assert!(lines[1].contains("\"s_nodes\":"), "{}", lines[1]);
    }

    #[cfg(unix)]
    fn wait_for_socket(sock: &Path) {
        for _ in 0..300 {
            if sock.exists() {
                return;
            }
            // Test-only: wait for the server thread to bind its socket.
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("server socket never appeared at {}", sock.display());
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_survives_client_disconnects() {
        use std::os::unix::net::UnixStream;

        let path = k5_path("k5_survive.txt");
        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/survive.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &ServeOptions::default(),
            )
            .unwrap()
        });
        wait_for_socket(&sock);
        // First client writes a query and vanishes without reading or
        // shutting down; the server must keep accepting.
        {
            let mut rude = UnixStream::connect(&sock).unwrap();
            writeln!(
                rude,
                "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{}\"}}",
                path.display()
            )
            .unwrap();
            let _ = rude.shutdown(std::net::Shutdown::Both);
        }
        // Second client gets full service.
        let requests = format!(
            "{{\"id\":2,\"algorithm\":\"approx\",\"file\":\"{}\"}}\n{{\"op\":\"shutdown\"}}\n",
            path.display()
        );
        let mut out = Vec::new();
        client_unix(&sock, Cursor::new(requests), &mut out).unwrap();
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        let out = String::from_utf8(out).unwrap();
        assert_eq!(field(out.lines().next().unwrap(), "ok"), "true", "{out}");
        assert_eq!(field(out.lines().next().unwrap(), "density"), "2", "{out}");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path = k5_path("k5_roundtrip.txt");
        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/roundtrip.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &ServeOptions::default(),
            )
            .unwrap()
        });
        wait_for_socket(&sock);
        let requests = format!(
            "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{p}\"}}\n\
             {{\"id\":2,\"algorithm\":\"exact\",\"file\":\"{p}\"}}\n\
             {{\"op\":\"shutdown\"}}\n",
            p = path.display()
        );
        let mut out = Vec::new();
        let n = client_unix(&sock, Cursor::new(requests), &mut out).unwrap();
        assert_eq!(n, 3);
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        assert_eq!(summary.queries, 2, "the shutdown op is not a query");
        assert!(!sock.exists(), "socket file removed on clean shutdown");
        let out = String::from_utf8(out).unwrap();
        assert_eq!(field(out.lines().nth(1).unwrap(), "density"), "2");
    }

    #[cfg(unix)]
    #[test]
    fn concurrent_clients_share_one_load_and_get_identical_results() {
        let path = k5_path("k5_concurrent.txt");
        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/concurrent.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &ServeOptions {
                    workers: 4,
                    max_connections: 16,
                    shards: 1,
                    ..ServeOptions::default()
                },
            )
            .unwrap()
        });
        wait_for_socket(&sock);

        // 4 clients, each issuing the same query 3 times concurrently.
        let clients = 4;
        let responses: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    let sock = sock.clone();
                    let path = path.clone();
                    s.spawn(move || {
                        let requests = (0..3)
                            .map(|r| {
                                format!(
                                    "{{\"id\":\"{i}-{r}\",\"algorithm\":\"approx\",\"file\":\"{}\",\"epsilon\":0.1}}\n",
                                    path.display()
                                )
                            })
                            .collect::<String>();
                        let mut out = Vec::new();
                        client_unix(&sock, Cursor::new(requests), &mut out).unwrap();
                        String::from_utf8(out).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Every response line carries the identical nested result.
        let mut results: Vec<String> = Vec::new();
        for client_out in &responses {
            for l in client_out.lines() {
                assert_eq!(field(l, "ok"), "true", "{l}");
                assert_eq!(field(l, "loads"), "1", "single-flight load: {l}");
                results.push(l.split("\"result\":").nth(1).unwrap().to_string());
            }
        }
        assert_eq!(results.len(), clients * 3);
        let reference = results[0]
            .split(",\"cache_hit\"")
            .next()
            .unwrap()
            .to_string();
        for r in &results {
            assert_eq!(r.split(",\"cache_hit\"").next().unwrap(), reference);
        }

        // Stats, then shutdown.
        let mut out = Vec::new();
        client_unix(
            &sock,
            Cursor::new("{\"op\":\"stats\",\"id\":\"s\"}\n{\"op\":\"shutdown\"}\n".to_string()),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let stats_line = out.lines().next().unwrap();
        assert_eq!(field(stats_line, "loads"), "1", "{stats_line}");
        // Each client's 2nd and 3rd queries run strictly after its own
        // 1st completed (and was inserted), so they are guaranteed hits;
        // the 4 first queries may race each other and all miss.
        let result_hits: u64 = field(stats_line, "result_hits").parse().unwrap();
        assert!(result_hits >= (clients * 2) as u64, "{stats_line}");
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        assert_eq!(summary.queries, clients as u64 * 3);
        assert!(summary.peak_connections >= 1);
        assert!(summary.connections >= clients as u64);
        assert!(!sock.exists(), "socket removed after shutdown");
    }

    #[cfg(unix)]
    #[test]
    fn shutdown_drains_even_with_an_idle_connection_open() {
        use std::os::unix::net::UnixStream;

        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/idle.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &ServeOptions {
                    workers: 2,
                    max_connections: 4,
                    shards: 1,
                    ..ServeOptions::default()
                },
            )
            .unwrap()
        });
        wait_for_socket(&sock);
        // An idle client that connects and sends nothing must not pin
        // the server open across a shutdown.
        let idle = UnixStream::connect(&sock).unwrap();
        let mut out = Vec::new();
        client_unix(
            &sock,
            Cursor::new("{\"op\":\"shutdown\"}\n".to_string()),
            &mut out,
        )
        .unwrap();
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        drop(idle);
        assert!(!sock.exists());
    }

    #[cfg(unix)]
    #[test]
    fn shutdown_drains_even_when_a_client_stops_reading() {
        use std::os::unix::net::UnixStream;

        let path = k5_path("k5_noread.txt");
        let sock = std::env::temp_dir().join("dsg_engine_serve_tests/noread.sock");
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &ServeOptions {
                    workers: 2,
                    max_connections: 4,
                    shards: 1,
                    ..ServeOptions::default()
                },
            )
            .unwrap()
        });
        wait_for_socket(&sock);
        // A client that pipelines thousands of requests but never reads
        // fills the socket's send buffer; the worker writing responses
        // must not block shutdown forever.
        let mut rude = UnixStream::connect(&sock).unwrap();
        // Bound the rude client's own sends too: once the server stops
        // reading (because its writes to us are blocked), our write
        // would otherwise hang this test thread as well.
        rude.set_write_timeout(Some(std::time::Duration::from_millis(200)))
            .unwrap();
        let request = format!(
            "{{\"id\":1,\"algorithm\":\"charikar\",\"file\":\"{}\"}}\n",
            path.display()
        );
        let burst = request.repeat(4000);
        let _ = rude.write_all(burst.as_bytes());
        // Keep the rude connection open (unread) across the shutdown.
        let mut out = Vec::new();
        client_unix(
            &sock,
            Cursor::new("{\"op\":\"shutdown\"}\n".to_string()),
            &mut out,
        )
        .unwrap();
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        drop(rude);
        assert!(!sock.exists());
    }

    /// Drops the nondeterministic trailing `elapsed_ms` field so
    /// responses from different runs can be compared byte-for-byte.
    fn strip_elapsed(line: &str) -> String {
        match line.find(",\"elapsed_ms\":") {
            Some(i) => format!("{}}}", &line[..i]),
            None => line.to_string(),
        }
    }

    /// Spawns a serve_unix server on a fresh socket; returns the socket
    /// path and the join handle.
    #[cfg(unix)]
    fn spawn_server(
        sock_name: &str,
        options: ServeOptions,
    ) -> (PathBuf, std::thread::JoinHandle<ServeSummary>) {
        let sock = std::env::temp_dir().join(format!("dsg_engine_serve_tests/{sock_name}"));
        let _ = std::fs::remove_file(&sock);
        let sock_for_server = sock.clone();
        let server = std::thread::spawn(move || {
            let engine = Engine::new();
            serve_unix(
                &engine,
                &ResourcePolicy::default(),
                &sock_for_server,
                &options,
            )
            .unwrap()
        });
        wait_for_socket(&sock);
        (sock, server)
    }

    /// The same request matrix (queries, mutations, stats, typed
    /// errors) answered over JSONL and over binary frames — against two
    /// servers with identical fresh state — must produce byte-identical
    /// response content (`elapsed_ms` aside).
    #[cfg(unix)]
    #[test]
    fn binary_replies_are_byte_identical_in_content_to_jsonl() {
        let path = k5_path("k5_parity.txt");
        let requests = format!(
            "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}\n\
             {{\"id\":2,\"algorithm\":\"approx\",\"file\":\"{p}\",\"epsilon\":0.1}}\n\
             {{\"id\":3,\"algorithm\":\"charikar\",\"file\":\"{p}\"}}\n\
             {{\"id\":4,\"op\":\"create_graph\",\"graph\":\"live\",\"edges\":\"0 1, 0 2, 1 2\"}}\n\
             {{\"id\":5,\"algorithm\":\"approx\",\"graph\":\"live\"}}\n\
             {{\"id\":6,\"op\":\"add_edges\",\"graph\":\"live\",\"edges\":\"0 3\"}}\n\
             {{\"id\":7,\"algorithm\":\"nope\",\"file\":\"{p}\"}}\n\
             {{\"id\":8,\"op\":\"stats\"}}\n\
             {{\"op\":\"shutdown\"}}\n",
            p = path.display()
        );
        let run = |sock_name: &str, options: &ClientOptions| -> (Vec<String>, ServeSummary) {
            let (sock, server) = spawn_server(sock_name, ServeOptions::default());
            let mut out = Vec::new();
            let stats =
                client_unix_opts(&sock, Cursor::new(requests.clone()), &mut out, options).unwrap();
            let summary = server.join().unwrap();
            assert_eq!(stats.exchanges, 9);
            assert_eq!(stats.latencies_ms.len(), 9);
            let lines = String::from_utf8(out)
                .unwrap()
                .lines()
                .map(strip_elapsed)
                .collect();
            (lines, summary)
        };
        let (jsonl, jsonl_summary) = run("parity_jsonl.sock", &ClientOptions::default());
        let (binary, binary_summary) = run(
            "parity_binary.sock",
            &ClientOptions {
                binary: true,
                pipeline: 1,
            },
        );
        let (pipelined, pipelined_summary) = run(
            "parity_pipelined.sock",
            &ClientOptions {
                binary: true,
                pipeline: 4,
            },
        );
        assert_eq!(jsonl, binary, "binary replies must match JSONL content");
        assert_eq!(jsonl, pipelined, "pipelining must not change content");
        for summary in [jsonl_summary, binary_summary, pipelined_summary] {
            assert_eq!(summary.queries, 4, "{summary:?}");
            assert_eq!(summary.mutations, 2, "{summary:?}");
            assert_eq!(summary.errors, 1, "{summary:?}");
            assert!(summary.shutdown);
        }
        // Sanity on the content itself, not just cross-transport equality.
        assert_eq!(field(&jsonl[0], "cache_hit"), "0");
        assert_eq!(field(&jsonl[1], "cache_hit"), "1");
        assert_eq!(field(&jsonl[1], "result_cache_hit"), "1");
        assert_eq!(field(&jsonl[0], "density"), "2");
        assert!(jsonl[6].contains("unknown algorithm"), "{}", jsonl[6]);
        assert_eq!(field(&jsonl[7], "loads"), "1");
    }

    /// JSONL and binary clients negotiated per connection share one
    /// server, one catalog, one result cache.
    #[cfg(unix)]
    #[test]
    fn mixed_transports_share_one_server() {
        let path = k5_path("k5_mixed.txt");
        let (sock, server) = spawn_server("mixed.sock", ServeOptions::default());
        let query = format!(
            "{{\"id\":1,\"algorithm\":\"approx\",\"file\":\"{}\",\"epsilon\":0.1}}\n",
            path.display()
        );
        let mut out = Vec::new();
        client_unix_opts(
            &sock,
            Cursor::new(query.clone()),
            &mut out,
            &ClientOptions {
                binary: true,
                pipeline: 1,
            },
        )
        .unwrap();
        let binary_line = String::from_utf8(out).unwrap();
        assert_eq!(field(&binary_line, "cache_hit"), "0");
        // The JSONL client that follows hits both caches the binary
        // client warmed.
        let mut out = Vec::new();
        client_unix(
            &sock,
            Cursor::new(format!("{query}{{\"op\":\"shutdown\"}}\n")),
            &mut out,
        )
        .unwrap();
        let jsonl_line = String::from_utf8(out)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        assert_eq!(field(&jsonl_line, "cache_hit"), "1");
        assert_eq!(field(&jsonl_line, "result_cache_hit"), "1");
        assert_eq!(field(&jsonl_line, "loads"), "1");
        assert_eq!(
            strip_elapsed(&jsonl_line).replace("\"cache_hit\":1,\"result_cache_hit\":1", ""),
            strip_elapsed(binary_line.trim()).replace("\"cache_hit\":0,\"result_cache_hit\":0", ""),
            "same result content across transports on one server"
        );
        server.join().unwrap();
    }

    /// A batch frame is answered with one reply per item, in order,
    /// without the client reading in between — the pipelining contract.
    #[cfg(unix)]
    #[test]
    fn pipelined_batches_answer_in_order() {
        let path = k5_path("k5_pipeline.txt");
        let (sock, server) = spawn_server("pipeline.sock", ServeOptions::default());
        let n = 40;
        let requests: String = (0..n)
            .map(|i| {
                format!(
                    "{{\"id\":{i},\"algorithm\":\"approx\",\"file\":\"{}\",\"epsilon\":0.1}}\n",
                    path.display()
                )
            })
            .chain(std::iter::once(
                "{\"op\":\"shutdown\",\"id\":\"bye\"}\n".to_string(),
            ))
            .collect();
        let mut out = Vec::new();
        let stats = client_unix_opts(
            &sock,
            Cursor::new(requests),
            &mut out,
            &ClientOptions {
                binary: true,
                pipeline: 8,
            },
        )
        .unwrap();
        let summary = server.join().unwrap();
        assert_eq!(stats.exchanges as usize, n + 1);
        assert_eq!(summary.queries, n as u64);
        assert!(summary.shutdown);
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), n + 1);
        for (i, line) in lines[..n].iter().enumerate() {
            assert_eq!(field(line, "id"), i.to_string(), "in-order replies: {line}");
            assert_eq!(field(line, "ok"), "true", "{line}");
        }
        assert_eq!(field(lines[n], "id"), "\"bye\"");
        assert!(stats.percentile_ms(50.0) <= stats.percentile_ms(99.0));
    }

    /// Regression: a service turn entered already over the write
    /// high-water mark (a POLLOUT wake) used to skip the process loop,
    /// and when the flush then fully drained the backlog it broke with
    /// complete requests still buffered. A pipelining client that had
    /// sent its whole window and was waiting on replies never triggers
    /// another POLLIN, so those requests were stranded forever. The
    /// turn must retry processing once the flush clears the backlog.
    #[cfg(unix)]
    #[test]
    fn backlogged_turn_answers_buffered_requests_once_flush_drains() {
        use std::io::Read;
        use std::os::unix::net::UnixStream;

        let (server_side, client_side) = UnixStream::pair().unwrap();
        server_side.set_nonblocking(true).unwrap();
        // The peer actively reads everything — the condition under
        // which a flush can fully drain the backlog.
        let reader = std::thread::spawn(move || {
            let mut client_side = client_side;
            let mut all = Vec::new();
            let mut chunk = [0u8; 1 << 16];
            loop {
                match client_side.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => all.extend_from_slice(&chunk[..n]),
                    Err(_) => break,
                }
            }
            all
        });
        let mut conn = Connection::new(server_side);
        // A previous turn left the write buffer at the high-water mark:
        // this turn starts backlogged, exactly like a POLLOUT wake.
        conn.wbuf = vec![b'#'; WRITE_HWM];
        // Two complete requests already buffered; the client will never
        // send another byte.
        conn.rbuf = b"{\"op\":\"stats\",\"id\":1}\n{\"op\":\"stats\",\"id\":2}\n".to_vec();
        let engine = Engine::new();
        let mut scratch = minijson::FieldScratch::new();
        let mut saw_shutdown = false;
        conn.service(
            false,
            &engine,
            &ResourcePolicy::default(),
            &ServeMetrics::new(),
            &mut scratch,
            &mut saw_shutdown,
        );
        assert!(!conn.dead);
        assert!(!saw_shutdown);
        assert!(
            conn.rbuf.is_empty(),
            "buffered requests must be answered in the same turn, not stranded"
        );
        // Let the replies still in flight reach the peer, then close.
        while conn.pending_write() > 0 {
            conn.flush();
            assert!(!conn.dead);
            // Test-only: yield to the reader thread between flushes.
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        drop(conn);
        let received = reader.join().unwrap();
        let replies = String::from_utf8(received[WRITE_HWM..].to_vec()).unwrap();
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines.len(), 2, "{replies}");
        assert_eq!(field(lines[0], "id"), "1");
        assert_eq!(field(lines[1], "id"), "2");
    }

    /// Regression: an unbounded JSONL `--pipeline` burst whose bytes
    /// outrun the server's write high-water mark plus the kernel socket
    /// buffers deadlocked — the server parked at the HWM while the
    /// client was still blocked writing, not yet reading replies. The
    /// client now splits the window so at most SEND_AHEAD_MAX_BYTES is
    /// unacknowledged, like the binary path.
    #[cfg(unix)]
    #[test]
    fn huge_jsonl_pipeline_window_does_not_deadlock() {
        let (sock, server) = spawn_server("jsonl_huge_window.sock", ServeOptions::default());
        let n = 8000usize;
        let pad = "x".repeat(180);
        let requests: String = (0..n)
            .map(|i| format!("{{\"op\":\"stats\",\"id\":{i},\"pad\":\"{pad}\"}}\n"))
            .chain(std::iter::once(
                "{\"op\":\"shutdown\",\"id\":\"bye\"}\n".to_string(),
            ))
            .collect();
        let mut out = Vec::new();
        let stats = client_unix_opts(
            &sock,
            Cursor::new(requests),
            &mut out,
            &ClientOptions {
                binary: false,
                pipeline: n + 1,
            },
        )
        .unwrap();
        let summary = server.join().unwrap();
        assert_eq!(stats.exchanges as usize, n + 1);
        assert!(summary.shutdown);
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), n + 1);
        assert_eq!(field(lines[0], "id"), "0");
        assert_eq!(field(lines[n], "id"), "\"bye\"");
    }

    /// With many idle connections parked, a graceful shutdown must
    /// complete in well under one legacy 50 ms poll tick — idle
    /// connections are woken by the self-pipe, not by timeout ticks.
    #[cfg(unix)]
    #[test]
    fn shutdown_completes_under_one_tick_with_idle_connections() {
        use std::os::unix::net::UnixStream;
        use std::time::Instant;

        let (sock, server) = spawn_server(
            "fast_shutdown.sock",
            ServeOptions {
                workers: 2,
                max_connections: 32,
                shards: 1,
                ..ServeOptions::default()
            },
        );
        let idle: Vec<UnixStream> = (0..8)
            .map(|_| UnixStream::connect(&sock).unwrap())
            .collect();
        // Let the workers adopt the idle connections and park in poll.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(std::time::Duration::from_millis(30));
        let started = Instant::now();
        let mut out = Vec::new();
        client_unix(
            &sock,
            Cursor::new("{\"op\":\"shutdown\"}\n".to_string()),
            &mut out,
        )
        .unwrap();
        let summary = server.join().unwrap();
        let elapsed = started.elapsed();
        assert!(summary.shutdown);
        assert!(
            elapsed < std::time::Duration::from_millis(50),
            "shutdown with 8 idle connections took {elapsed:?}; must be under one 50ms tick"
        );
        drop(idle);
        assert!(!sock.exists());
    }

    /// Framing damage (bad version, oversized length) gets one typed
    /// error reply, then the connection closes; the server survives.
    #[cfg(unix)]
    #[test]
    fn hostile_frames_poison_only_their_connection() {
        use std::io::Read;
        use std::os::unix::net::UnixStream;

        let (sock, server) = spawn_server("hostile.sock", ServeOptions::default());
        // Bad version byte right after a valid magic.
        {
            let mut conn = UnixStream::connect(&sock).unwrap();
            conn.write_all(&[crate::frame::MAGIC, 99, 1, 0, 0, 0, 0, 0])
                .unwrap();
            conn.flush().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut reply = Vec::new();
            read_reply_frame(&mut reader, &mut reply).unwrap();
            let reply = String::from_utf8(reply).unwrap();
            assert_eq!(field(&reply, "ok"), "false");
            assert!(reply.contains("unsupported frame version"), "{reply}");
            // Then EOF: the poisoned connection is closed.
            let mut rest = Vec::new();
            assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0);
        }
        // An oversized length prefix is rejected before any allocation.
        {
            let mut conn = UnixStream::connect(&sock).unwrap();
            let mut hostile = vec![crate::frame::MAGIC, crate::frame::VERSION, 0x01, 0];
            hostile.extend_from_slice(&u32::MAX.to_le_bytes());
            conn.write_all(&hostile).unwrap();
            conn.flush().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut reply = Vec::new();
            read_reply_frame(&mut reader, &mut reply).unwrap();
            let reply = String::from_utf8(reply).unwrap();
            assert!(reply.contains("exceeds the"), "{reply}");
        }
        // The server still serves a well-behaved client afterwards.
        let mut out = Vec::new();
        client_unix(
            &sock,
            Cursor::new("{\"op\":\"stats\",\"id\":1}\n{\"op\":\"shutdown\"}\n".to_string()),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert_eq!(field(out.lines().next().unwrap(), "ok"), "true");
        let summary = server.join().unwrap();
        assert!(summary.shutdown);
        assert_eq!(summary.errors, 2, "one typed error per hostile frame");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 50.0), 50.0);
        assert_eq!(percentile(&samples, 99.0), 99.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0, "unsorted input");
    }

    #[cfg(unix)]
    #[test]
    fn socket_file_removed_when_serve_exits_via_error_path() {
        // Regression test for the RAII guard: the serve loop used to
        // remove the socket file only on the clean-exit line, so any
        // error return or unwind leaked a stale socket. The guard
        // removes it on *every* exit; unwinding is the harshest such
        // path, so that is what we simulate around the guard itself.
        let dir = std::env::temp_dir().join("dsg_engine_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("guarded.sock");
        std::fs::write(&path, b"stale").unwrap();
        let path_for_panic = path.clone();
        let result = std::panic::catch_unwind(move || {
            let _guard = SocketGuard {
                path: path_for_panic,
            };
            panic!("serve loop died");
        });
        assert!(result.is_err());
        assert!(
            !path.exists(),
            "the guard must remove the socket on unwind/error exits"
        );
    }
}
