//! Readiness-based I/O for the socket serve path: a thin, std-only
//! wrapper over `poll(2)` plus a self-pipe waker.
//!
//! The PR-4 serve loop parked every idle connection on a 50 ms
//! read-timeout tick — idle connections cost a wakeup per tick per
//! worker, and graceful shutdown had to wait out up to a full tick per
//! parked connection. This module replaces that with real readiness:
//! workers sleep in `poll(2)` with an **infinite** timeout (idle
//! connections cost zero wakeups) and are woken either by socket
//! readiness or by a byte written to their [`Waker`] self-pipe (new
//! connection handed over, or shutdown latched).
//!
//! The only non-std surface is the `poll(2)` prototype itself, declared
//! directly against the libc that std already links — no external
//! crate, no new linkage. The self-pipe is a plain
//! [`UnixStream::pair`], so the wake channel needs no FFI at all.

#![cfg(unix)]

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

/// `POLLIN`: readable (or a peer hangup that reads as EOF).
pub const POLLIN: i16 = 0x001;
/// `POLLOUT`: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR`: error condition (output only; always polled).
pub const POLLERR: i16 = 0x008;
/// `POLLHUP`: peer hung up (output only; always polled).
pub const POLLHUP: i16 = 0x010;
/// `POLLNVAL`: invalid fd (output only; a bug if ever seen).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by [`poll_fds`].
    pub revents: i16,
}

impl PollFd {
    /// A descriptor watched for the given events.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported any of `mask` for this entry.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }
}

// `nfds_t` is `unsigned long` on Linux and `unsigned int` on the BSDs /
// macOS; pick the matching std type so the prototype is correct on both.
#[cfg(target_os = "linux")]
type Nfds = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type Nfds = std::os::raw::c_uint;

#[allow(unsafe_code)]
extern "C" {
    fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
}

/// Blocks until at least one entry is ready (or `timeout_ms` elapses;
/// `-1` waits forever). Returns the number of ready entries; `EINTR` is
/// retried internally so callers never see a spurious interrupt.
///
/// The engine crate's single sanctioned `unsafe` site (the crate root is
/// `#![deny(unsafe_code)]`): the libc `poll(2)` call. `fds` is a valid
/// exclusive slice whose `repr(C)` layout matches `struct pollfd`, and
/// the kernel writes only within it.
#[allow(unsafe_code)]
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        for f in fds.iter_mut() {
            f.revents = 0;
        }
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// The write end of a self-pipe: any thread can [`Waker::wake`] the
/// event loop holding the matching [`WakeReceiver`]. Wakes coalesce — a
/// full pipe means a wake is already pending, which is exactly the
/// semantics we want, so `WouldBlock` is silently ignored.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Wakes the paired event loop (best-effort, never blocks).
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The read end of a self-pipe, polled with `POLLIN` by an event loop.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UnixStream,
}

impl WakeReceiver {
    /// The fd to include in the loop's poll set.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every pending wake byte (nonblocking).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// Creates a connected waker/receiver pair (both ends nonblocking).
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (rx, tx) = UnixStream::pair()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn wake_breaks_an_infinite_poll() {
        let (waker, rx) = wake_pair().unwrap();
        let handle = std::thread::spawn(move || {
            let mut fds = [PollFd::new(rx.fd(), POLLIN)];
            let started = Instant::now();
            let n = poll_fds(&mut fds, -1).unwrap();
            assert_eq!(n, 1);
            assert!(fds[0].ready(POLLIN));
            rx.drain();
            // Once drained, a zero-timeout poll reports nothing pending.
            let n = poll_fds(&mut fds, 0).unwrap();
            assert_eq!(n, 0);
            started.elapsed()
        });
        // Test-only: give the polling thread time to park before waking.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(Duration::from_millis(20));
        waker.wake();
        waker.wake(); // coalesces with the first
        let waited = handle.join().unwrap();
        assert!(waited >= Duration::from_millis(10), "poll returned early");
    }

    #[test]
    fn timeout_expires_without_events() {
        let (_waker, rx) = wake_pair().unwrap();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let started = Instant::now();
        let n = poll_fds(&mut fds, 25).unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn pollout_reports_writable_sockets() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, 0).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLOUT));
    }
}
