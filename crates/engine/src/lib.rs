//! # dsg-engine — the query engine: plan → execute → serve
//!
//! The paper's thesis is that one density query should run well at any
//! scale — in RAM, streamed from disk, or sketched. This crate turns
//! that into an architecture instead of a pile of CLI branches:
//!
//! * [`Query`] — a declarative query: algorithm ∈ {approx, atleast-k,
//!   directed, charikar, exact, enumerate} × its ε/k/δ/sketch
//!   parameters, with an optional forced [`BackendRequest`].
//! * [`ResourcePolicy`] — memory budget and thread count.
//! * [`planner`] — a pure, deterministic, *explainable* planner mapping
//!   `(Query, GraphMeta, ResourcePolicy)` to a [`Plan`]: in-memory
//!   serial vs parallel CSR vs file-streamed vs sketched, and in-RAM vs
//!   spill-to-disk shuffle for the MapReduce driver. Every fired rule is
//!   recorded in [`Plan::reasons`].
//! * [`Engine`] — executes the plan by calling exactly the public API a
//!   direct caller would, so results are byte-identical (asserted in
//!   `tests/engine.rs`), and returns one unified [`Report`] (density,
//!   node set, passes, state/shuffle bytes, the plan taken).
//! * [`GraphCatalog`] — loads, canonicalizes, and fingerprints each
//!   graph once; repeated queries hit the cache. Internally
//!   synchronized with single-flight loads, so a worker pool sharing
//!   one catalog still loads each cold graph exactly once.
//! * [`ResultCache`] — completed [`Report`]s keyed by
//!   `(file fingerprint, canonical query, effective policy)` with
//!   byte-budgeted LRU eviction; repeated identical queries replay
//!   byte-identically (minus `elapsed_ms`) without recomputing.
//! * [`serve`] — a long-running JSONL request/response loop over
//!   stdin/stdout or a Unix socket. Socket mode runs an accept thread
//!   plus a bounded worker pool so many clients are served
//!   concurrently against one shared engine.
//! * [`shard`] — the sharded serve mode (`ServeOptions::shards > 1`):
//!   N independent engines behind one socket, each request hash-routed
//!   by graph identity over bounded per-shard queues so shards never
//!   touch each other's locks.
//! * **Mutable sessions** — named in-memory graphs created and mutated
//!   through the catalog ([`NamedGraph`], `create_graph` / `add_edges`
//!   / `remove_edges` / `compact` ops): every mutation publishes a
//!   fresh snapshot under a monotonic version, result-cache keys carry
//!   the version (stale replays are structurally impossible), and the
//!   peeling algorithms warm-restart from the previous version's
//!   result where the delta is small (see [`Engine`]'s module docs).
//!
//! ```
//! use dsg_engine::{Algorithm, Engine, Query, ResourcePolicy, Source};
//! use dsg_graph::gen;
//!
//! let mut engine = Engine::new();
//! let source = Source::Memory {
//!     list: gen::clique(8),
//!     label: "k8".into(),
//! };
//! let query = Query::new(Algorithm::Approx { epsilon: 0.5, sketch: None });
//! let report = engine
//!     .execute(&source, &query, &ResourcePolicy::default())
//!     .unwrap();
//! assert_eq!(report.density(), 3.5); // (8 choose 2) / 8
//! assert_eq!(report.plan.backend.name(), "memory");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::all)]

pub mod catalog;
mod engine;
mod error;
pub mod frame;
mod incremental;
pub mod minijson;
pub mod persistence;
pub mod planner;
pub mod query;
#[cfg(unix)]
pub mod readiness;
pub mod report;
pub mod result_cache;
pub mod serve;
#[cfg(unix)]
pub mod shard;

pub use catalog::{
    CatalogEntry, CatalogStats, GraphCatalog, MutateOp, MutationOutcome, NamedGraph,
    NamedGraphStats,
};
pub use engine::{
    mr_edge_splits, Engine, ServeReport, WarmStats, DEFAULT_INCREMENTAL_THRESHOLD,
    DEFAULT_WARM_THRESHOLD,
};
pub use error::{EngineError, Result};
pub use incremental::IncrementalDebug;
pub use persistence::{RecoveryStats, WalStats, DEFAULT_FSYNC_EVERY, DEFAULT_SNAPSHOT_EVERY};
pub use planner::{Backend, GraphMeta, Plan, ShuffleChoice};
pub use query::{Algorithm, BackendRequest, Query, ResourcePolicy, Source};
pub use report::{JsonBuilder, Outcome, Report, ShuffleStats};
pub use result_cache::{GraphId, ResultCache, ResultCacheStats};
#[cfg(unix)]
pub use serve::{client_unix, client_unix_opts, serve_unix};
pub use serve::{
    percentile, serve_loop, serve_stdio, ClientOptions, ClientStats, ServeMetrics, ServeOptions,
    ServeSummary,
};
#[cfg(unix)]
pub use shard::routing_shard;
