//! Durability layer for named session graphs: per-graph write-ahead
//! logs plus compacted snapshots under a `--data-dir`.
//!
//! ## Layout
//!
//! ```text
//! <data-dir>/
//!   graphs/
//!     <escaped-name>/
//!       name          raw graph name (the dir name is an escaped form)
//!       wal.log       append-only checksummed op records
//!       snapshot.bin  compacted state at some version (tmp+rename)
//! ```
//!
//! The serve layer gives **each shard its own data dir**
//! (`<data-dir>/shard-<i>`), so shards stay lock-free on disk exactly
//! as they are in memory: no two engines ever touch the same file.
//!
//! ## WAL record format (all integers little-endian)
//!
//! | offset | size | field                                        |
//! |--------|------|----------------------------------------------|
//! | 0      | 1    | magic `0xD7`                                 |
//! | 1      | 1    | record-format version (1)                    |
//! | 2      | 2    | reserved (0)                                 |
//! | 4      | 4    | payload length `u32`                         |
//! | 8      | len  | payload: version `u64` + encoded session op  |
//! | 8+len  | 8    | FNV-1a over bytes `0..8+len`                 |
//!
//! The payload's leading `u64` is the catalog version the op published
//! (or would have published): replay assigns exactly those versions, so
//! a restarted server resumes at the version it crashed at and versions
//! stay monotonic across restarts — the result cache and warm-seed
//! invariants assume they never regress.
//!
//! A torn tail (partial header, short payload, or checksum mismatch on
//! the **last** record) is dropped whole — an op is never half-replayed
//! — and the file is truncated back to the good prefix so the next
//! append lands after intact records. Corruption *before* the tail
//! (checksum mismatch followed by more intact bytes) also truncates
//! there: everything after a bad record is unreachable because record
//! boundaries can no longer be trusted.
//!
//! ## Snapshots
//!
//! Every `snapshot_every` appended records the graph's compacted state
//! is written to `snapshot.tmp`, fsynced, renamed over `snapshot.bin`,
//! and the WAL is truncated. Replay loads the snapshot first and then
//! applies only WAL records with `version > snapshot.version`, so a
//! crash anywhere in the rotation sequence recovers correctly: records
//! the snapshot already covers are skipped, never double-applied.
//!
//! ## fsync policy
//!
//! `--fsync-every N` fsyncs the WAL after every Nth appended record
//! (default 1; 0 disables explicit fsync). A `kill -9` keeps the page
//! cache, so crash-recovery holds at any setting; the fsync cadence is
//! the power-loss durability bound. fsync happens on catalog mutation
//! paths only — executor/worker threads — never on the router event
//! loop, which dsg-lint's hot-path rule enforces structurally.
//!
//! ## Crash-injection hook
//!
//! `DSG_CRASH_AFTER_BYTES=<n>` makes the process abort once `n`
//! cumulative WAL bytes have been written, tearing the record that
//! crosses the boundary mid-append. The crash-recovery CI lane uses it
//! to test torn-tail recovery with a real `kill`-like exit; without the
//! variable the hook is inert.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use dsg_graph::wal::SessionOp;
use dsg_graph::{DeltaGraph, GraphKind};

/// First byte of every WAL record (distinct from the frame codec's
/// `0xD5` so a WAL file can never be mistaken for a wire capture).
pub const WAL_MAGIC: u8 = 0xD7;
/// First byte of a snapshot file.
pub const SNAPSHOT_MAGIC: u8 = 0xD8;
/// Record/snapshot format version.
pub const WAL_FORMAT_VERSION: u8 = 1;
/// Bytes before the payload of a WAL record.
pub const WAL_HEADER_LEN: usize = 8;
/// Trailing checksum bytes of a WAL record.
pub const WAL_TRAILER_LEN: usize = 8;
/// Hard cap on one record's payload — matches the wire frame cap, and a
/// serve mutation can never exceed one request frame.
pub const MAX_WAL_PAYLOAD: usize = 16 * 1024 * 1024;

/// Default snapshot cadence: compact to `snapshot.bin` and truncate the
/// WAL every this many appended records.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 256;
/// Default fsync cadence: fsync after every appended record.
pub const DEFAULT_FSYNC_EVERY: u64 = 1;

/// FNV-1a 64-bit over a byte slice (same constants as the catalog's
/// fingerprint hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn io_err(what: &str, e: std::io::Error) -> crate::error::EngineError {
    crate::error::EngineError::Persistence(format!("{what}: {e}"))
}

/// Escapes a graph name into a filesystem-safe directory name:
/// `[A-Za-z0-9_-]` pass through, everything else becomes `%XX`. The
/// authoritative name is stored in the dir's `name` file; the escaped
/// form only needs to be injective.
pub fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Crash-injection hook
// ---------------------------------------------------------------------

/// Cumulative WAL bytes budget parsed once from `DSG_CRASH_AFTER_BYTES`.
fn crash_budget() -> Option<u64> {
    static BUDGET: OnceLock<Option<u64>> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("DSG_CRASH_AFTER_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    })
}

/// Cumulative WAL bytes written by this process (all graphs, all
/// shards) — the crash hook's clock.
static WAL_BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `file`, aborting the process mid-write when the
/// crash budget is crossed: only the prefix up to the budget reaches
/// the file (flushed so the torn record is really on disk), then
/// `abort()` — indistinguishable from a `kill -9` landing between two
/// `write(2)` calls of one append.
fn write_with_crash_hook(file: &mut File, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(budget) = crash_budget() {
        let before = WAL_BYTES_WRITTEN.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        if before < budget && budget < before + bytes.len() as u64 {
            let keep = (budget - before) as usize;
            file.write_all(&bytes[..keep])?;
            let _ = file.sync_all();
            std::process::abort();
        }
        if before >= budget {
            // Budget already spent: abort before writing anything, so a
            // tiny budget also tears the very first record cleanly.
            std::process::abort();
        }
    }
    file.write_all(bytes)
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

/// Encodes one `(version, op)` record into `out`.
pub fn encode_record(version: u64, op: &SessionOp<'_>, out: &mut Vec<u8>) {
    let start = out.len();
    out.push(WAL_MAGIC);
    out.push(WAL_FORMAT_VERSION);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&[0, 0, 0, 0]); // length back-patched below
    out.extend_from_slice(&version.to_le_bytes());
    op.encode_into(out);
    let payload_len = (out.len() - start - WAL_HEADER_LEN) as u32;
    out[start + 4..start + 8].copy_from_slice(&payload_len.to_le_bytes());
    let sum = fnv1a(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// One decoded WAL record.
#[derive(Debug)]
pub struct WalRecord {
    /// The catalog version this op published.
    pub version: u64,
    /// The op itself.
    pub op: SessionOp<'static>,
    /// Total encoded length (header + payload + checksum).
    pub len: usize,
}

/// Why `decode_record` stopped.
#[derive(Debug)]
pub enum WalDecodeError {
    /// The buffer ends mid-record: a truncated tail (or more bytes are
    /// on the way, for streaming callers).
    Truncated,
    /// The bytes at the cursor are not a valid record (bad magic,
    /// unsupported format version, oversized length, checksum mismatch,
    /// or an undecodable op payload).
    Corrupt(String),
}

/// Decodes the record at the start of `buf`.
pub fn decode_record(buf: &[u8]) -> Result<WalRecord, WalDecodeError> {
    if buf.len() < WAL_HEADER_LEN {
        return Err(WalDecodeError::Truncated);
    }
    if buf[0] != WAL_MAGIC {
        return Err(WalDecodeError::Corrupt(format!(
            "bad record magic 0x{:02X}",
            buf[0]
        )));
    }
    if buf[1] != WAL_FORMAT_VERSION {
        return Err(WalDecodeError::Corrupt(format!(
            "unsupported record format version {}",
            buf[1]
        )));
    }
    let payload_len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if payload_len > MAX_WAL_PAYLOAD {
        return Err(WalDecodeError::Corrupt(format!(
            "record payload {payload_len} exceeds cap {MAX_WAL_PAYLOAD}"
        )));
    }
    if payload_len < 8 {
        return Err(WalDecodeError::Corrupt(format!(
            "record payload {payload_len} shorter than its version stamp"
        )));
    }
    let total = WAL_HEADER_LEN + payload_len + WAL_TRAILER_LEN;
    if buf.len() < total {
        return Err(WalDecodeError::Truncated);
    }
    let body_end = WAL_HEADER_LEN + payload_len;
    let stored = u64::from_le_bytes(buf[body_end..total].try_into().expect("trailer is 8 bytes"));
    if fnv1a(&buf[..body_end]) != stored {
        return Err(WalDecodeError::Corrupt("record checksum mismatch".into()));
    }
    let payload = &buf[WAL_HEADER_LEN..body_end];
    let version = u64::from_le_bytes(payload[..8].try_into().expect("version stamp is 8 bytes"));
    let op = SessionOp::decode(&payload[8..])
        .map_err(|e| WalDecodeError::Corrupt(format!("undecodable op: {e}")))?;
    Ok(WalRecord {
        version,
        op,
        len: total,
    })
}

// ---------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------

/// Encodes a snapshot file: `[magic, fmt, 0, 0]`, version `u64`, kind
/// `u8`, `num_nodes u32`, `edge_count u32`, pairs, FNV-1a trailer.
fn encode_snapshot(version: u64, state: &DeltaGraph, out: &mut Vec<u8>) {
    let list = state.materialize();
    out.push(SNAPSHOT_MAGIC);
    out.push(WAL_FORMAT_VERSION);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(match list.kind {
        GraphKind::Undirected => 0,
        GraphKind::Directed => 1,
    });
    out.extend_from_slice(&list.num_nodes.to_le_bytes());
    out.extend_from_slice(&(list.edges.len() as u32).to_le_bytes());
    for &(u, v) in &list.edges {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    let sum = fnv1a(out);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Decodes a snapshot file into `(version, state)`. Any structural
/// problem — short file, bad magic, checksum mismatch — is an error;
/// recovery treats it as "no snapshot" (the WAL still replays).
fn decode_snapshot(bytes: &[u8]) -> Result<(u64, DeltaGraph), String> {
    const FIXED: usize = 4 + 8 + 1 + 4 + 4;
    if bytes.len() < FIXED + 8 {
        return Err("snapshot file shorter than its fixed header".into());
    }
    if bytes[0] != SNAPSHOT_MAGIC {
        return Err(format!("bad snapshot magic 0x{:02X}", bytes[0]));
    }
    if bytes[1] != WAL_FORMAT_VERSION {
        return Err(format!("unsupported snapshot format version {}", bytes[1]));
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("trailer is 8 bytes"));
    if fnv1a(&bytes[..body_end]) != stored {
        return Err("snapshot checksum mismatch".into());
    }
    let version = u64::from_le_bytes(bytes[4..12].try_into().expect("fixed header"));
    let kind = match bytes[12] {
        0 => GraphKind::Undirected,
        1 => GraphKind::Directed,
        other => return Err(format!("unknown snapshot graph kind byte {other}")),
    };
    let num_nodes = u32::from_le_bytes(bytes[13..17].try_into().expect("fixed header"));
    let count = u32::from_le_bytes(bytes[17..21].try_into().expect("fixed header")) as usize;
    if body_end - FIXED != count * 8 {
        return Err(format!(
            "snapshot edge section is {} bytes, expected {}",
            body_end - FIXED,
            count * 8
        ));
    }
    let mut edges = Vec::with_capacity(count);
    let mut at = FIXED;
    for _ in 0..count {
        let u = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("edge pair"));
        let v = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("edge pair"));
        edges.push((u, v));
        at += 8;
    }
    let mut state = DeltaGraph::new_empty(kind);
    state
        .add_edges(&edges)
        .map_err(|e| format!("snapshot edges rejected: {e}"))?;
    // The snapshot stores materialized (compacted) state; fold the
    // freshly-added delta into the base so replayed auto-compaction
    // decisions start from the same shape the live graph had after its
    // own snapshot-time compaction. num_nodes is implied by the edges
    // (materialize() trims to the max endpoint), matching the live
    // DeltaGraph, so the stored num_nodes is a cross-check only.
    state.compact();
    if state.num_nodes() > num_nodes {
        return Err(format!(
            "snapshot edges imply {} nodes, header says {num_nodes}",
            state.num_nodes()
        ));
    }
    Ok((version, state))
}

// ---------------------------------------------------------------------
// Per-graph WAL handle
// ---------------------------------------------------------------------

/// Point-in-time durability counters of one graph's WAL.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Bytes currently in `wal.log` (since the last snapshot rotation).
    pub wal_bytes: u64,
    /// Version the current `snapshot.bin` holds (0 = none yet).
    pub snapshot_version: u64,
    /// Total records covered by the last fsync (monotone; equals the
    /// total appended records when `fsync_every == 1`).
    pub last_fsync: u64,
}

/// The append handle for one graph's WAL directory. Owned by the
/// graph's `NamedGraph.wal` mutex; all I/O happens under that guard,
/// which is only ever taken while holding the graph's state mutex (the
/// registered `NamedGraph.state < NamedGraph.wal`-as-leaf order).
#[derive(Debug)]
pub struct GraphWal {
    dir: PathBuf,
    file: File,
    fsync_every: u64,
    snapshot_every: u64,
    wal_bytes: u64,
    /// Records appended over this handle's lifetime plus the replayed
    /// prefix it opened on — the fsync cadence clock.
    records: u64,
    records_since_snapshot: u64,
    last_fsync_records: u64,
    snapshot_version: u64,
    buf: Vec<u8>,
}

impl GraphWal {
    /// Appends one `(version, op)` record, applies the fsync policy, and
    /// rotates a snapshot when the cadence says so. `state` is the
    /// post-op state (used only when this append triggers a rotation).
    pub fn append(
        &mut self,
        version: u64,
        op: &SessionOp<'_>,
        state: &DeltaGraph,
    ) -> crate::error::Result<()> {
        self.buf.clear();
        encode_record(version, op, &mut self.buf);
        write_with_crash_hook(&mut self.file, &self.buf).map_err(|e| io_err("wal append", e))?;
        self.wal_bytes += self.buf.len() as u64;
        self.records += 1;
        self.records_since_snapshot += 1;
        if self.fsync_every > 0 && self.records.is_multiple_of(self.fsync_every) {
            self.file.sync_all().map_err(|e| io_err("wal fsync", e))?;
            self.last_fsync_records = self.records;
        }
        if self.snapshot_every > 0 && self.records_since_snapshot >= self.snapshot_every {
            self.rotate_snapshot(version, state)?;
        }
        Ok(())
    }

    /// Writes the compacted state to `snapshot.tmp`, fsyncs, renames
    /// over `snapshot.bin`, and truncates the WAL. Crash-safe at every
    /// step: replay skips records `<= snapshot.version`, so an old WAL
    /// surviving next to a new snapshot never double-applies.
    fn rotate_snapshot(&mut self, version: u64, state: &DeltaGraph) -> crate::error::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        let fin = self.dir.join("snapshot.bin");
        let mut bytes = Vec::new();
        encode_snapshot(version, state, &mut bytes);
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("snapshot create", e))?;
            f.write_all(&bytes)
                .map_err(|e| io_err("snapshot write", e))?;
            f.sync_all().map_err(|e| io_err("snapshot fsync", e))?;
        }
        std::fs::rename(&tmp, &fin).map_err(|e| io_err("snapshot rename", e))?;
        sync_dir(&self.dir);
        self.snapshot_version = version;
        self.file
            .set_len(0)
            .map_err(|e| io_err("wal truncate", e))?;
        if self.fsync_every > 0 {
            let _ = self.file.sync_all();
        }
        self.wal_bytes = 0;
        self.records_since_snapshot = 0;
        Ok(())
    }

    /// Current durability counters. (Named `wal_stats`, not `stats`, so
    /// dsg-lint's name-based call resolution cannot confuse it with
    /// `NamedGraph::stats` when called under the `NamedGraph.wal`
    /// guard.)
    pub fn wal_stats(&self) -> WalStats {
        WalStats {
            wal_bytes: self.wal_bytes,
            snapshot_version: self.snapshot_version,
            last_fsync: self.last_fsync_records,
        }
    }
}

/// Best-effort directory fsync (makes a rename durable on POSIX; some
/// filesystems refuse fsync on directories, which is fine to ignore).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

// ---------------------------------------------------------------------
// Data-dir handle + recovery
// ---------------------------------------------------------------------

/// Catalog-level durability configuration: where graph dirs live and
/// the append policies every [`GraphWal`] is opened with.
#[derive(Debug)]
pub struct Durability {
    root: PathBuf,
    fsync_every: u64,
    snapshot_every: u64,
}

/// What recovery found in a data dir.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Graphs restored into the catalog.
    pub graphs: u64,
    /// WAL records replayed over snapshots (across all graphs).
    pub replayed_ops: u64,
    /// Torn/corrupt tails dropped (at most one per graph per restart).
    pub dropped_tail_records: u64,
    /// Highest version seen — the restored version-counter floor.
    pub max_version: u64,
}

/// One graph restored from disk, ready to become a catalog entry.
pub struct RecoveredGraph {
    /// The authoritative name (from the dir's `name` file).
    pub name: String,
    /// Rebuilt session state (snapshot + replayed WAL tail).
    pub state: DeltaGraph,
    /// The version the graph was at when the process died.
    pub version: u64,
    /// The open append handle, positioned after the intact prefix.
    pub wal: GraphWal,
    /// Records replayed for this graph.
    pub replayed_ops: u64,
    /// 1 if a torn/corrupt tail was dropped for this graph.
    pub dropped_tail_records: u64,
}

impl Durability {
    /// Creates the handle and the `graphs/` tree.
    pub fn open(
        root: &Path,
        fsync_every: u64,
        snapshot_every: u64,
    ) -> crate::error::Result<Durability> {
        std::fs::create_dir_all(root.join("graphs")).map_err(|e| io_err("create data dir", e))?;
        Ok(Durability {
            root: root.to_path_buf(),
            fsync_every,
            snapshot_every,
        })
    }

    /// The data-dir root this handle writes under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Creates (or wipes and re-creates) the directory for a new graph
    /// and returns its open WAL handle. Called on the `create_graph`
    /// path under the catalog's map write lock, so two racing creates
    /// of one name cannot both wipe the dir; a leftover dir from an
    /// evicted or crashed-before-publish graph is reset here.
    pub fn create_graph_wal(&self, name: &str) -> crate::error::Result<GraphWal> {
        let dir = self.root.join("graphs").join(escape_name(name));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).map_err(|e| io_err("reset graph dir", e))?;
        }
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create graph dir", e))?;
        let name_path = dir.join("name");
        let mut f = File::create(&name_path).map_err(|e| io_err("write name file", e))?;
        f.write_all(name.as_bytes())
            .map_err(|e| io_err("write name file", e))?;
        f.sync_all().map_err(|e| io_err("fsync name file", e))?;
        sync_dir(&dir);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("wal.log"))
            .map_err(|e| io_err("open wal", e))?;
        Ok(GraphWal {
            dir,
            file,
            fsync_every: self.fsync_every,
            snapshot_every: self.snapshot_every,
            wal_bytes: 0,
            records: 0,
            records_since_snapshot: 0,
            last_fsync_records: 0,
            snapshot_version: 0,
            buf: Vec::new(),
        })
    }

    /// Permanently removes a graph's directory (drop path). Best-effort:
    /// a failure leaves the dir to be resurrected or wiped later.
    pub fn remove_graph_dir(&self, name: &str) {
        let dir = self.root.join("graphs").join(escape_name(name));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Scans `graphs/` and rebuilds every recoverable graph:
    /// snapshot first, then the WAL records with `version >
    /// snapshot.version`, stopping at (and truncating) the first torn or
    /// corrupt record. A dir with no name file or no intact create
    /// lineage — a crash before the create record survived — is skipped:
    /// that create was never acknowledged, so the pre-op state is "the
    /// graph does not exist".
    pub fn recover(&self, compact_ratio: f64) -> crate::error::Result<Vec<RecoveredGraph>> {
        let graphs_root = self.root.join("graphs");
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&graphs_root).map_err(|e| io_err("scan data dir", e))?;
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            if let Some(g) = self.recover_one(&dir, compact_ratio)? {
                out.push(g);
            }
        }
        Ok(out)
    }

    fn recover_one(
        &self,
        dir: &Path,
        compact_ratio: f64,
    ) -> crate::error::Result<Option<RecoveredGraph>> {
        let name = match std::fs::read(dir.join("name")) {
            Ok(bytes) => match String::from_utf8(bytes) {
                Ok(s) if !s.is_empty() => s,
                _ => return Ok(None),
            },
            Err(_) => return Ok(None), // crashed before the name file: unborn
        };
        // Snapshot (optional; corrupt == absent, the WAL still replays).
        let mut state: Option<DeltaGraph> = None;
        let mut version = 0u64;
        let mut snapshot_version = 0u64;
        if let Ok(bytes) = std::fs::read(dir.join("snapshot.bin")) {
            match decode_snapshot(&bytes) {
                Ok((v, s)) => {
                    state = Some(s);
                    version = v;
                    snapshot_version = v;
                }
                Err(_) => {
                    // Unreadable snapshot: fall back to pure WAL replay.
                    // (If the WAL was already truncated past the create
                    // record the graph is unrecoverable and skipped —
                    // surfacing that distinctly is a ROADMAP item.)
                }
            }
        }
        // WAL replay.
        let wal_path = dir.join("wal.log");
        let mut wal_bytes_buf = Vec::new();
        if let Ok(mut f) = File::open(&wal_path) {
            let _ = f.read_to_end(&mut wal_bytes_buf);
        }
        let mut at = 0usize;
        let mut replayed = 0u64;
        let mut dropped_tail = 0u64;
        let mut records = 0u64;
        while at < wal_bytes_buf.len() {
            match decode_record(&wal_bytes_buf[at..]) {
                Ok(rec) => {
                    at += rec.len;
                    if rec.version <= snapshot_version {
                        // Already folded into the snapshot (crash midway
                        // through a rotation left the old WAL behind).
                        continue;
                    }
                    let state_ref = match (&mut state, &rec.op) {
                        (None, SessionOp::Create { .. }) => {
                            state = Some(DeltaGraph::new_empty(GraphKind::Undirected));
                            state.as_mut().expect("just set")
                        }
                        (None, _) => {
                            // Ops before any create lineage: the dir was
                            // reset mid-create. Unrecoverable records.
                            break;
                        }
                        (Some(s), _) => s,
                    };
                    rec.op.replay(state_ref, compact_ratio).map_err(|e| {
                        crate::error::EngineError::Persistence(format!(
                            "replay of '{name}' failed: {e}"
                        ))
                    })?;
                    version = rec.version;
                    replayed += 1;
                    records += 1;
                }
                Err(WalDecodeError::Truncated) | Err(WalDecodeError::Corrupt(_)) => {
                    // Torn tail (or untrusted remainder): drop it whole
                    // and truncate so future appends land after the
                    // intact prefix.
                    dropped_tail = 1;
                    break;
                }
            }
        }
        let state = match state {
            Some(s) => s,
            None => return Ok(None), // nothing intact: unborn graph
        };
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| io_err("reopen wal", e))?;
        if (at as u64)
            < std::fs::metadata(&wal_path)
                .map_err(|e| io_err("stat wal", e))?
                .len()
        {
            file.set_len(at as u64)
                .map_err(|e| io_err("truncate torn wal tail", e))?;
            let _ = file.sync_all();
        }
        let wal = GraphWal {
            dir: dir.to_path_buf(),
            file,
            fsync_every: self.fsync_every,
            snapshot_every: self.snapshot_every,
            wal_bytes: at as u64,
            records,
            records_since_snapshot: records,
            last_fsync_records: records,
            snapshot_version,
            buf: Vec::new(),
        };
        Ok(Some(RecoveredGraph {
            name,
            state,
            version,
            wal,
            replayed_ops: replayed,
            dropped_tail_records: dropped_tail,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dsg-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn op_add(edges: Vec<(u32, u32)>) -> SessionOp<'static> {
        SessionOp::Add(Cow::Owned(edges))
    }

    #[test]
    fn record_roundtrip_and_checksum() {
        let mut buf = Vec::new();
        encode_record(7, &op_add(vec![(1, 2), (3, 4)]), &mut buf);
        let rec = decode_record(&buf).unwrap();
        assert_eq!(rec.version, 7);
        assert_eq!(rec.len, buf.len());
        assert_eq!(rec.op.edges(), &[(1, 2), (3, 4)]);
        // Flip one payload byte: checksum must catch it.
        let mut bad = buf.clone();
        bad[WAL_HEADER_LEN + 3] ^= 0xFF;
        assert!(matches!(
            decode_record(&bad),
            Err(WalDecodeError::Corrupt(_))
        ));
        // Every strict prefix is Truncated or Corrupt, never Ok.
        for cut in 0..buf.len() {
            assert!(decode_record(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn wal_append_replay_roundtrip() {
        let root = tmpdir("roundtrip");
        let d = Durability::open(&root, 1, 1_000).unwrap();
        let mut live = DeltaGraph::new_empty(GraphKind::Undirected);
        let mut wal = d.create_graph_wal("g").unwrap();
        let script: Vec<SessionOp<'static>> = vec![
            SessionOp::Create {
                kind: GraphKind::Undirected,
                edges: Cow::Owned(vec![(0, 1), (1, 2)]),
            },
            op_add(vec![(2, 3)]),
            SessionOp::Remove(Cow::Owned(vec![(0, 1)])),
            SessionOp::Compact,
        ];
        for (i, op) in script.iter().enumerate() {
            op.replay(&mut live, 0.5).unwrap();
            wal.append(i as u64 + 1, op, &live).unwrap();
        }
        drop(wal);
        let recovered = d.recover(0.5).unwrap();
        assert_eq!(recovered.len(), 1);
        let g = &recovered[0];
        assert_eq!(g.name, "g");
        assert_eq!(g.version, script.len() as u64);
        assert_eq!(g.replayed_ops, script.len() as u64);
        assert_eq!(g.dropped_tail_records, 0);
        let mut a = live.materialize();
        a.canonicalize();
        let mut b = g.state.materialize();
        b.canonicalize();
        assert_eq!(a.edges, b.edges);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let root = tmpdir("torn");
        let d = Durability::open(&root, 1, 1_000).unwrap();
        let mut live = DeltaGraph::new_empty(GraphKind::Undirected);
        let mut wal = d.create_graph_wal("g").unwrap();
        let create = SessionOp::Create {
            kind: GraphKind::Undirected,
            edges: Cow::Owned(vec![(0, 1)]),
        };
        create.replay(&mut live, 0.5).unwrap();
        wal.append(1, &create, &live).unwrap();
        let add = op_add(vec![(1, 2)]);
        add.replay(&mut live, 0.5).unwrap();
        wal.append(2, &add, &live).unwrap();
        drop(wal);
        let wal_path = root.join("graphs").join("g").join("wal.log");
        let full = std::fs::read(&wal_path).unwrap();
        // Tear the second record at every possible boundary: recovery
        // must always see exactly the first op and truncate the file.
        let first_len = decode_record(&full).unwrap().len;
        for cut in first_len..full.len() {
            std::fs::write(&wal_path, &full[..cut]).unwrap();
            let recovered = d.recover(0.5).unwrap();
            assert_eq!(recovered.len(), 1, "cut {cut}");
            let g = &recovered[0];
            let expected_tail = (cut != first_len) as u64;
            assert_eq!(g.dropped_tail_records, expected_tail, "cut {cut}");
            assert_eq!(g.version, 1, "cut {cut}");
            assert_eq!(g.replayed_ops, 1, "cut {cut}");
            assert_eq!(
                std::fs::metadata(&wal_path).unwrap().len(),
                first_len as u64,
                "cut {cut}: torn tail must be truncated"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshot_rotation_skips_covered_records() {
        let root = tmpdir("rotate");
        // Snapshot every 2 records.
        let d = Durability::open(&root, 1, 2).unwrap();
        let mut live = DeltaGraph::new_empty(GraphKind::Undirected);
        let mut wal = d.create_graph_wal("g").unwrap();
        let mut version = 0u64;
        let script: Vec<SessionOp<'static>> = vec![
            SessionOp::Create {
                kind: GraphKind::Undirected,
                edges: Cow::Owned(vec![(0, 1)]),
            },
            op_add(vec![(1, 2)]),
            op_add(vec![(2, 3)]),
            op_add(vec![(3, 4)]),
            op_add(vec![(4, 5)]),
        ];
        for op in &script {
            op.replay(&mut live, 0.5).unwrap();
            version += 1;
            wal.append(version, op, &live).unwrap();
        }
        let stats = wal.wal_stats();
        assert!(stats.snapshot_version >= 2, "rotation must have happened");
        drop(wal);
        let recovered = d.recover(0.5).unwrap();
        let g = &recovered[0];
        assert_eq!(g.version, script.len() as u64);
        let mut a = live.materialize();
        a.canonicalize();
        let mut b = g.state.materialize();
        b.canonicalize();
        assert_eq!(a.edges, b.edges);
        // Appends keep working after recovery at the right version.
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unborn_graph_dirs_are_skipped() {
        let root = tmpdir("unborn");
        let d = Durability::open(&root, 1, 100).unwrap();
        // Dir with a name file but no WAL bytes: crash before the
        // create record — the graph never existed.
        let dir = root.join("graphs").join("ghost");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("name"), b"ghost").unwrap();
        std::fs::write(dir.join("wal.log"), b"").unwrap();
        // Dir with no name file at all.
        std::fs::create_dir_all(root.join("graphs").join("junk")).unwrap();
        assert!(d.recover(0.5).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn escape_name_is_injective_on_tricky_names() {
        let names = ["a/b", "a%2Fb", "a b", "a.b", "ABC-123_x", "…"];
        let mut seen = std::collections::HashSet::new();
        for n in names {
            let e = escape_name(n);
            assert!(
                e.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'%'),
                "{e}"
            );
            assert!(seen.insert(e), "collision on {n}");
        }
    }
}
