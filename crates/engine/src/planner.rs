//! The resource-aware planner: `(Query, GraphMeta, ResourcePolicy) →
//! Plan`, a pure deterministic function.
//!
//! The paper's point is that one density query runs well at any scale —
//! in RAM, streamed from disk, or sketched. The planner encodes that as
//! explicit, explainable rules (every fired rule is recorded in
//! [`Plan::reasons`]):
//!
//! 1. **Forced backend** — a [`Query::backend`] request is validated
//!    against the algorithm's capabilities and honored verbatim.
//! 2. **Sketch param ⇒ sketched backend** — a Count-Sketch width on
//!    `approx` replaces the exact degree oracle; the run streams from the
//!    file when the graph does not fit the budget, else from memory.
//! 3. **In-memory-only algorithms** (`directed`, `charikar`, `exact`,
//!    `enumerate`) always plan the in-memory backend — parallel CSR when
//!    the policy has > 1 thread and a parallel kernel exists — even over
//!    budget (there is no smaller backend; the overrun is recorded).
//! 4. **Fits ⇒ in-memory** — when [`est_in_memory_bytes`] is within the
//!    budget (or no budget is set), plan in-memory: parallel CSR with
//!    > 1 thread, serial otherwise.
//! 5. **Does not fit ⇒ streamed** — `approx`/`atleast-k` fall back to the
//!    out-of-core path: one re-read per pass, O(n) state, the edge list
//!    never materialized.
//! 6. **Shuffle placement** — a MapReduce plan keeps the shuffle in RAM
//!    when [`est_shuffle_bytes_per_pass`] fits the budget and otherwise
//!    spills to sorted disk runs with a per-worker budget carved out of
//!    the policy's.
//!
//! All size estimates are deterministic closed-form functions of
//! `(nodes, edges, weighted)` documented on the functions below — the
//! planner never probes the machine, so the same query over the same
//! graph under the same policy always yields the same plan.
//!
//! **Streamed semantics caveat.** The out-of-core backends take the
//! file exactly as stored — no canonicalization, so duplicate or
//! bidirectional edge lines count twice — while the in-memory backends
//! dedupe. On non-canonical files a streamed plan can therefore return
//! a different (still guarantee-respecting) density than an in-memory
//! plan. Every streamed plan records this in its reasons so the
//! `plan` field of the report/JSON makes the semantics visible; files
//! written by this repository's own writers are canonical and
//! unaffected.

use dsg_core::result::streaming_state_bytes;
use dsg_mapreduce::ShuffleBackend;

use crate::error::{EngineError, Result};
use crate::query::{Algorithm, BackendRequest, Query, ResourcePolicy};

/// What the planner knows about a graph without materializing it: node
/// and edge counts (binary header, text validation scan, or in-memory
/// list), weightedness, and the on-disk size (0 for memory sources).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphMeta {
    /// Number of nodes `n`.
    pub nodes: u64,
    /// Number of edges `m` (as stored; pre-canonicalization for files).
    pub edges: u64,
    /// Whether edges carry weights.
    pub weighted: bool,
    /// Size of the backing file in bytes (0 for in-memory sources).
    pub file_bytes: u64,
}

/// Estimated peak bytes of the in-memory path: the canonical edge list
/// (`8m`, plus `8m` of weights), the CSR snapshot (`8(n+1)` offsets,
/// `4·2m` targets, plus `8·2m` weights), and the peeling working state
/// (`24n`: liveness, degrees, removal log).
pub fn est_in_memory_bytes(meta: &GraphMeta) -> u64 {
    let (n, m) = (meta.nodes, meta.edges);
    let edge_list = 8 * m + if meta.weighted { 8 * m } else { 0 };
    let csr = 8 * (n + 1) + 8 * m + if meta.weighted { 16 * m } else { 0 };
    edge_list + csr + 24 * n
}

/// Estimated peak bytes of the out-of-core path — the O(n) semi-streaming
/// state of [`streaming_state_bytes`], with `oracle_words = n` for the
/// exact degree oracle or `t·b` for a sketch.
pub fn est_stream_state_bytes(meta: &GraphMeta, oracle_words: u64) -> u64 {
    streaming_state_bytes(meta.nodes, oracle_words)
}

/// Estimated shuffle volume of one MapReduce pass (3 rounds): every edge
/// is shuffled twice by the degree-and-mark round and once by each
/// rewrite round, every node once — ≈ `16` encoded bytes per record.
pub fn est_shuffle_bytes_per_pass(meta: &GraphMeta) -> u64 {
    16 * (4 * meta.edges + meta.nodes)
}

/// Number of sketch rows used by `SketchParams::paper` (`t`).
pub const SKETCH_ROWS: u64 = 5;

/// Reason recorded on every streamed plan (see the module docs): the
/// out-of-core path takes the file as stored, without canonicalization.
pub const STREAM_SEMANTICS_NOTE: &str =
    "note: streamed runs take the file as stored (no canonicalization; duplicate edges count \
     twice)";

/// The execution backend a plan selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Serial peeling over an in-memory CSR (or `MemoryStream` for
    /// Algorithm 2, matching the direct API).
    InMemorySerial,
    /// The deterministic parallel CSR peeling backend.
    ParallelCsr {
        /// Worker threads.
        threads: usize,
    },
    /// Out-of-core: one re-read of the source per pass, O(n) state.
    Streamed,
    /// Algorithm 1 with a Count-Sketch degree oracle.
    Sketched {
        /// Sketch width `b` (`t = 5` rows).
        width: u32,
        /// `true` → run over the file stream (no materialization);
        /// `false` → run over the in-memory edge list.
        streamed: bool,
    },
    /// The §5.2 MapReduce driver.
    MapReduce {
        /// Worker threads of the simulated cluster.
        workers: usize,
        /// Planned shuffle placement.
        shuffle: ShuffleChoice,
    },
}

/// Shuffle placement of a MapReduce plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShuffleChoice {
    /// All shuffle records stay in RAM.
    InRam,
    /// Spill sorted runs to disk above a per-worker, per-partition byte
    /// budget.
    Spill {
        /// The spill budget handed to the shuffle.
        budget_bytes: usize,
    },
}

impl ShuffleChoice {
    /// Converts the planned choice into the mapreduce crate's backend.
    pub fn to_backend(self) -> ShuffleBackend {
        match self {
            ShuffleChoice::InRam => ShuffleBackend::InMemory,
            ShuffleChoice::Spill { budget_bytes } => ShuffleBackend::External {
                spill_budget_bytes: budget_bytes,
            },
        }
    }
}

impl Backend {
    /// Stable name used in reports, JSON summaries, and tests.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::InMemorySerial => "memory",
            Backend::ParallelCsr { .. } => "parallel",
            Backend::Streamed => "stream",
            Backend::Sketched {
                streamed: false, ..
            } => "sketch",
            Backend::Sketched { streamed: true, .. } => "sketch-stream",
            Backend::MapReduce {
                shuffle: ShuffleChoice::InRam,
                ..
            } => "mapreduce",
            Backend::MapReduce {
                shuffle: ShuffleChoice::Spill { .. },
                ..
            } => "mapreduce-spill",
        }
    }
}

/// An explainable execution plan.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// The chosen backend.
    pub backend: Backend,
    /// Estimated peak working-set bytes of the chosen backend.
    pub est_working_bytes: u64,
    /// Estimated peak bytes the in-memory path would have used (the
    /// number the budget was compared against).
    pub est_in_memory_bytes: u64,
    /// The policy's budget the plan was made under.
    pub budget_bytes: Option<u64>,
    /// The rules that fired, in order — the plan's explanation.
    pub reasons: Vec<String>,
}

impl Plan {
    /// One-line human/JSON explanation: backend plus the fired rules.
    pub fn explain(&self) -> String {
        format!("{}: {}", self.backend.name(), self.reasons.join("; "))
    }
}

/// Validates the query's parameters, naming the offending one.
fn validate(query: &Query, policy: &ResourcePolicy) -> Result<()> {
    let bad = |msg: String| Err(EngineError::InvalidQuery(msg));
    if policy.threads == 0 {
        return bad("threads must be at least 1".into());
    }
    match query.algorithm {
        Algorithm::Approx { epsilon, sketch } => {
            if !epsilon.is_finite() || epsilon < 0.0 {
                return bad(format!(
                    "epsilon must be a finite number >= 0 (got {epsilon})"
                ));
            }
            if sketch == Some(0) {
                return bad("sketch width must be at least 1".into());
            }
        }
        Algorithm::AtLeastK { k, epsilon } => {
            if k == 0 {
                return bad("k must be at least 1".into());
            }
            if !epsilon.is_finite() || epsilon < 0.0 {
                return bad(format!(
                    "epsilon must be a finite number >= 0 (got {epsilon})"
                ));
            }
        }
        Algorithm::Directed { delta, epsilon } => {
            if !delta.is_finite() || delta <= 1.0 {
                return bad(format!("delta must be a finite number > 1 (got {delta})"));
            }
            if !epsilon.is_finite() || epsilon < 0.0 {
                return bad(format!(
                    "epsilon must be a finite number >= 0 (got {epsilon})"
                ));
            }
        }
        Algorithm::Enumerate {
            epsilon,
            min_density,
            max_communities,
        } => {
            if !epsilon.is_finite() || epsilon < 0.0 {
                return bad(format!(
                    "epsilon must be a finite number >= 0 (got {epsilon})"
                ));
            }
            if !min_density.is_finite() {
                return bad("min_density must be finite".into());
            }
            if max_communities == 0 {
                return bad("max_communities must be at least 1".into());
            }
        }
        Algorithm::Charikar | Algorithm::Exact { .. } => {}
    }
    Ok(())
}

/// Plans the shuffle placement of a MapReduce backend (rule 6).
fn plan_shuffle(
    meta: &GraphMeta,
    policy: &ResourcePolicy,
    reasons: &mut Vec<String>,
) -> ShuffleChoice {
    let est = est_shuffle_bytes_per_pass(meta);
    match policy.memory_budget_bytes {
        Some(budget) if est > budget => {
            // Carve the spill budget out of the policy's: a quarter of
            // the budget split across the workers, floored at one 64 KiB
            // buffer so degenerate budgets still make progress.
            let per_worker = (budget / 4 / policy.threads.max(1) as u64).max(64 * 1024);
            reasons.push(format!(
                "shuffle ≈{est} B/pass exceeds budget {budget} B → spill to disk \
                 ({per_worker} B per worker bucket)"
            ));
            ShuffleChoice::Spill {
                budget_bytes: per_worker as usize,
            }
        }
        Some(budget) => {
            reasons.push(format!(
                "shuffle ≈{est} B/pass fits budget {budget} B → in-RAM shuffle"
            ));
            ShuffleChoice::InRam
        }
        None => {
            reasons.push("no memory budget → in-RAM shuffle".into());
            ShuffleChoice::InRam
        }
    }
}

/// Produces the execution plan for `query` over a graph described by
/// `meta` under `policy`. Pure and deterministic — see the module docs
/// for the rule order.
pub fn plan(query: &Query, meta: &GraphMeta, policy: &ResourcePolicy) -> Result<Plan> {
    validate(query, policy)?;
    if let Algorithm::AtLeastK { k, .. } = query.algorithm {
        if k as u64 > meta.nodes {
            return Err(EngineError::KTooLarge { k, n: meta.nodes });
        }
    }

    let alg = &query.algorithm;
    let est_mem = est_in_memory_bytes(meta);
    let budget = policy.memory_budget_bytes;
    let fits = budget.is_none_or(|b| est_mem <= b);
    let mut reasons = Vec::new();
    let parallel_ok = alg.parallelizable() && policy.threads > 1;

    // Rule 2: a sketch width selects the sketched backend outright.
    if let Algorithm::Approx {
        sketch: Some(width),
        ..
    } = *alg
    {
        let streamed = match query.backend {
            None => {
                if fits {
                    reasons
                        .push("sketch width set → sketched oracle over the in-memory list".into());
                } else {
                    reasons.push(format!(
                        "sketch width set and est. in-memory {est_mem} B exceeds budget \
                         → sketched oracle over the file stream"
                    ));
                    reasons.push(STREAM_SEMANTICS_NOTE.into());
                }
                !fits
            }
            Some(BackendRequest::InMemory) => {
                reasons.push("forced in-memory sketched run".into());
                false
            }
            Some(BackendRequest::Streamed) => {
                reasons.push("forced streamed sketched run".into());
                reasons.push(STREAM_SEMANTICS_NOTE.into());
                true
            }
            Some(other) => {
                return Err(EngineError::Unsupported(format!(
                    "sketched runs are serial streaming; {other:?} does not apply"
                )))
            }
        };
        let working = est_stream_state_bytes(meta, SKETCH_ROWS * width as u64)
            + if streamed { 0 } else { est_mem };
        return Ok(Plan {
            backend: Backend::Sketched { width, streamed },
            est_working_bytes: working,
            est_in_memory_bytes: est_mem,
            budget_bytes: budget,
            reasons,
        });
    }

    // Rule 1: forced backends.
    let backend = match query.backend {
        Some(BackendRequest::InMemory) => {
            reasons.push("forced in-memory".into());
            if parallel_ok {
                Backend::ParallelCsr {
                    threads: policy.threads,
                }
            } else {
                Backend::InMemorySerial
            }
        }
        Some(BackendRequest::Parallel) => {
            if !alg.parallelizable() {
                return Err(EngineError::Unsupported(format!(
                    "no parallel backend for '{}'",
                    alg.name()
                )));
            }
            reasons.push("forced parallel CSR".into());
            Backend::ParallelCsr {
                threads: policy.threads,
            }
        }
        Some(BackendRequest::Streamed) => {
            if !alg.streamable() {
                return Err(EngineError::Unsupported(format!(
                    "'{}' cannot stream; it needs the whole graph in memory",
                    alg.name()
                )));
            }
            reasons.push("forced out-of-core streaming".into());
            reasons.push(STREAM_SEMANTICS_NOTE.into());
            Backend::Streamed
        }
        Some(BackendRequest::MapReduce) => {
            if !alg.mapreducible() {
                return Err(EngineError::Unsupported(format!(
                    "no MapReduce driver for '{}'",
                    alg.name()
                )));
            }
            if meta.weighted {
                return Err(EngineError::Unsupported(
                    "the MapReduce driver handles unweighted graphs only".into(),
                ));
            }
            reasons.push("forced MapReduce".into());
            Backend::MapReduce {
                workers: policy.threads,
                shuffle: plan_shuffle(meta, policy, &mut reasons),
            }
        }
        None => {
            if !alg.streamable() {
                // Rule 3: no smaller backend exists.
                if !fits {
                    reasons.push(format!(
                        "est. in-memory {est_mem} B exceeds budget but '{}' requires the \
                         whole graph in memory",
                        alg.name()
                    ));
                } else {
                    reasons.push(format!("'{}' runs in memory", alg.name()));
                }
                if parallel_ok {
                    Backend::ParallelCsr {
                        threads: policy.threads,
                    }
                } else {
                    Backend::InMemorySerial
                }
            } else if fits {
                // Rule 4.
                match budget {
                    Some(b) => {
                        reasons.push(format!("est. in-memory {est_mem} B fits budget {b} B"))
                    }
                    None => reasons.push("no memory budget → in-memory".into()),
                }
                if parallel_ok {
                    reasons.push(format!("{} threads → parallel CSR", policy.threads));
                    Backend::ParallelCsr {
                        threads: policy.threads,
                    }
                } else {
                    Backend::InMemorySerial
                }
            } else {
                // Rule 5.
                let state = est_stream_state_bytes(meta, meta.nodes);
                reasons.push(format!(
                    "est. in-memory {est_mem} B exceeds budget {} B → stream from file \
                     (O(n) state ≈{state} B)",
                    budget.unwrap_or(0)
                ));
                if budget.is_some_and(|b| state > b) {
                    reasons.push(format!(
                        "streaming state ≈{state} B still exceeds the budget; no smaller \
                         backend exists"
                    ));
                }
                reasons.push(STREAM_SEMANTICS_NOTE.into());
                Backend::Streamed
            }
        }
    };

    let est_working_bytes = match backend {
        Backend::InMemorySerial | Backend::ParallelCsr { .. } => est_mem,
        Backend::Streamed => est_stream_state_bytes(meta, meta.nodes),
        Backend::Sketched { .. } => unreachable!("handled above"),
        Backend::MapReduce { shuffle, .. } => {
            est_mem
                + match shuffle {
                    ShuffleChoice::InRam => est_shuffle_bytes_per_pass(meta),
                    ShuffleChoice::Spill { budget_bytes } => budget_bytes as u64,
                }
        }
    };
    Ok(Plan {
        backend,
        est_working_bytes,
        est_in_memory_bytes: est_mem,
        budget_bytes: budget,
        reasons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(n: u64, m: u64) -> GraphMeta {
        GraphMeta {
            nodes: n,
            edges: m,
            weighted: false,
            file_bytes: 12 * m,
        }
    }

    fn approx() -> Query {
        Query::new(Algorithm::Approx {
            epsilon: 0.5,
            sketch: None,
        })
    }

    #[test]
    fn fits_goes_in_memory_serial_then_parallel() {
        let m = meta(1_000, 5_000);
        let p = plan(&approx(), &m, &ResourcePolicy::default()).unwrap();
        assert_eq!(p.backend, Backend::InMemorySerial);

        let pol = ResourcePolicy {
            threads: 4,
            ..Default::default()
        };
        let p = plan(&approx(), &m, &pol).unwrap();
        assert_eq!(p.backend, Backend::ParallelCsr { threads: 4 });
    }

    #[test]
    fn over_budget_streams_and_is_deterministic() {
        let m = meta(1_000, 1_000_000);
        let pol = ResourcePolicy {
            memory_budget_bytes: Some(est_in_memory_bytes(&m) / 2),
            threads: 1,
        };
        let a = plan(&approx(), &m, &pol).unwrap();
        let b = plan(&approx(), &m, &pol).unwrap();
        assert_eq!(a, b, "planner must be deterministic");
        assert_eq!(a.backend, Backend::Streamed);
        assert!(a.est_working_bytes < a.est_in_memory_bytes);
        assert!(!a.reasons.is_empty());
    }

    #[test]
    fn in_memory_only_algorithms_never_stream() {
        let m = meta(1_000, 1_000_000);
        let pol = ResourcePolicy {
            memory_budget_bytes: Some(1),
            threads: 1,
        };
        for alg in [
            Algorithm::Charikar,
            Algorithm::Exact {
                flow: Default::default(),
            },
        ] {
            let p = plan(&Query::new(alg), &m, &pol).unwrap();
            assert_eq!(p.backend, Backend::InMemorySerial, "{alg:?}");
        }
        let err = plan(
            &Query {
                algorithm: Algorithm::Charikar,
                backend: Some(BackendRequest::Streamed),
            },
            &m,
            &pol,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
    }

    #[test]
    fn mapreduce_shuffle_spills_over_budget() {
        let m = meta(10_000, 100_000);
        let q = Query {
            algorithm: Algorithm::Approx {
                epsilon: 0.5,
                sketch: None,
            },
            backend: Some(BackendRequest::MapReduce),
        };
        let ram = plan(&q, &m, &ResourcePolicy::default()).unwrap();
        assert!(matches!(
            ram.backend,
            Backend::MapReduce {
                shuffle: ShuffleChoice::InRam,
                ..
            }
        ));
        let tight = ResourcePolicy {
            memory_budget_bytes: Some(est_shuffle_bytes_per_pass(&m) / 8),
            threads: 2,
        };
        let spill = plan(&q, &m, &tight).unwrap();
        assert!(matches!(
            spill.backend,
            Backend::MapReduce {
                workers: 2,
                shuffle: ShuffleChoice::Spill { .. }
            }
        ));
        assert_eq!(spill.backend.name(), "mapreduce-spill");
    }

    #[test]
    fn sketch_width_selects_sketched_backend() {
        let small = meta(1_000, 5_000);
        let q = Query::new(Algorithm::Approx {
            epsilon: 0.5,
            sketch: Some(64),
        });
        let p = plan(&q, &small, &ResourcePolicy::default()).unwrap();
        assert_eq!(
            p.backend,
            Backend::Sketched {
                width: 64,
                streamed: false
            }
        );
        let tight = ResourcePolicy {
            memory_budget_bytes: Some(1_000),
            threads: 1,
        };
        let p = plan(&q, &small, &tight).unwrap();
        assert_eq!(
            p.backend,
            Backend::Sketched {
                width: 64,
                streamed: true
            }
        );
        assert_eq!(p.backend.name(), "sketch-stream");
    }

    #[test]
    fn k_larger_than_n_is_a_typed_error() {
        let q = Query::new(Algorithm::AtLeastK {
            k: 2_000,
            epsilon: 0.5,
        });
        let err = plan(&q, &meta(1_000, 5_000), &ResourcePolicy::default()).unwrap_err();
        assert!(matches!(err, EngineError::KTooLarge { k: 2_000, n: 1_000 }));
    }

    #[test]
    fn bad_parameters_are_named() {
        let q = Query::new(Algorithm::Directed {
            delta: 1.0,
            epsilon: 0.5,
        });
        let err = plan(&q, &meta(10, 10), &ResourcePolicy::default()).unwrap_err();
        assert!(err.to_string().contains("delta"), "{err}");
    }
}
