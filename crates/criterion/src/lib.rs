//! A tiny, dependency-free stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmarking harness.
//!
//! The build environment for this workspace has no network access, so the
//! real criterion crate cannot be fetched. This shim implements the exact
//! API subset the `dsg-bench` bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple wall-clock measurement loop: a warm-up iteration, then batches
//! timed until a per-benchmark budget is spent, reporting mean/min per
//! iteration. Swap the manifest entry back to the real crate for HTML
//! reports and statistical rigor.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box` like the real crate.
pub use std::hint::black_box;

/// Measurement configuration and sink (the shim has no global state).
pub struct Criterion {
    /// Wall-clock budget per benchmark.
    measure_for: Duration,
    /// Maximum timed iterations per benchmark.
    max_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Budgets are intentionally small: these benches run on CI and on
        // laptops as a smoke-and-trend check, not a rigorous measurement.
        Criterion {
            measure_for: Duration::from_millis(300),
            max_iters: 50,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { c: self, name }
    }

    fn run_one(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            measure_for: self.measure_for,
            max_iters: self.max_iters,
            min: Duration::MAX,
        };
        f(&mut b);
        if b.iters == 0 {
            eprintln!("  {label:<40} (no iterations)");
            return;
        }
        let mean = b.total / b.iters as u32;
        eprintln!(
            "  {label:<40} mean {:>12?}  min {:>12?}  ({} iters)",
            mean, b.min, b.iters
        );
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration budget is
    /// time-based, so the requested sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; adjusts the per-benchmark budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measure_for = d;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        self.c.run_one(&label, &mut f);
        self
    }

    /// Runs one benchmark closure parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        self.c.run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond the real crate's API shape).
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    total: Duration,
    iters: u64,
    measure_for: Duration,
    max_iters: u64,
    min: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly — one warm-up call, then timed iterations until
    /// the time budget or the iteration cap is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let budget_start = Instant::now();
        while self.iters < self.max_iters && budget_start.elapsed() < self.measure_for {
            let t = Instant::now();
            black_box(f());
            let dt = t.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }
}

/// A benchmark label, optionally `function/parameter` shaped.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into the label string used by the shim's reporter.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
