//! Vendored implementation of the Fx hash function, API- and
//! algorithm-compatible with the `rustc-hash` crate (version 1.x), which
//! cannot be fetched in this workspace's offline build environment.
//!
//! Fx is the non-cryptographic, non-randomized multiply-xor hash used by
//! the Rust compiler. Determinism matters here: the graph generators and
//! the MapReduce partitioner hash with Fx so that generated graphs and
//! shard assignments are identical across runs and platforms.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx streaming hasher: per input word, `hash = (hash.rotl(5) ^ word) * SEED`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_to_hash(u64::from_ne_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add_to_hash(u64::from(u32::from_ne_bytes(
                bytes[..4].try_into().unwrap(),
            )));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            self.add_to_hash(u64::from(u16::from_ne_bytes(
                bytes[..2].try_into().unwrap(),
            )));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        (42u32, 7u32).hash(&mut a);
        (42u32, 7u32).hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        (7u32, 42u32).hash(&mut c);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn set_and_map_work() {
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        m.insert(3, 9);
        assert_eq!(m.get(&3), Some(&9));
    }
}
