//! Synthetic stand-ins for the paper's Table 1 datasets.
//!
//! | paper graph | type       | |V|    | |E|   | stand-in shape |
//! |-------------|------------|--------|-------|----------------|
//! | flickr      | undirected | 976K   | 7.6M  | Chung–Lu power law + dense photo-group communities |
//! | im          | undirected | 645M   | 6.1B  | same, heavier tail (messenger contacts) |
//! | livejournal | directed   | 4.84M  | 68.9M | RMAT directed + planted dense (S,T) with c ≈ 0.44 |
//! | twitter     | directed   | 50.7M  | 2.7B  | celebrity model (≈600 users followed by >30M) |
//!
//! The experiments measure pass counts, density trajectories, and
//! approximation ratios — all functions of degree skew and dense-core
//! structure, which the stand-ins reproduce; only absolute scale differs.

use dsg_graph::gen;
use dsg_graph::{EdgeList, GraphKind};

/// Experiment scale: multiplies the stand-in node counts.
///
/// `Scale::Tiny` suits unit tests, `Scale::Small` the default `repro`
/// binary, `Scale::Medium`/`Large` longer benchmark runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~2K nodes — unit tests.
    Tiny,
    /// ~20K nodes — default for the repro harness.
    Small,
    /// ~100K nodes — full benchmark runs.
    Medium,
    /// ~500K nodes — stress runs (flickr stand-in reaches paper size).
    Large,
}

impl Scale {
    /// Base node count for this scale.
    pub fn nodes(self) -> u32 {
        match self {
            Scale::Tiny => 2_000,
            Scale::Small => 20_000,
            Scale::Medium => 100_000,
            Scale::Large => 500_000,
        }
    }

    /// Parses from a string (for the repro CLI).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }
}

/// flickr stand-in: undirected power-law graph (α ≈ 2.2, mean degree ≈ 15
/// like 2·7.6M/976K) with a hierarchy of planted dense communities — the
/// densest mimics flickr's tight photo groups (paper: ρ ≈ 557 at ε = 0;
/// the stand-in's dense core scales with `scale`).
pub fn flickr_standin(scale: Scale) -> EdgeList {
    let n = scale.nodes();
    // Dense core ≈ 0.3% of nodes with ~60% internal density, plus two
    // weaker communities for a realistic density landscape.
    let k1 = (n / 300).max(12);
    let k2 = (n / 150).max(16);
    let k3 = (n / 80).max(20);
    let (g, _) = gen::powerlaw_with_communities(
        n,
        2.2,
        15.0,
        (n / 12) as f64,
        &[(k1, 0.6), (k2, 0.25), (k3, 0.08)],
        0xF11C4,
    );
    g
}

/// im stand-in: undirected, heavier tail (α ≈ 2.0) and larger mean degree
/// (2·6.1B/645M ≈ 19), with a proportionally larger dense core (paper:
/// ρ ≈ 431 at ε = 0).
pub fn im_standin(scale: Scale) -> EdgeList {
    let n = scale.nodes();
    let k1 = (n / 250).max(14);
    let k2 = (n / 100).max(20);
    let (g, _) = gen::powerlaw_with_communities(
        n,
        2.0,
        19.0,
        (n / 10) as f64,
        &[(k1, 0.55), (k2, 0.15)],
        0x1A7,
    );
    g
}

/// livejournal stand-in: directed RMAT graph (mean out-degree ≈ 14) with a
/// planted dense `(S*, T*)` pair whose size ratio is `c ≈ 0.44` — the
/// best ratio the paper reports for livejournal (Figure 6.5).
pub fn livejournal_standin(scale: Scale) -> EdgeList {
    let n = scale.nodes();
    let scale_log = (n as f64).log2().ceil() as u32;
    let mut g = gen::rmat(
        scale_log,
        n as usize * 14,
        gen::RmatParams::mild(),
        GraphKind::Directed,
        0x11FE,
    );
    // Planted pair: |S| = 0.44·|T| (c = 0.436 in the paper), dense arcs.
    let t_size = (g.num_nodes / 160).max(16);
    let s_size = ((t_size as f64) * 0.44).ceil() as u32;
    let mut rng = dsg_graph::SplitMix64::new(0x11FE + 1);
    for su in 0..s_size {
        for tv in 0..t_size {
            if rng.bernoulli(0.7) {
                // Place the pair on mid-range ids to avoid the RMAT hubs.
                g.push(g.num_nodes / 2 + su, g.num_nodes / 4 + tv);
            }
        }
    }
    g.canonicalize();
    g
}

/// twitter stand-in: the celebrity model — a handful of accounts followed
/// by a large fraction of the graph (the paper notes ~600 users with more
/// than 30M followers each) over a sparse directed background. The
/// optimal directed pair is highly asymmetric, reproducing the shape of
/// Figure 6.6 where the best `c` is far from 1.
pub fn twitter_standin(scale: Scale) -> EdgeList {
    let n = scale.nodes();
    let celebs = (n / 2_000).max(3);
    gen::skewed_celebrity(n, celebs, 0.4, n as usize * 8, 0x7117)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::stats;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.nodes() < Scale::Small.nodes());
        assert!(Scale::Small.nodes() < Scale::Medium.nodes());
        assert!(Scale::Medium.nodes() < Scale::Large.nodes());
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn flickr_shape() {
        let g = flickr_standin(Scale::Tiny);
        g.validate().unwrap();
        assert_eq!(g.kind, GraphKind::Undirected);
        let s = stats::summarize("flickr", &g);
        assert!(
            s.mean_degree > 8.0 && s.mean_degree < 25.0,
            "mean {}",
            s.mean_degree
        );
        // Heavy tail.
        assert!(s.max_degree > 5.0 * s.mean_degree);
    }

    #[test]
    fn im_is_denser_than_flickr() {
        let f = stats::summarize("f", &flickr_standin(Scale::Tiny));
        let i = stats::summarize("i", &im_standin(Scale::Tiny));
        assert!(i.mean_degree > f.mean_degree * 0.9);
    }

    #[test]
    fn livejournal_is_directed() {
        let g = livejournal_standin(Scale::Tiny);
        g.validate().unwrap();
        assert_eq!(g.kind, GraphKind::Directed);
        assert!(g.num_edges() > g.num_nodes as usize * 5);
    }

    #[test]
    fn twitter_has_celebrity_skew() {
        let g = twitter_standin(Scale::Tiny);
        assert_eq!(g.kind, GraphKind::Directed);
        let din = g.degrees_in();
        let max_in = din.iter().cloned().fold(0.0, f64::max);
        let mean_in = din.iter().sum::<f64>() / din.len() as f64;
        assert!(max_in > 20.0 * mean_in, "max {max_in} mean {mean_in}");
    }

    #[test]
    fn standins_are_deterministic() {
        let a = flickr_standin(Scale::Tiny);
        let b = flickr_standin(Scale::Tiny);
        assert_eq!(a.edges, b.edges);
    }
}
