//! Stand-ins for the seven SNAP graphs of Table 2.
//!
//! Table 2 measures `ρ*(G)/ρ̃(G)` — exact optimum over Algorithm 1's
//! output — on seven moderately sized public graphs. Offline, we
//! synthesize graphs with the same node/edge counts and a planted
//! community calibrated so the exact optimum lands in the same range as
//! the paper reports; when the *real* SNAP edge list is present on disk
//! (e.g. downloaded from snap.stanford.edu), [`load_or_synthesize`] parses
//! it instead, so the harness reproduces the genuine Table 2 when data is
//! available.

use std::path::Path;

use dsg_graph::gen;
use dsg_graph::io::read_text;
use dsg_graph::{EdgeList, GraphKind};

/// Descriptor of one Table 2 row.
#[derive(Clone, Copy, Debug)]
pub struct Table2Graph {
    /// SNAP dataset name.
    pub name: &'static str,
    /// Node count of the real dataset.
    pub nodes: u32,
    /// Edge count of the real dataset.
    pub edges: usize,
    /// The exact optimum the paper reports (`ρ*(G)` column).
    pub paper_rho_star: f64,
}

/// The seven graphs of Table 2 with the paper's reported parameters.
pub const TABLE2: [Table2Graph; 7] = [
    Table2Graph {
        name: "as20000102",
        nodes: 6_474,
        edges: 13_233,
        paper_rho_star: 9.29,
    },
    Table2Graph {
        name: "ca-AstroPh",
        nodes: 18_772,
        edges: 396_160,
        paper_rho_star: 32.12,
    },
    Table2Graph {
        name: "ca-CondMat",
        nodes: 23_133,
        edges: 186_936,
        paper_rho_star: 13.47,
    },
    Table2Graph {
        name: "ca-GrQc",
        nodes: 5_242,
        edges: 28_980,
        paper_rho_star: 22.39,
    },
    Table2Graph {
        name: "ca-HepPh",
        nodes: 12_008,
        edges: 237_010,
        paper_rho_star: 119.00,
    },
    Table2Graph {
        name: "ca-HepTh",
        nodes: 9_877,
        edges: 51_971,
        paper_rho_star: 15.50,
    },
    Table2Graph {
        name: "email-Enron",
        nodes: 36_692,
        edges: 367_662,
        paper_rho_star: 37.34,
    },
];

/// Synthesizes a stand-in for one Table 2 graph: a `G(n, m)` background
/// with a planted near-clique calibrated so `ρ*` is close to the paper's
/// value (`ρ* ≈ p·(k-1)/2` for a planted `G(k, p)`, so `k ≈ 2ρ*/p + 1`).
pub fn synthesize(desc: &Table2Graph, seed: u64) -> EdgeList {
    let p = 0.85;
    let k = ((2.0 * desc.paper_rho_star / p) + 1.0).round() as u32;
    let planted_edges = (p * (k as f64) * (k as f64 - 1.0) / 2.0) as usize;
    let background = desc.edges.saturating_sub(planted_edges);
    gen::planted_dense_subgraph(desc.nodes, background, k, p, seed).graph
}

/// Loads the real SNAP edge list for `desc.name` from `data_dir` if a file
/// `<data_dir>/<name>.txt` exists; otherwise synthesizes the stand-in.
///
/// Returns the graph and `true` when real data was used. SNAP files list
/// each undirected edge in both orientations with `#` comment headers;
/// canonicalization dedups them.
pub fn load_or_synthesize(
    desc: &Table2Graph,
    data_dir: Option<&Path>,
    seed: u64,
) -> (EdgeList, bool) {
    if let Some(dir) = data_dir {
        let path = dir.join(format!("{}.txt", desc.name));
        if path.exists() {
            if let Ok(mut g) = read_text(&path, GraphKind::Undirected) {
                g.canonicalize();
                return (g, true);
            }
        }
    }
    (synthesize(desc, seed), false)
}

/// All seven Table 2 graphs (synthesized, or loaded from `data_dir` when
/// files are available). Returns `(descriptor, graph, is_real_data)`.
pub fn table2_graphs(data_dir: Option<&Path>) -> Vec<(Table2Graph, EdgeList, bool)> {
    TABLE2
        .iter()
        .enumerate()
        .map(|(i, desc)| {
            let (g, real) = load_or_synthesize(desc, data_dir, 0x7AB1E2 + i as u64);
            (*desc, g, real)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_matches_paper_scale() {
        for desc in &TABLE2 {
            let g = synthesize(desc, 1);
            g.validate().unwrap();
            assert_eq!(g.num_nodes, desc.nodes);
            // Canonicalization removes a few collisions; stay within 5%.
            let m = g.num_edges() as f64;
            assert!(
                (m - desc.edges as f64).abs() < 0.05 * desc.edges as f64 + 50.0,
                "{}: {m} edges vs target {}",
                desc.name,
                desc.edges
            );
        }
    }

    #[test]
    fn planted_density_tracks_paper_rho() {
        use dsg_core::charikar_peel;
        use dsg_graph::CsrUndirected;
        // Charikar's 2-approx on the stand-in must reach at least half the
        // calibrated ρ*, confirming the planted core exists at the right
        // density scale.
        let desc = &TABLE2[0]; // as20000102, ρ* ≈ 9.29
        let g = synthesize(desc, 2);
        let csr = CsrUndirected::from_edge_list(&g);
        let peel = charikar_peel(&csr);
        assert!(
            peel.best_density >= desc.paper_rho_star * 0.5,
            "peel density {} vs paper ρ* {}",
            peel.best_density,
            desc.paper_rho_star
        );
        // And the stand-in shouldn't wildly exceed the target either.
        assert!(peel.best_density <= desc.paper_rho_star * 2.0);
    }

    #[test]
    fn loader_falls_back_to_synthetic() {
        let (g, real) = load_or_synthesize(&TABLE2[3], Some(Path::new("/nonexistent")), 3);
        assert!(!real);
        assert_eq!(g.num_nodes, TABLE2[3].nodes);
    }

    #[test]
    fn loader_prefers_real_file() {
        let dir = std::env::temp_dir().join("dsg_snap_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ca-GrQc.txt"), "# fake tiny file\n0 1\n1 0\n1 2\n").unwrap();
        let (g, real) = load_or_synthesize(&TABLE2[3], Some(&dir), 3);
        assert!(real);
        assert_eq!(g.num_edges(), 2); // deduped orientations
    }

    #[test]
    fn all_seven_present() {
        let gs = table2_graphs(None);
        assert_eq!(gs.len(), 7);
        let names: Vec<&str> = gs.iter().map(|(d, _, _)| d.name).collect();
        assert!(names.contains(&"email-Enron"));
        assert!(gs.iter().all(|(_, _, real)| !real));
    }
}
