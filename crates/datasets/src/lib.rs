//! # dsg-datasets — evaluation graphs for the reproduction
//!
//! The paper evaluates on four proprietary/huge social networks (Table 1:
//! flickr, im, livejournal, twitter) and seven public SNAP graphs
//! (Table 2). Neither is available in this offline environment, so this
//! crate provides:
//!
//! * [`standins`] — parameterized synthetic stand-ins with the same
//!   *shape* (power-law degree skew, planted dense cores, directed
//!   celebrity skew for twitter) at laptop scale. Every generator accepts
//!   a [`Scale`] so experiments can be sized to the machine.
//! * [`snap`] — stand-ins for the seven SNAP graphs of Table 2 (matched
//!   node/edge counts, planted communities calibrated to produce a
//!   comparable ρ*), plus a loader that transparently substitutes the
//!   *real* SNAP file when one is present on disk, so the experiment
//!   harness upgrades itself when data is available.
//!
//! See DESIGN.md §4 for the substitution rationale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::all)]

pub mod snap;
pub mod standins;

pub use snap::{load_or_synthesize, table2_graphs, Table2Graph};
pub use standins::{flickr_standin, im_standin, livejournal_standin, twitter_standin, Scale};
